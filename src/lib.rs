//! Meta-crate for the StarNUMA reproduction workspace.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories; the actual library lives in the [`starnuma`] crate and the
//! substrate crates it re-exports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use starnuma;
