//! A minimal recursive-descent JSON reader for `profile.json`.
//!
//! The obs crate's `parse_flat_object` deliberately handles only flat
//! objects; profiles are nested (phases → edges), so the prof crate carries
//! its own tiny reader. It accepts exactly what
//! [`ProfReport::to_json`](crate::ProfReport::to_json) emits (objects,
//! arrays, strings, numbers, `null`, booleans) and returns `None` on
//! anything malformed — no panics, no external dependencies.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonVal {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonVal>),
    /// An object, fields in source order.
    Obj(Vec<(String, JsonVal)>),
}

impl JsonVal {
    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonVal)]> {
        match self {
            JsonVal::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonVal]> {
        match self {
            JsonVal::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse one JSON document. Trailing non-whitespace makes the parse fail.
pub fn parse(text: &str) -> Option<JsonVal> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(value)
    } else {
        None
    }
}

/// Nesting guard: profiles are 4 levels deep; anything past this is not
/// one of ours.
const MAX_DEPTH: usize = 32;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(bytes: &[u8], pos: &mut usize, expected: u8) -> Option<()> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == expected {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<JsonVal> {
    if depth > MAX_DEPTH {
        return None;
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => parse_object(bytes, pos, depth),
        b'[' => parse_array(bytes, pos, depth),
        b'"' => parse_string(bytes, pos).map(JsonVal::Str),
        b'n' => parse_keyword(bytes, pos, "null", JsonVal::Null),
        b't' => parse_keyword(bytes, pos, "true", JsonVal::Bool(true)),
        b'f' => parse_keyword(bytes, pos, "false", JsonVal::Bool(false)),
        _ => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: JsonVal) -> Option<JsonVal> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Some(value)
    } else {
        None
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<JsonVal> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    if *pos == start {
        return None;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(JsonVal::Num)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    eat(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        match b {
            b'"' => return Some(out),
            b'\\' => {
                let esc = *bytes.get(*pos)?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4)?;
                        *pos += 4;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
            }
            b => {
                // Collect the raw UTF-8 bytes of a multi-byte char.
                let len = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let start = *pos - 1;
                *pos = start + len;
                out.push_str(std::str::from_utf8(bytes.get(start..*pos)?).ok()?);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<JsonVal> {
    eat(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(JsonVal::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(JsonVal::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<JsonVal> {
    eat(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(JsonVal::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        eat(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(JsonVal::Obj(fields));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse("{\"a\": [1, 2.5, null], \"b\": {\"c\": \"x\\ny\"}, \"d\": true}");
        let v = match v {
            Some(v) => v,
            None => panic!("parse failed"),
        };
        let obj = v.as_object().unwrap_or(&[]);
        assert_eq!(obj.len(), 3);
        assert_eq!(obj[0].1.as_array().map(|a| a.len()), Some(3), "array arity");
        assert_eq!(obj[0].1.as_array().and_then(|a| a[1].as_num()), Some(2.5));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert_eq!(parse(bad), None, "accepted {bad:?}");
        }
    }
}
