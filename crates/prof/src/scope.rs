//! RAII scoped timers and the deterministic accumulator behind them.
//!
//! The fast path is one relaxed atomic load: when profiling is disabled
//! (the default), [`ProfScope::enter`] reads a flag and returns an inert
//! guard — no wall-clock read, no thread-local access, no allocation.
//! When enabled, each scope stamps the clock on entry, and on drop charges
//! the elapsed nanoseconds to a `(phase, site, parent-site)` edge in a
//! thread-local table of fixed site-indexed arrays. Workers flush their
//! tables into a process-global registry ([`flush_thread`], called by the
//! `JobPool` worker loop), and [`take_report`] drains the registry into a
//! [`ProfReport`](crate::ProfReport) whose edges are emitted in canonical
//! site order — merges are commutative sums over a fixed universe, so the
//! *call counts* in a report are independent of worker scheduling, exactly
//! like obs metric merges.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::clock::{ClockStamp, ProfClock};
use crate::report::{PhaseProfile, ProfEdge, ProfReport};
use crate::site::{Site, NUM_SITES};

/// Phase key for work outside any simulation phase (setup, warmup,
/// scouting, teardown). Real phases are stored at `phase + 1`.
pub const SETUP_KEY: u32 = 0;

#[derive(Clone, Copy, Default)]
struct Cell {
    ns: u64,
    calls: u64,
}

/// One phase's `(parent, site)` edge matrix. Parent slot 0 is the root
/// (no enclosing scope); slot `1 + s.index()` is site `s`.
#[derive(Clone)]
struct PhaseTable {
    cells: [[Cell; NUM_SITES]; NUM_SITES + 1],
}

impl PhaseTable {
    fn new() -> PhaseTable {
        PhaseTable {
            cells: [[Cell::default(); NUM_SITES]; NUM_SITES + 1],
        }
    }

    fn is_empty(&self) -> bool {
        self.cells
            .iter()
            .all(|row| row.iter().all(|c| c.calls == 0 && c.ns == 0))
    }
}

struct ThreadAcc {
    /// Current phase key (`SETUP_KEY` or `phase + 1`), set by [`set_phase`].
    phase_key: usize,
    /// Stack of currently-open sites on this thread (for parent edges).
    stack: Vec<Site>,
    /// Per-phase-key tables, indexed by phase key.
    tables: Vec<PhaseTable>,
}

impl ThreadAcc {
    const fn new() -> ThreadAcc {
        ThreadAcc {
            phase_key: SETUP_KEY as usize,
            stack: Vec::new(),
            tables: Vec::new(),
        }
    }
}

thread_local! {
    static ACC: RefCell<ThreadAcc> = const { RefCell::new(ThreadAcc::new()) };
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Vec<PhaseTable>> = Mutex::new(Vec::new());

fn lock_global() -> MutexGuard<'static, Vec<PhaseTable>> {
    match GLOBAL.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Turn profiling on or off process-wide. Off is the default; scopes taken
/// while off cost one atomic load and record nothing.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is currently enabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Attribute subsequent scopes on this thread to simulation phase `phase`.
/// No-op while profiling is disabled.
pub fn set_phase(phase: u32) {
    if !is_enabled() {
        return;
    }
    ACC.with(|a| {
        if let Ok(mut a) = a.try_borrow_mut() {
            a.phase_key = phase.saturating_add(1) as usize;
        }
    });
}

/// Return this thread to the setup/global phase key (between phases and
/// after the phase loop).
pub fn clear_phase() {
    if !is_enabled() {
        return;
    }
    ACC.with(|a| {
        if let Ok(mut a) = a.try_borrow_mut() {
            a.phase_key = SETUP_KEY as usize;
        }
    });
}

/// An RAII scoped timer: charges the wall time between construction and
/// drop to `site`, parented under whatever scope encloses it on this
/// thread. Inert (one atomic load) when profiling is disabled.
#[must_use = "a ProfScope measures the span until it is dropped"]
pub struct ProfScope {
    open: Option<(Site, ClockStamp)>,
}

impl ProfScope {
    /// Open a scope attributed to `site`.
    #[inline]
    pub fn enter(site: Site) -> ProfScope {
        if !ENABLED.load(Ordering::Relaxed) {
            return ProfScope { open: None };
        }
        ProfScope::enter_enabled(site)
    }

    #[cold]
    fn enter_enabled(site: Site) -> ProfScope {
        ACC.with(|a| {
            if let Ok(mut a) = a.try_borrow_mut() {
                a.stack.push(site);
            }
        });
        ProfScope {
            open: Some((site, ProfClock::stamp())),
        }
    }
}

impl Drop for ProfScope {
    #[inline]
    fn drop(&mut self) {
        if let Some((site, stamp)) = self.open.take() {
            let ns = ProfClock::elapsed_ns(stamp);
            record_exit(site, ns);
        }
    }
}

#[cold]
fn record_exit(site: Site, ns: u64) {
    ACC.with(|a| {
        let Ok(mut a) = a.try_borrow_mut() else {
            return;
        };
        // Pop this scope; RAII drop order makes the top of the stack ours,
        // but tolerate imbalance (e.g. a scope moved across an early
        // return) by removing the deepest matching entry.
        if a.stack.last() == Some(&site) {
            a.stack.pop();
        } else if let Some(pos) = a.stack.iter().rposition(|s| *s == site) {
            a.stack.remove(pos);
        }
        let parent_slot = a.stack.last().map(|s| 1 + s.index()).unwrap_or(0);
        let key = a.phase_key;
        while a.tables.len() <= key {
            a.tables.push(PhaseTable::new());
        }
        let cell = &mut a.tables[key].cells[parent_slot][site.index()];
        cell.ns = cell.ns.saturating_add(ns);
        cell.calls = cell.calls.saturating_add(1);
    });
}

/// Merge this thread's accumulated tables into the process-global registry
/// and clear them. The `JobPool` worker loop calls this before a worker
/// thread exits; [`take_report`] calls it for the reporting thread.
pub fn flush_thread() {
    ACC.with(|a| {
        let Ok(mut a) = a.try_borrow_mut() else {
            return;
        };
        if a.tables.iter().all(PhaseTable::is_empty) {
            a.tables.clear();
            return;
        }
        let tables = std::mem::take(&mut a.tables);
        let mut global = lock_global();
        while global.len() < tables.len() {
            global.push(PhaseTable::new());
        }
        for (dst, src) in global.iter_mut().zip(&tables) {
            for (drow, srow) in dst.cells.iter_mut().zip(&src.cells) {
                for (d, s) in drow.iter_mut().zip(srow) {
                    d.ns = d.ns.saturating_add(s.ns);
                    d.calls = d.calls.saturating_add(s.calls);
                }
            }
        }
    });
}

/// Drain everything recorded so far into a report. Edges are emitted in
/// canonical order: phase keys ascending, parents root-first then in
/// [`Site::ALL`] order, sites in [`Site::ALL`] order — so two reports built
/// from the same merged counts render identically regardless of which
/// worker recorded what.
pub fn take_report() -> ProfReport {
    flush_thread();
    let tables = {
        let mut global = lock_global();
        std::mem::take(&mut *global)
    };
    let mut phases = Vec::new();
    for (key, table) in tables.iter().enumerate() {
        let mut edges = Vec::new();
        for parent_slot in 0..=NUM_SITES {
            let parent = if parent_slot == 0 {
                None
            } else {
                Some(Site::ALL[parent_slot - 1])
            };
            for site in Site::ALL {
                let cell = table.cells[parent_slot][site.index()];
                if cell.calls > 0 || cell.ns > 0 {
                    edges.push(ProfEdge {
                        site,
                        parent,
                        ns: cell.ns,
                        calls: cell.calls,
                    });
                }
            }
        }
        if !edges.is_empty() {
            phases.push(PhaseProfile {
                key: key as u32,
                edges,
            });
        }
    }
    ProfReport { phases }
}

/// Discard everything recorded so far (this thread's tables, the global
/// registry, and this thread's phase key). The profiling CLI calls this
/// before enabling so a report covers exactly one command.
pub fn reset() {
    ACC.with(|a| {
        if let Ok(mut a) = a.try_borrow_mut() {
            a.tables.clear();
            a.stack.clear();
            a.phase_key = SETUP_KEY as usize;
        }
    });
    lock_global().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enable flag and global registry are process-wide; tests that
    /// touch them serialize on this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        let _l = locked();
        reset();
        set_enabled(false);
        for _ in 0..100 {
            let _s = ProfScope::enter(Site::Timing);
        }
        assert!(take_report().phases.is_empty());
    }

    #[test]
    fn nested_scopes_build_parent_edges_in_canonical_order() {
        let _l = locked();
        reset();
        set_enabled(true);
        set_phase(3);
        {
            let _outer = ProfScope::enter(Site::Timing);
            let _inner = ProfScope::enter(Site::Llc);
        }
        {
            let _solo = ProfScope::enter(Site::TraceGen);
        }
        clear_phase();
        set_enabled(false);
        let report = take_report();
        assert_eq!(report.phases.len(), 1);
        let phase = &report.phases[0];
        assert_eq!(phase.key, 4, "phase 3 stores at key 3+1");
        let shape: Vec<(Site, Option<Site>, u64)> = phase
            .edges
            .iter()
            .map(|e| (e.site, e.parent, e.calls))
            .collect();
        // Root-parented edges first (in ALL order), then parented ones.
        assert_eq!(
            shape,
            vec![
                (Site::TraceGen, None, 1),
                (Site::Timing, None, 1),
                (Site::Llc, Some(Site::Timing), 1),
            ]
        );
    }

    #[test]
    fn worker_flushes_merge_by_summing() {
        let _l = locked();
        reset();
        set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    set_phase(0);
                    for _ in 0..5 {
                        let _s = ProfScope::enter(Site::Dram);
                    }
                    flush_thread();
                });
            }
        });
        set_enabled(false);
        let report = take_report();
        assert_eq!(report.phases.len(), 1);
        let edge = &report.phases[0].edges[0];
        assert_eq!((edge.site, edge.parent), (Site::Dram, None));
        assert_eq!(edge.calls, 15, "3 workers x 5 scopes");
    }

    #[test]
    fn setup_work_lands_in_the_setup_key() {
        let _l = locked();
        reset();
        set_enabled(true);
        {
            let _s = ProfScope::enter(Site::Checkpoint);
        }
        set_enabled(false);
        let report = take_report();
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].key, SETUP_KEY);
    }
}
