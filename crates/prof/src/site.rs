//! The static site registry: every scoped timer attributes its time to one
//! of these fixed simulation components. The set is closed on purpose —
//! a fixed, ordered universe is what makes cross-worker merges and the
//! rendered attribution tree deterministic (same reasoning as the obs
//! metric registry's canonical key order).

/// A profiling site: one component of the simulation stack that scoped
/// timers attribute wall time to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Site {
    /// Synthetic trace generation (step A), including scout and warmup
    /// streams.
    TraceGen,
    /// Hardware tracking: per-core TLB counter annexes feeding the
    /// metadata region (step B input side).
    Tlb,
    /// Per-socket last-level cache lookups and evictions.
    Llc,
    /// The distributed MESI directory (lookup, eviction bookkeeping).
    Directory,
    /// DRAM channel contention: socket-local and pool memory modules.
    Dram,
    /// Coherence traffic: invalidations, cache-to-cache transfers, and
    /// interconnect link legs.
    Coherence,
    /// The step-C event-driven timing loop as a whole.
    Timing,
    /// Migration/replication policy decisions and initial placement
    /// (step B decision side).
    MigrationPolicy,
    /// Page-map checkpointing: the per-phase snapshot that seeds step C.
    Checkpoint,
    /// Observability export work done inside the run (delta observation,
    /// stat barriers).
    ObsExport,
}

/// Number of registered sites. Array-backed accumulators are sized by this.
pub const NUM_SITES: usize = 10;

impl Site {
    /// Every site in canonical order — the order reports render in and the
    /// order cross-worker merges walk.
    pub const ALL: [Site; NUM_SITES] = [
        Site::TraceGen,
        Site::Tlb,
        Site::Llc,
        Site::Directory,
        Site::Dram,
        Site::Coherence,
        Site::Timing,
        Site::MigrationPolicy,
        Site::Checkpoint,
        Site::ObsExport,
    ];

    /// Stable kebab-case label used in reports, `profile.json`, and folded
    /// stacks.
    pub fn label(self) -> &'static str {
        match self {
            Site::TraceGen => "trace-gen",
            Site::Tlb => "tlb",
            Site::Llc => "llc",
            Site::Directory => "directory",
            Site::Dram => "dram",
            Site::Coherence => "coherence",
            Site::Timing => "timing",
            Site::MigrationPolicy => "migration-policy",
            Site::Checkpoint => "checkpoint",
            Site::ObsExport => "obs-export",
        }
    }

    /// Dense index into `ALL` (and into accumulator arrays).
    pub fn index(self) -> usize {
        match self {
            Site::TraceGen => 0,
            Site::Tlb => 1,
            Site::Llc => 2,
            Site::Directory => 3,
            Site::Dram => 4,
            Site::Coherence => 5,
            Site::Timing => 6,
            Site::MigrationPolicy => 7,
            Site::Checkpoint => 8,
            Site::ObsExport => 9,
        }
    }

    /// Inverse of [`Site::label`]; `None` for unknown labels (e.g. a
    /// `profile.json` written by a newer schema).
    pub fn from_label(label: &str) -> Option<Site> {
        Site::ALL.iter().copied().find(|s| s.label() == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_order_matches_index() {
        for (i, s) in Site::ALL.iter().enumerate() {
            assert_eq!(s.index(), i, "{s:?} out of canonical order");
        }
    }

    #[test]
    fn labels_round_trip() {
        for s in Site::ALL {
            assert_eq!(Site::from_label(s.label()), Some(s));
        }
        assert_eq!(Site::from_label("no-such-site"), None);
    }

    #[test]
    fn labels_are_kebab_case_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for s in Site::ALL {
            let l = s.label();
            assert!(l
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '-' || c.is_ascii_digit()));
            assert!(seen.insert(l), "duplicate label {l}");
        }
    }
}
