//! Profile reports: the attribution tree, `profile.json`, and folded
//! stacks for flamegraph tooling.
//!
//! A report is a list of per-phase edge sets. An *edge* is
//! `(site, parent-site, inclusive ns, calls)` — the accumulator records
//! only one level of ancestry, which is exact for this codebase because
//! every site that has children (`timing`, `migration-policy`) appears in
//! a single parent context. Edges are always stored and rendered in
//! canonical order (phases ascending; root-parented edges first, then
//! parents in [`Site::ALL`] order; sites in [`Site::ALL`] order), which is
//! what makes two reports over the same merged counts byte-identical.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::site::Site;

/// One attribution edge: inclusive time and call count for `site` while
/// directly nested under `parent` (`None` = top level).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfEdge {
    /// The site the time is charged to.
    pub site: Site,
    /// The enclosing site, or `None` for top-level scopes.
    pub parent: Option<Site>,
    /// Total inclusive nanoseconds across all calls.
    pub ns: u64,
    /// Number of scope entries.
    pub calls: u64,
}

/// One phase's edges. `key` 0 is the setup/global bucket; key `k > 0` is
/// simulation phase `k - 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Phase key (0 = setup, else phase index + 1).
    pub key: u32,
    /// Edges in canonical order.
    pub edges: Vec<ProfEdge>,
}

impl PhaseProfile {
    /// Human label for this phase bucket.
    pub fn label(&self) -> String {
        if self.key == 0 {
            "setup".to_string()
        } else {
            format!("phase {}", self.key - 1)
        }
    }
}

/// A drained profile: everything [`take_report`](crate::take_report)
/// collected, ready to render or serialize.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfReport {
    /// Per-phase edge sets, phase keys ascending.
    pub phases: Vec<PhaseProfile>,
}

/// A profile loaded back from `profile.json` (`starnuma inspect
/// --profile`).
#[derive(Clone, Debug, PartialEq)]
pub struct SavedProfile {
    /// The wrapped CLI command line.
    pub command: String,
    /// Wall time of the whole command, ns.
    pub wall_ns: u64,
    /// The recorded report.
    pub report: ProfReport,
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl ProfReport {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// All phases summed into one edge set, in canonical order.
    pub fn merged_edges(&self) -> Vec<ProfEdge> {
        let mut out: Vec<ProfEdge> = Vec::new();
        for phase in &self.phases {
            for e in &phase.edges {
                if let Some(existing) = out
                    .iter_mut()
                    .find(|x| x.site == e.site && x.parent == e.parent)
                {
                    existing.ns = existing.ns.saturating_add(e.ns);
                    existing.calls = existing.calls.saturating_add(e.calls);
                } else {
                    out.push(*e);
                }
            }
        }
        // Canonical order: root edges first, then parents in ALL order;
        // within a parent, sites in ALL order.
        out.sort_by_key(|e| (e.parent.map(|p| 1 + p.index()).unwrap_or(0), e.site.index()));
        out
    }

    /// The `n` hottest top-level sites: `(label, inclusive ns, calls)`
    /// tuples for root-parented merged edges, heaviest first (ties broken
    /// by site order, so the ranking is deterministic). This is the
    /// summary the run ledger persists per run.
    pub fn top_sites(&self, n: usize) -> Vec<(String, u64, u64)> {
        let mut roots: Vec<ProfEdge> = self
            .merged_edges()
            .into_iter()
            .filter(|e| e.parent.is_none())
            .collect();
        roots.sort_by_key(|e| (std::cmp::Reverse(e.ns), e.site.index()));
        roots
            .into_iter()
            .take(n)
            .map(|e| (e.site.label().to_string(), e.ns, e.calls))
            .collect()
    }

    /// Total nanoseconds attributed at the top level (root-parented edges)
    /// across all phases. This is what the ≥ 90 %-of-wall acceptance check
    /// compares against command wall time.
    pub fn attributed_ns(&self) -> u64 {
        self.merged_edges()
            .iter()
            .filter(|e| e.parent.is_none())
            .map(|e| e.ns)
            .fold(0, u64::saturating_add)
    }

    /// Render the top-down attribution tree: per site, percent of `wall_ns`,
    /// inclusive total, call count, and ns per call, children indented under
    /// their parent site.
    pub fn render_tree(&self, wall_ns: u64) -> String {
        let merged = self.merged_edges();
        let mut out = String::new();
        let attributed = self.attributed_ns();
        let pct = if wall_ns > 0 {
            100.0 * attributed as f64 / wall_ns as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "profile: {} of {} wall attributed ({pct:.1}%)",
            fmt_ns(attributed),
            fmt_ns(wall_ns),
        );
        let _ = writeln!(
            out,
            "  {:<28} {:>7} {:>12} {:>12} {:>12}",
            "site", "% wall", "total", "calls", "ns/call"
        );
        let mut expanded = BTreeSet::new();
        for e in merged.iter().filter(|e| e.parent.is_none()) {
            render_edge(&mut out, &merged, e, 0, wall_ns, &mut expanded);
        }
        if !self.phases.is_empty() {
            let _ = writeln!(out, "  per-phase top-level totals:");
            for phase in &self.phases {
                let total: u64 = phase
                    .edges
                    .iter()
                    .filter(|e| e.parent.is_none())
                    .map(|e| e.ns)
                    .fold(0, u64::saturating_add);
                let _ = writeln!(out, "    {:<12} {:>12}", phase.label(), fmt_ns(total));
            }
        }
        out
    }

    /// Folded-stack output (`path;components value` lines) consumable by
    /// standard flamegraph tooling. Values are *self* nanoseconds
    /// (inclusive minus children), so the stack sums reproduce the
    /// inclusive totals.
    pub fn folded(&self) -> String {
        let merged = self.merged_edges();
        let mut out = String::new();
        let mut expanded = BTreeSet::new();
        for e in merged.iter().filter(|e| e.parent.is_none()) {
            fold_edge(&mut out, &merged, e, "starnuma", &mut expanded);
        }
        out
    }

    /// Serialize as schema-versioned `profile.json`.
    pub fn to_json(&self, command: &str, wall_ns: u64) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": 1,");
        let _ = writeln!(out, "  \"command\": \"{}\",", escape(command));
        let _ = writeln!(out, "  \"wall_ns\": {wall_ns},");
        let _ = writeln!(out, "  \"attributed_ns\": {},", self.attributed_ns());
        out.push_str("  \"phases\": [\n");
        for (pi, phase) in self.phases.iter().enumerate() {
            let _ = writeln!(out, "    {{ \"key\": {}, \"edges\": [", phase.key);
            for (ei, e) in phase.edges.iter().enumerate() {
                let parent = match e.parent {
                    Some(p) => format!("\"{}\"", p.label()),
                    None => "null".to_string(),
                };
                let _ = write!(
                    out,
                    "      {{ \"site\": \"{}\", \"parent\": {parent}, \"ns\": {}, \"calls\": {} }}",
                    e.site.label(),
                    e.ns,
                    e.calls
                );
                out.push_str(if ei + 1 < phase.edges.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("    ] }");
            out.push_str(if pi + 1 < self.phases.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a `profile.json` written by [`ProfReport::to_json`]. Returns
    /// `None` on malformed input or an unknown schema version.
    pub fn from_json(text: &str) -> Option<SavedProfile> {
        let value = crate::json::parse(text)?;
        let obj = value.as_object()?;
        let schema = get(obj, "schema_version")?.as_num()?;
        if schema != 1.0 {
            return None;
        }
        let command = get(obj, "command")?.as_str()?.to_string();
        let wall_ns = get(obj, "wall_ns")?.as_num()? as u64;
        let mut phases = Vec::new();
        for phase_val in get(obj, "phases")?.as_array()? {
            let pobj = phase_val.as_object()?;
            let key = get(pobj, "key")?.as_num()? as u32;
            let mut edges = Vec::new();
            for edge_val in get(pobj, "edges")?.as_array()? {
                let eobj = edge_val.as_object()?;
                let site = Site::from_label(get(eobj, "site")?.as_str()?)?;
                let parent = match get(eobj, "parent")? {
                    crate::json::JsonVal::Null => None,
                    other => Some(Site::from_label(other.as_str()?)?),
                };
                edges.push(ProfEdge {
                    site,
                    parent,
                    ns: get(eobj, "ns")?.as_num()? as u64,
                    calls: get(eobj, "calls")?.as_num()? as u64,
                });
            }
            phases.push(PhaseProfile { key, edges });
        }
        Some(SavedProfile {
            command,
            wall_ns,
            report: ProfReport { phases },
        })
    }
}

fn get<'a>(
    obj: &'a [(String, crate::json::JsonVal)],
    key: &str,
) -> Option<&'a crate::json::JsonVal> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn children_ns(merged: &[ProfEdge], site: Site) -> u64 {
    merged
        .iter()
        .filter(|e| e.parent == Some(site))
        .map(|e| e.ns)
        .fold(0, u64::saturating_add)
}

fn render_edge(
    out: &mut String,
    merged: &[ProfEdge],
    e: &ProfEdge,
    depth: usize,
    wall_ns: u64,
    expanded: &mut BTreeSet<usize>,
) {
    let pct = if wall_ns > 0 {
        100.0 * e.ns as f64 / wall_ns as f64
    } else {
        0.0
    };
    let ns_per_call = if e.calls > 0 {
        e.ns as f64 / e.calls as f64
    } else {
        0.0
    };
    let name = format!("{}{}", "  ".repeat(depth), e.site.label());
    let _ = writeln!(
        out,
        "  {:<28} {:>6.1}% {:>12} {:>12} {:>12.1}",
        name,
        pct,
        fmt_ns(e.ns),
        e.calls,
        ns_per_call
    );
    // Expand a site's children only at its first (canonically dominant)
    // occurrence; the edge model keeps one level of ancestry.
    if expanded.insert(e.site.index()) {
        for child in merged.iter().filter(|c| c.parent == Some(e.site)) {
            render_edge(out, merged, child, depth + 1, wall_ns, expanded);
        }
    }
}

fn fold_edge(
    out: &mut String,
    merged: &[ProfEdge],
    e: &ProfEdge,
    prefix: &str,
    expanded: &mut BTreeSet<usize>,
) {
    let path = format!("{prefix};{}", e.site.label());
    if expanded.insert(e.site.index()) {
        let self_ns = e.ns.saturating_sub(children_ns(merged, e.site));
        let _ = writeln!(out, "{path} {self_ns}");
        for child in merged.iter().filter(|c| c.parent == Some(e.site)) {
            fold_edge(out, merged, child, &path, expanded);
        }
    } else {
        let _ = writeln!(out, "{path} {}", e.ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfReport {
        ProfReport {
            phases: vec![
                PhaseProfile {
                    key: 0,
                    edges: vec![ProfEdge {
                        site: Site::MigrationPolicy,
                        parent: None,
                        ns: 2_000,
                        calls: 1,
                    }],
                },
                PhaseProfile {
                    key: 1,
                    edges: vec![
                        ProfEdge {
                            site: Site::Timing,
                            parent: None,
                            ns: 8_000,
                            calls: 2,
                        },
                        ProfEdge {
                            site: Site::Llc,
                            parent: Some(Site::Timing),
                            ns: 3_000,
                            calls: 40,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn attributed_sums_root_edges_only() {
        assert_eq!(sample().attributed_ns(), 10_000);
    }

    #[test]
    fn top_sites_ranks_root_edges_by_time() {
        let top = sample().top_sites(5);
        assert_eq!(
            top,
            vec![
                ("timing".to_string(), 8_000, 2),
                ("migration-policy".to_string(), 2_000, 1),
            ]
        );
        // Child edges never appear, and `n` truncates the ranking.
        assert_eq!(sample().top_sites(1).len(), 1);
        assert_eq!(sample().top_sites(1)[0].0, "timing");
    }

    #[test]
    fn tree_indents_children_and_reports_percentages() {
        let tree = sample().render_tree(20_000);
        assert!(tree.contains("(50.0%)"), "attribution header: {tree}");
        assert!(tree.contains("timing"), "{tree}");
        assert!(tree.contains("  llc"), "child indented: {tree}");
        assert!(tree.contains("phase 0"), "{tree}");
        assert!(tree.contains("setup"), "{tree}");
    }

    #[test]
    fn folded_stacks_carry_self_time() {
        let folded = sample().folded();
        assert!(folded.contains("starnuma;timing 5000"), "{folded}");
        assert!(folded.contains("starnuma;timing;llc 3000"), "{folded}");
        assert!(
            folded.contains("starnuma;migration-policy 2000"),
            "{folded}"
        );
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let json = report.to_json("run --workload bfs", 20_000);
        let saved = ProfReport::from_json(&json);
        let saved = match saved {
            Some(s) => s,
            None => panic!("parse failed for:\n{json}"),
        };
        assert_eq!(saved.command, "run --workload bfs");
        assert_eq!(saved.wall_ns, 20_000);
        assert_eq!(saved.report, report);
    }

    #[test]
    fn from_json_rejects_garbage_and_wrong_schema() {
        assert_eq!(ProfReport::from_json("not json"), None);
        assert_eq!(
            ProfReport::from_json("{\"schema_version\": 2, \"phases\": []}"),
            None
        );
    }
}
