//! The single sanctioned wall-clock reader in the workspace.
//!
//! Simulation crates must never read host time (lint SN002): results are
//! functions of simulated time only. Profiling needs host time, so it is
//! funneled through exactly one type — [`ProfClock`] — whose internals
//! carry the `audit:allow(SN002)` escape. Everything else (the RAII scopes
//! in hot paths, the CLI's session timer) asks this clock, and when
//! profiling is disabled the scopes never ask at all, so a normal run
//! performs zero wall-clock reads outside the job-pool progress meter.

// The two lines below are the profiler's sanctioned wall-clock access;
// every other crate goes through ProfClock (lint SN002 enforces this).
use std::time::Instant; // audit:allow(SN002) — ProfClock is the sole sanctioned reader

/// An opaque wall-clock stamp taken by [`ProfClock`].
#[derive(Clone, Copy, Debug)]
pub struct ClockStamp {
    at: Instant, // audit:allow(SN002) — ProfClock internals only
}

/// The injected wall clock: the only way simulation code is allowed to
/// observe host time, and only ever for attribution (never for results).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProfClock;

impl ProfClock {
    /// Take a stamp of the current host time.
    #[inline]
    pub fn stamp() -> ClockStamp {
        ClockStamp {
            at: Instant::now(), // audit:allow(SN002) — ProfClock internals only
        }
    }

    /// Nanoseconds elapsed since `stamp` was taken, saturating at `u64::MAX`.
    #[inline]
    pub fn elapsed_ns(stamp: ClockStamp) -> u64 {
        let nanos = stamp.at.elapsed().as_nanos();
        u64::try_from(nanos).unwrap_or(u64::MAX)
    }
}

/// A coarse wall timer for whole-command spans (the `starnuma profile`
/// wrapper times the wrapped command with one of these).
#[derive(Clone, Copy, Debug)]
pub struct SessionTimer {
    start: ClockStamp,
}

impl SessionTimer {
    /// Start timing now.
    pub fn start() -> SessionTimer {
        SessionTimer {
            start: ProfClock::stamp(),
        }
    }

    /// Nanoseconds since [`SessionTimer::start`].
    pub fn elapsed_ns(&self) -> u64 {
        ProfClock::elapsed_ns(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_nonzero_after_work() {
        let t = SessionTimer::start();
        let mut acc = 0u64;
        for i in 0..50_000u64 {
            acc = acc.wrapping_add(i.wrapping_mul(2_654_435_761));
        }
        assert!(acc != 1, "keep the loop alive");
        let first = t.elapsed_ns();
        let second = t.elapsed_ns();
        assert!(second >= first, "clock went backwards");
    }
}
