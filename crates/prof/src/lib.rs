//! Deterministic self-profiler for the StarNUMA reproduction.
//!
//! Answers "where does the wall time go?" without compromising the repo's
//! determinism contract. Three pieces:
//!
//! * **Sites** ([`Site`]): a closed, ordered registry of simulation
//!   components (trace generation, TLB tracking, LLC, directory, DRAM,
//!   coherence, the timing loop, migration policy, checkpointing, obs
//!   export). Closed and ordered is the point — it makes cross-worker
//!   merges and rendered reports canonical, like the obs metric registry.
//! * **Scopes** ([`ProfScope`]): RAII guards placed in the simulation hot
//!   paths. Disabled (the default) a scope is one relaxed atomic load;
//!   enabled it stamps [`ProfClock`] and charges inclusive ns + a call to
//!   a `(phase, site, parent)` edge in a thread-local table. Workers flush
//!   via [`flush_thread`]; [`take_report`] drains the merged registry.
//! * **Reports** ([`ProfReport`]): the top-down attribution tree
//!   (`% wall`, ns/call, calls), schema-versioned `profile.json`, and
//!   folded stacks for flamegraph tooling.
//!
//! Wall-clock isolation: [`ProfClock`] is the *only* sanctioned
//! `Instant` reader in the workspace (lint SN002 enforces the boundary),
//! and profiling never feeds back into simulation state — a profiled run
//! produces bit-identical `RunResult`s and obs exports (the
//! `prof_determinism` tier-1 gate proves it).
//!
//! # Examples
//!
//! ```
//! use starnuma_prof::{set_enabled, take_report, ProfScope, Site};
//!
//! starnuma_prof::reset();
//! set_enabled(true);
//! {
//!     let _timing = ProfScope::enter(Site::Timing);
//!     let _llc = ProfScope::enter(Site::Llc);
//! }
//! set_enabled(false);
//! let report = take_report();
//! assert!(!report.is_empty());
//! assert!(report.render_tree(1_000_000).contains("timing"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clock;
pub mod json;
mod report;
mod scope;
mod site;

pub use clock::{ClockStamp, ProfClock, SessionTimer};
pub use report::{PhaseProfile, ProfEdge, ProfReport, SavedProfile};
pub use scope::{
    clear_phase, flush_thread, is_enabled, reset, set_enabled, set_phase, take_report, ProfScope,
    SETUP_KEY,
};
pub use site::{Site, NUM_SITES};
