//! The workspace item graph.
//!
//! Built from every file's [`FileFacts`], the graph knows three things the
//! per-file passes cannot:
//!
//! * **Crate edges** — which crate `use`s which, from `starnuma_*` import
//!   paths. (Topology context for reports; cycles would be a build error
//!   anyway.)
//! * **A fn-name index** — callee name → defining (file, fn) pairs, the
//!   cheap stand-in for real call resolution a zero-dependency analyzer
//!   can afford.
//! * **Boundary fns** — functions whose results cross a merge/export
//!   boundary (named like `merge`/`export`/`to_json`/…, plus everything
//!   they transitively call, two hops deep). SN006 only fires at these:
//!   iterating a `DetMap` in arbitrary order deep inside a simulation
//!   kernel is fine as long as the order never escapes into output.

use std::collections::BTreeMap;

use crate::items::{FileFacts, FnFact};

/// Name stems that mark a fn as sitting on a merge/export boundary.
pub const BOUNDARY_STEMS: &[&str] = &[
    "merge",
    "export",
    "flush",
    "drain",
    "report",
    "render",
    "emit",
    "to_json",
    "write",
    "serialize",
    "checkpoint",
];

/// How many call hops below a boundary fn still count as boundary code.
const BOUNDARY_DEPTH: usize = 2;

/// The workspace-wide item graph over a set of file facts.
pub struct ItemGraph<'a> {
    files: &'a [FileFacts],
    /// `boundary[file][fn]` — whether that fn is boundary code.
    boundary: Vec<Vec<bool>>,
}

impl<'a> ItemGraph<'a> {
    /// Builds the graph. `files` must already be in the workspace's
    /// deterministic (sorted-path) order.
    pub fn build(files: &'a [FileFacts]) -> ItemGraph<'a> {
        // Callee name -> every (file, fn) defining that name.
        let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ji, f) in file.fns.iter().enumerate() {
                by_name.entry(f.name.as_str()).or_default().push((fi, ji));
            }
        }
        let mut boundary: Vec<Vec<bool>> = files
            .iter()
            .map(|f| f.fns.iter().map(is_boundary_name).collect())
            .collect();
        // Propagate boundary-ness down call edges a bounded number of
        // hops: what a boundary fn calls also produces escaping order.
        for _ in 0..BOUNDARY_DEPTH {
            let mut next = boundary.clone();
            for (fi, file) in files.iter().enumerate() {
                for (ji, f) in file.fns.iter().enumerate() {
                    if !boundary[fi][ji] {
                        continue;
                    }
                    for call in &f.calls {
                        if let Some(defs) = by_name.get(call.as_str()) {
                            for &(dfi, dji) in defs {
                                next[dfi][dji] = true;
                            }
                        }
                    }
                }
            }
            if next == boundary {
                break;
            }
            boundary = next;
        }
        ItemGraph { files, boundary }
    }

    /// Whether fn `ji` of file `fi` sits on a merge/export boundary.
    pub fn is_boundary(&self, fi: usize, ji: usize) -> bool {
        self.boundary
            .get(fi)
            .and_then(|f| f.get(ji))
            .copied()
            .unwrap_or(false)
    }

    /// Cross-crate `use` edges `(from_crate, to_crate)`, deduped and
    /// sorted. Crate names are directory names (`types`, `sim`, …).
    pub fn crate_edges(&self) -> Vec<(String, String)> {
        let mut edges = Vec::new();
        for file in self.files {
            for u in &file.uses {
                if let Some(rest) = u.path.strip_prefix("starnuma_") {
                    let dep: String = rest
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric())
                        .collect();
                    if !dep.is_empty() && dep != file.crate_name {
                        edges.push((file.crate_name.clone(), dep));
                    }
                }
            }
        }
        edges.sort();
        edges.dedup();
        edges
    }

    /// Per-crate item counts `(crate, files, fns)`, sorted by crate name —
    /// a cheap summary for reports and tests.
    pub fn crate_summary(&self) -> Vec<(String, usize, usize)> {
        let mut per: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for file in self.files {
            let e = per.entry(file.crate_name.as_str()).or_default();
            e.0 += 1;
            e.1 += file.fns.len();
        }
        per.into_iter()
            .map(|(k, (f, n))| (k.to_string(), f, n))
            .collect()
    }
}

fn is_boundary_name(f: &FnFact) -> bool {
    BOUNDARY_STEMS.iter().any(|s| f.name.contains(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::lexer::lex;

    fn file(path: &str, crate_name: &str, src: &str) -> FileFacts {
        extract(path, crate_name, false, &lex(src))
    }

    #[test]
    fn boundary_names_seed_and_calls_propagate() {
        let a = file(
            "a.rs",
            "sim",
            "pub fn export_stats() { collect(); }\nfn collect() { deep(); }\nfn deep() {}\nfn unrelated() {}\n",
        );
        let files = vec![a];
        let g = ItemGraph::build(&files);
        assert!(g.is_boundary(0, 0), "export_stats is a boundary by name");
        assert!(g.is_boundary(0, 1), "collect is called from a boundary");
        assert!(g.is_boundary(0, 2), "deep is two hops below a boundary");
        assert!(!g.is_boundary(0, 3), "unrelated stays interior");
    }

    #[test]
    fn crate_edges_come_from_starnuma_imports() {
        let a = file(
            "a.rs",
            "sim",
            "use starnuma_types::DetMap;\nuse std::fmt;\n",
        );
        let b = file("b.rs", "obs", "use starnuma_types::Diagnostic;\n");
        let files = vec![a, b];
        let g = ItemGraph::build(&files);
        assert_eq!(
            g.crate_edges(),
            vec![
                ("obs".to_string(), "types".to_string()),
                ("sim".to_string(), "types".to_string())
            ]
        );
        let summary = g.crate_summary();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].0, "obs");
    }

    #[test]
    fn self_edges_are_not_reported() {
        let a = file("a.rs", "types", "use starnuma_types::DetMap;\n");
        let files = vec![a];
        let g = ItemGraph::build(&files);
        assert!(g.crate_edges().is_empty());
    }
}
