//! Whole-workspace dataflow lints over the item graph (SN006, SN007,
//! SN010).
//!
//! These need cross-file context a per-line pass cannot have: whether a
//! fn sits on a merge/export boundary (call edges), whether an iterated
//! identifier holds a `DetMap` (field/local/param facts), whether a pub
//! fn's return order is ever canonicalized. They re-run on every lint —
//! the facts are already extracted, so the pass is a cheap walk.

use starnuma_types::Diagnostic;

use crate::graph::ItemGraph;
use crate::items::FileFacts;
use crate::lints::order_stable_api_scope;

/// How many lines above a float accumulation a `canonical`-order comment
/// still counts as covering it.
const CANONICAL_COMMENT_REACH: usize = 3;

/// Runs SN006/SN007/SN010 over the whole workspace's facts.
pub fn lint_dataflow(files: &[FileFacts]) -> Vec<Diagnostic> {
    let graph = ItemGraph::build(files);
    let mut findings = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (ji, f) in file.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            // SN006: insertion-order iteration of a DetMap escaping
            // through a merge/export boundary without canonicalization.
            if graph.is_boundary(fi, ji) && !f.has_sorted_drain() && !f.has_sort() {
                for it in &f.iterations {
                    if it.method == "sorted_drain" || !file.is_det_ident(f, &it.recv) {
                        continue;
                    }
                    if file.allowed("SN006", it.line) {
                        continue;
                    }
                    findings.push(Diagnostic::error(
                        "SN006",
                        format!("{}:{}", file.path, it.line),
                        format!(
                            "DetMap `{}` iterated in insertion order inside \
                             boundary fn `{}`",
                            it.recv, f.name
                        ),
                        "merge/export boundaries must canonicalize: use \
                         `sorted_drain()`, sort the collected Vec, or mark \
                         `// audit:allow(SN006)` with an order argument",
                    ));
                }
            }
            // SN007: float accumulation in a loop without a stated
            // canonical order.
            for acc in &f.accums {
                let covered = file
                    .canonical_lines
                    .iter()
                    .any(|l| *l <= acc.line && acc.line - l <= CANONICAL_COMMENT_REACH);
                if covered || file.allowed("SN007", acc.line) {
                    continue;
                }
                findings.push(Diagnostic::error(
                    "SN007",
                    format!("{}:{}", file.path, acc.line),
                    format!(
                        "float accumulator `{}` summed in a loop without a \
                         canonical-order note",
                        acc.name
                    ),
                    "float addition is order-sensitive: state the iteration \
                     order in a `// canonical order: …` comment within 3 \
                     lines, or mark `// audit:allow(SN007)`",
                ));
            }
            // SN010: public API returning a Vec whose order comes from a
            // DetMap iteration that is never canonicalized.
            if f.is_pub
                && order_stable_api_scope().contains(&file.crate_name.as_str())
                && f.ret.starts_with("Vec")
                && !f.has_sorted_drain()
                && !f.has_sort()
            {
                let det_iter = f
                    .iterations
                    .iter()
                    .find(|it| file.is_det_ident(f, &it.recv));
                if let Some(it) = det_iter {
                    if !file.allowed("SN010", f.line) && !file.allowed("SN010", it.line) {
                        findings.push(Diagnostic::error(
                            "SN010",
                            format!("{}:{}", file.path, f.line),
                            format!(
                                "pub fn `{}` returns a Vec built from DetMap \
                                 `{}` in iteration order",
                                f.name, it.recv
                            ),
                            "public APIs in simulation crates must return \
                             order-stable Vecs: sort before returning, use \
                             `sorted_drain()`, or mark \
                             `// audit:allow(SN010)` documenting the order \
                             contract",
                        ));
                    }
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::lexer::lex;

    fn facts(path: &str, crate_name: &str, src: &str) -> FileFacts {
        extract(path, crate_name, false, &lex(src))
    }

    #[test]
    fn sn006_fires_at_boundaries_and_sorted_drain_clears_it() {
        let dirty = facts(
            "sim/m.rs",
            "sim",
            "pub fn export_counts(m: &DetMap<u64, u64>) -> u64 {\n    let mut n = 0u64;\n    for (_k, v) in m.iter() {\n        n += v;\n    }\n    n\n}\n",
        );
        let files = vec![dirty];
        let f = lint_dataflow(&files);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "SN006");
        assert!(f[0].location.ends_with(":3"));

        let clean = facts(
            "sim/m.rs",
            "sim",
            "pub fn export_counts(m: &mut DetMap<u64, u64>) -> Vec<(u64, u64)> {\n    m.sorted_drain()\n}\n",
        );
        assert!(lint_dataflow(&[clean]).is_empty());
    }

    #[test]
    fn sn006_does_not_fire_off_boundary_or_when_allowed() {
        let interior = facts(
            "sim/m.rs",
            "sim",
            "fn tally(m: &DetMap<u64, u64>) -> u64 {\n    let mut n = 0u64;\n    for (_k, v) in m.iter() {\n        n += v;\n    }\n    n\n}\n",
        );
        assert!(lint_dataflow(&[interior]).is_empty());

        let allowed = facts(
            "sim/m.rs",
            "sim",
            "pub fn export_counts(m: &DetMap<u64, u64>) -> u64 {\n    let mut n = 0u64;\n    // audit:allow(SN006) summation is order-independent over u64\n    for (_k, v) in m.iter() {\n        n += v;\n    }\n    n\n}\n",
        );
        assert!(lint_dataflow(&[allowed]).is_empty());
    }

    #[test]
    fn sn006_reaches_callees_of_boundary_fns() {
        let file = facts(
            "sim/m.rs",
            "sim",
            "pub fn export_all(m: &DetMap<u64, u64>) -> u64 { tally(m) }\nfn tally(m: &DetMap<u64, u64>) -> u64 {\n    let mut n = 0u64;\n    for (_k, v) in m.iter() {\n        n += v;\n    }\n    n\n}\n",
        );
        let f = lint_dataflow(&[file]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`tally`"));
    }

    #[test]
    fn sn007_requires_canonical_note_within_reach() {
        let dirty = facts(
            "sim/m.rs",
            "sim",
            "fn mean(xs: &[f64]) -> f64 {\n    let mut total = 0.0;\n    for x in xs {\n        total += x;\n    }\n    total\n}\n",
        );
        let f = lint_dataflow(&[dirty]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "SN007");

        let noted = facts(
            "sim/m.rs",
            "sim",
            "fn mean(xs: &[f64]) -> f64 {\n    let mut total = 0.0;\n    // canonical order: xs is slice-ordered by caller\n    for x in xs {\n        total += x;\n    }\n    total\n}\n",
        );
        assert!(lint_dataflow(&[noted]).is_empty());
    }

    #[test]
    fn sn010_fires_on_pub_vec_from_detmap_iteration() {
        let dirty = facts(
            "sim/m.rs",
            "sim",
            "pub fn snapshot(m: &DetMap<u64, u64>) -> Vec<u64> {\n    m.values().copied().collect()\n}\n",
        );
        let f = lint_dataflow(&[dirty]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "SN010");

        let sorted = facts(
            "sim/m.rs",
            "sim",
            "pub fn snapshot(m: &DetMap<u64, u64>) -> Vec<u64> {\n    let mut v: Vec<u64> = m.values().copied().collect();\n    v.sort();\n    v\n}\n",
        );
        assert!(lint_dataflow(&[sorted]).is_empty());
    }

    #[test]
    fn sn010_is_scoped_to_simulation_crates() {
        let front_end = facts(
            "cli/m.rs",
            "cli",
            "pub fn snapshot(m: &DetMap<u64, u64>) -> Vec<u64> {\n    m.values().copied().collect()\n}\n",
        );
        assert!(lint_dataflow(&[front_end]).is_empty());
    }
}
