//! Per-line source lints (SN001–SN005, SN008, SN009, SN011).
//!
//! These run over the lexer's reconstructed *code lines* — comments gone,
//! string/char contents blanked — so a forbidden token can never fire from
//! inside text, no matter how many lines the literal or comment spans.
//! The pass stays line-shaped on purpose: findings are cheap to cache per
//! file, and the brace-depth `#[cfg(test)]` skip from the original
//! scanner ports over unchanged.

use starnuma_types::Diagnostic;

use crate::lexer::{allow_lines, code_lines, lex};

/// Target types whose `as` casts SN009 treats as narrowing. Wider targets
/// (`u64`, `usize`, `f64`) cannot silently truncate the workspace's
/// counters; lossless widenings are not flagged.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Lints one source file's text. `label` names it in diagnostics;
/// `is_crate_root` enables the SN004 attribute check.
///
/// Fires every source rule unscoped; workspace-level crate scoping
/// (bench may read wall clocks, only sim/types get SN009, …) is applied
/// by [`crate::lints::scope_findings`] in the driver.
pub fn lint_source(label: &str, source: &str, is_crate_root: bool) -> Vec<Diagnostic> {
    let tokens = lex(source);
    let lines = code_lines(source, &tokens);
    let allows = allow_lines(&tokens);
    let mut findings = Vec::new();

    let mut depth: i64 = 0;
    // Depth at which the innermost `#[cfg(test)] mod { … }` was entered.
    let mut test_depth: Option<i64> = None;
    let mut pending_cfg_test = false;

    for (idx, code) in lines.iter().enumerate() {
        let line_no = idx + 1;
        let trimmed = code.trim_start();

        if trimmed.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
        } else if pending_cfg_test && !trimmed.starts_with('#') {
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                if code.contains('{') {
                    test_depth = test_depth.or(Some(depth));
                }
                // `mod x;` points at a separate file cargo only builds for
                // tests; nothing to skip here.
                pending_cfg_test = false;
            } else if !trimmed.is_empty() {
                pending_cfg_test = false;
            }
        }

        let in_test = test_depth.is_some();
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        depth += opens - closes;
        if let Some(td) = test_depth {
            if depth <= td {
                test_depth = None;
            }
        }

        if in_test || trimmed.is_empty() {
            continue;
        }

        let suppressed = |rule: &str| {
            allows
                .iter()
                .any(|(l, c)| c == rule && (*l == line_no || l + 1 == line_no))
        };
        let loc = format!("{label}:{line_no}");

        if !suppressed("SN001") {
            if code.contains(".unwrap()") {
                findings.push(Diagnostic::error(
                    "SN001",
                    loc.clone(),
                    "`unwrap()` in library code",
                    "return a typed StarNumaError (or mark `// audit:allow(SN001)` \
                     with a documented panic contract)",
                ));
            }
            if code.contains(".expect(") {
                findings.push(Diagnostic::error(
                    "SN001",
                    loc.clone(),
                    "`expect()` in library code",
                    "return a typed StarNumaError (or mark `// audit:allow(SN001)` \
                     with a documented panic contract)",
                ));
            }
            if code.contains("panic!(") {
                findings.push(Diagnostic::error(
                    "SN001",
                    loc.clone(),
                    "`panic!` in library code",
                    "return a typed StarNumaError (or mark `// audit:allow(SN001)` \
                     with a documented panic contract)",
                ));
            }
        }
        // Identifier-boundary match: a bare `Instant` binding smuggles the
        // host clock just as well as a literal `Instant::now()` call, but
        // `InstantLike`/`MyInstant` identifiers must not fire.
        if !suppressed("SN002")
            && (contains_identifier(code, "Instant") || contains_identifier(code, "SystemTime"))
        {
            findings.push(Diagnostic::error(
                "SN002",
                loc.clone(),
                "wall-clock type in a simulation crate",
                "simulated time only: derive timing from Cycles/Nanos; wall \
                 time goes through starnuma_prof::ProfClock (whose internals \
                 are the allow-listed exception)",
            ));
        }
        if !suppressed("SN003") && (code.contains("HashMap") || code.contains("HashSet")) {
            findings.push(Diagnostic::error(
                "SN003",
                loc.clone(),
                "hash collection in library code (iteration order is unstable)",
                "use DetMap, BTreeMap/BTreeSet (all workspace keys are Ord), \
                 or drain through a sorted Vec",
            ));
        }
        // `println!(` is a suffix of `eprintln!(`, so one match covers both.
        if !suppressed("SN005") && code.contains("println!(") {
            findings.push(Diagnostic::error(
                "SN005",
                loc.clone(),
                "direct stdout/stderr print in library code",
                "emit a structured obs event instead (or mark \
                 `// audit:allow(SN005)` for deliberate operator output)",
            ));
        }
        if !suppressed("SN008")
            && (contains_identifier(code, "available_parallelism")
                || contains_identifier(code, "ThreadId")
                || code.contains("thread::current"))
        {
            findings.push(Diagnostic::error(
                "SN008",
                loc.clone(),
                "thread-topology read in a simulation crate",
                "worker counts and thread ids must never reach simulated \
                 state; keep them in the scheduling layer (or mark \
                 `// audit:allow(SN008)` with a determinism argument)",
            ));
        }
        if !suppressed("SN009") {
            if let Some(target) = narrowing_cast(code) {
                findings.push(Diagnostic::error(
                    "SN009",
                    loc.clone(),
                    format!("narrowing `as {target}` cast can silently truncate"),
                    "use `try_from` with a typed error, a lossless `::from`, \
                     or mark `// audit:allow(SN009)` with a bound argument",
                ));
            }
        }
        if !suppressed("SN011")
            && (code.contains(".sort_unstable_by(") || code.contains(".sort_unstable_by_key("))
        {
            findings.push(Diagnostic::error(
                "SN011",
                loc.clone(),
                "`sort_unstable` with a key extractor (ties reorder freely)",
                "use stable `sort_by` / `sort_by_key`, or mark \
                 `// audit:allow(SN011)` with a keys-are-unique argument",
            ));
        }
    }

    if is_crate_root {
        for attr in ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"] {
            if !source.contains(attr) {
                findings.push(Diagnostic::error(
                    "SN004",
                    format!("{label}:1"),
                    format!("crate root is missing `{attr}`"),
                    "add the attribute below the crate-level doc comment",
                ));
            }
        }
    }

    findings
}

/// Whether `needle` occurs in `haystack` as a standalone identifier —
/// not as a substring of a longer one (`InstantLike`, `MyInstant`).
pub(crate) fn contains_identifier(haystack: &str, needle: &str) -> bool {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before_ok = !haystack[..at].chars().next_back().is_some_and(is_ident);
        let after_ok = !haystack[at + needle.len()..]
            .chars()
            .next()
            .is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Finds the first narrowing `as <target>` cast on a code line, returning
/// the target type name.
fn narrowing_cast(code: &str) -> Option<&'static str> {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = code[start..].find("as") {
        let at = start + pos;
        start = at + 2;
        // `as` must stand alone: not `alias`, not `has`.
        if code[..at].chars().next_back().is_some_and(is_ident) {
            continue;
        }
        let rest = &code[at + 2..];
        if rest.chars().next().is_some_and(is_ident) {
            continue;
        }
        let target: String = rest
            .trim_start()
            .chars()
            .take_while(|c| is_ident(*c))
            .collect();
        if let Some(t) = NARROW_TARGETS.iter().find(|t| **t == target) {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_expect_and_panic() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let y = x.unwrap();\n    let z = x.expect(\"msg\");\n    panic!(\"no\");\n}\n";
        let codes: Vec<_> = lint_source("f.rs", src, false)
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, vec!["SN001", "SN001", "SN001"]);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(lint_source("f.rs", src, false).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        None::<u32>.unwrap();\n        let m = std::collections::HashMap::<u32, u32>::new();\n        let _ = m;\n    }\n}\n";
        assert!(lint_source("f.rs", src, false).is_empty());
    }

    #[test]
    fn code_after_test_module_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n\nfn after(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = lint_source("f.rs", src, false);
        assert_eq!(f.len(), 1);
        assert!(f[0].location.ends_with(":6"));
    }

    #[test]
    fn wallclock_and_hash_collections_flagged() {
        let src = "use std::time::Instant;\nuse std::collections::HashMap;\nfn f() { let _ = Instant::now(); }\n";
        let codes: Vec<_> = lint_source("f.rs", src, false)
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, vec!["SN002", "SN003", "SN002"]);
    }

    #[test]
    fn bare_wallclock_types_flagged_on_identifier_boundaries() {
        let dirty = "pub struct Timer {\n    started: std::time::Instant,\n}\nfn f() -> u64 {\n    let t = std::time::SystemTime::UNIX_EPOCH;\n    let _ = t;\n    0\n}\n";
        let codes: Vec<_> = lint_source("f.rs", dirty, false)
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, vec!["SN002", "SN002"]);
        let clean = "pub struct InstantLike;\npub struct MyInstant;\npub fn instant_of(x: InstantLike) -> InstantLike { x }\ntype SystemTimeout = u64;\n";
        assert!(lint_source("f.rs", clean, false).is_empty());
    }

    #[test]
    fn profclock_style_allow_markers_satisfy_sn002() {
        let clean = "use std::time::Instant; // audit:allow(SN002)\npub struct ProfClock {\n    at: Instant, // audit:allow(SN002)\n}\nimpl ProfClock {\n    pub fn stamp() -> Self {\n        // audit:allow(SN002)\n        ProfClock { at: Instant::now() }\n    }\n}\n";
        assert!(lint_source("f.rs", clean, false).is_empty());
    }

    #[test]
    fn detmap_is_accepted_where_hashmap_is_flagged() {
        let clean = "use starnuma_types::DetMap;\nuse starnuma_types::BlockAddr;\npub struct Directory {\n    entries: DetMap<BlockAddr, u32>,\n}\n";
        assert!(lint_source("f.rs", clean, false).is_empty());
        let dirty = "pub struct Directory {\n    entries: std::collections::HashMap<u64, u32>,\n    sharers: std::collections::HashSet<u64>,\n}\n";
        let codes: Vec<_> = lint_source("f.rs", dirty, false)
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, vec!["SN003", "SN003"]);
    }

    #[test]
    fn allow_marker_suppresses_same_and_next_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // audit:allow(SN001)\n    let a = x.unwrap();\n    let b = x.unwrap(); // audit:allow(SN001)\n    a + b\n}\n";
        assert!(lint_source("f.rs", src, false).is_empty());
    }

    #[test]
    fn allow_marker_is_rule_specific() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // audit:allow(SN003)\n";
        assert_eq!(lint_source("f.rs", src, false).len(), 1);
    }

    #[test]
    fn direct_prints_are_flagged() {
        let src = "fn f() {\n    println!(\"hi\");\n    eprintln!(\"also\");\n}\n";
        let codes: Vec<_> = lint_source("f.rs", src, false)
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, vec!["SN005", "SN005"]);
        let allowed = "fn f() {\n    eprintln!(\"ok\"); // audit:allow(SN005)\n}\n";
        assert!(lint_source("f.rs", allowed, false).is_empty());
    }

    #[test]
    fn tokens_inside_strings_do_not_fire() {
        let src = "fn f() -> &'static str { \"call .unwrap() or panic!(HashMap)\" }\n";
        assert!(lint_source("f.rs", src, false).is_empty());
    }

    #[test]
    fn tokens_inside_comments_do_not_fire() {
        let src = "fn f() {} // the old code called .unwrap() on a HashMap\n/// docs mention panic!(…) too\nfn g() {}\n";
        assert!(lint_source("f.rs", src, false).is_empty());
    }

    #[test]
    fn multiline_block_comments_and_raw_strings_do_not_leak() {
        // The line-based scanner's blind spots: tokens spanning or hiding
        // inside multi-line constructs.
        let src = "/* Instant\n   SystemTime on a later comment line */\nfn f() -> String {\n    let s = r#\"HashMap<u64, u64> println!(\"#.to_string();\n    let t = \"first\n.unwrap() second\".to_string();\n    s + &t\n}\n";
        assert!(lint_source("f.rs", src, false).is_empty());
    }

    #[test]
    fn crate_root_attributes_required() {
        let f = lint_source("src/lib.rs", "//! docs\npub fn x() {}\n", true);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|d| d.code == "SN004"));
        let ok = "//! docs\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn x() {}\n";
        assert!(lint_source("src/lib.rs", ok, true).is_empty());
    }

    #[test]
    fn lifetimes_do_not_confuse_the_lexer() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\n";
        assert!(lint_source("f.rs", src, false).is_empty());
    }

    #[test]
    fn should_panic_attribute_is_not_a_panic() {
        let src = "#[should_panic(expected = \"boom\")]\nfn not_really_lib() {}\n";
        assert!(lint_source("f.rs", src, false).is_empty());
    }

    #[test]
    fn thread_topology_reads_are_flagged() {
        let src = "fn f() -> usize {\n    std::thread::available_parallelism().map_or(1, |n| n.get())\n}\nfn g() -> std::thread::ThreadId {\n    std::thread::current().id()\n}\n";
        let codes: Vec<_> = lint_source("f.rs", src, false)
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, vec!["SN008", "SN008", "SN008"]);
        let allowed = "fn f() -> usize {\n    // audit:allow(SN008) worker count never reaches sim state\n    std::thread::available_parallelism().map_or(1, |n| n.get())\n}\n";
        assert!(lint_source("f.rs", allowed, false).is_empty());
    }

    #[test]
    fn narrowing_casts_are_flagged_and_widening_is_not() {
        let dirty = "fn f(x: u64) -> u32 { x as u32 }\n";
        let codes: Vec<_> = lint_source("f.rs", dirty, false)
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, vec!["SN009"]);
        let clean = "fn f(x: u32) -> u64 { x as u64 }\nfn g(x: u32) -> usize { x as usize }\nfn h(x: u32) -> f64 { x as f64 }\nfn alias(x: u64) -> u64 { let has = x; has }\n";
        assert!(lint_source("f.rs", clean, false).is_empty());
        let allowed =
            "fn f(x: u64) -> u32 { x as u32 } // audit:allow(SN009) bounded by table size\n";
        assert!(lint_source("f.rs", allowed, false).is_empty());
    }

    #[test]
    fn keyed_unstable_sorts_are_flagged_but_plain_sorts_are_not() {
        let dirty = "fn f(v: &mut Vec<(u32, u32)>) {\n    v.sort_unstable_by_key(|e| e.0);\n    v.sort_unstable_by(|a, b| a.0.cmp(&b.0));\n}\n";
        let codes: Vec<_> = lint_source("f.rs", dirty, false)
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, vec!["SN011", "SN011"]);
        let clean = "fn f(v: &mut Vec<u32>) {\n    v.sort_unstable();\n    v.sort();\n    v.sort_by_key(|e| *e);\n}\n";
        assert!(lint_source("f.rs", clean, false).is_empty());
    }
}
