//! Manifest drift lints (SN012) over `Cargo.toml` files.
//!
//! The workspace's dependency policy is structural: every crate depends on
//! sibling crates through `workspace = true` entries resolved by the root
//! manifest's path-only `[workspace.dependencies]` table, and every build
//! target forbids `unsafe_code` at its root. This pass parses just enough
//! TOML (sections, `key = value` lines, inline tables) to catch drift:
//! a crates.io dependency sneaking in, or a `main.rs` without the forbid.
//!
//! Suppression uses TOML comments: `# audit:allow(SN012)` on the line or
//! the line above.

use std::fs;
use std::path::Path;

use starnuma_types::Diagnostic;

/// Section headers whose entries are dependencies.
const DEP_SECTIONS: &[&str] = &[
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

/// Lints one manifest's text. `label` names it in diagnostics.
pub fn lint_manifest_source(label: &str, source: &str) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    let mut section = String::new();
    let mut prev_allowed = false;
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let allowed_here = raw.contains("audit:allow(SN012)");
        let allowed = allowed_here || prev_allowed;
        prev_allowed = allowed_here;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        if !DEP_SECTIONS.contains(&section.as_str()) {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim();
        let value = value.trim();
        // `foo.workspace = true` and `foo = { workspace = true }` both
        // delegate to the root table; `path = …` entries are in-repo.
        let is_workspace_ref = name.ends_with(".workspace") && value == "true"
            || value.contains("workspace = true")
            || value.contains("workspace=true");
        let is_path_dep = value.contains("path =") || value.contains("path=");
        if !is_workspace_ref && !is_path_dep && !allowed {
            findings.push(Diagnostic::error(
                "SN012",
                format!("{label}:{line_no}"),
                format!(
                    "dependency `{}` in [{section}] is not a workspace/path \
                     dependency",
                    name.trim_end_matches(".workspace")
                ),
                "route shared deps through [workspace.dependencies] with a \
                 path (the workspace is zero-external-dependency by design), \
                 or mark `# audit:allow(SN012)`",
            ));
        }
    }
    findings
}

/// Lints every manifest under `root` (the root `Cargo.toml` plus each
/// `crates/*/Cargo.toml`), and checks that every build-target root
/// (`src/main.rs` next to a manifest) carries `#![forbid(unsafe_code)]` —
/// `lib.rs` roots are already covered by SN004.
pub fn lint_manifests(root: &Path) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    let mut manifest_dirs = vec![root.to_path_buf()];
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut dirs: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        dirs.sort();
        manifest_dirs.extend(dirs);
    }
    for dir in manifest_dirs {
        let manifest = dir.join("Cargo.toml");
        let Ok(text) = fs::read_to_string(&manifest) else {
            continue;
        };
        let label = manifest
            .strip_prefix(root)
            .unwrap_or(&manifest)
            .to_string_lossy()
            .into_owned();
        findings.extend(lint_manifest_source(&label, &text));
        let main_rs = dir.join("src").join("main.rs");
        if let Ok(main_src) = fs::read_to_string(&main_rs) {
            // Check *code*, not raw text: an attribute named inside a doc
            // comment must not satisfy the rule, and an allow marker is
            // only honored in a real comment.
            let tokens = crate::lexer::lex(&main_src);
            let code = crate::lexer::code_lines(&main_src, &tokens).join("\n");
            let allowed = crate::lexer::allow_lines(&tokens)
                .iter()
                .any(|(_, c)| c == "SN012");
            if !code.contains("#![forbid(unsafe_code)]") && !allowed {
                let main_label = main_rs
                    .strip_prefix(root)
                    .unwrap_or(&main_rs)
                    .to_string_lossy()
                    .into_owned();
                findings.push(Diagnostic::error(
                    "SN012",
                    format!("{main_label}:1"),
                    "binary root is missing `#![forbid(unsafe_code)]`",
                    "bin targets are crate roots too; add the attribute \
                     below the crate-level doc comment",
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_and_path_deps_are_clean() {
        let src = "[package]\nname = \"x\"\n\n[dependencies]\nstarnuma-types = { workspace = true }\nstarnuma-sim.workspace = true\nlocal = { path = \"../local\" }\n";
        assert!(lint_manifest_source("Cargo.toml", src).is_empty());
    }

    #[test]
    fn external_deps_are_flagged() {
        let src = "[dependencies]\nserde = \"1.0\"\nrand = { version = \"0.8\" }\n";
        let f = lint_manifest_source("Cargo.toml", src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|d| d.code == "SN012"));
        assert!(f[0].message.contains("`serde`"));
    }

    #[test]
    fn dev_dependencies_are_checked_too() {
        let src = "[dev-dependencies]\ncriterion = \"0.5\"\n";
        assert_eq!(lint_manifest_source("Cargo.toml", src).len(), 1);
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let src = "[dependencies]\nserde = \"1.0\" # audit:allow(SN012)\n# audit:allow(SN012)\nrand = \"0.8\"\n";
        assert!(lint_manifest_source("Cargo.toml", src).is_empty());
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let src = "[package]\nname = \"x\"\nversion = \"0.1.0\"\nedition = \"2021\"\n\n[features]\ndefault = []\n";
        assert!(lint_manifest_source("Cargo.toml", src).is_empty());
    }

    #[test]
    fn workspace_dependencies_table_requires_paths() {
        let clean = "[workspace.dependencies]\nstarnuma-types = { path = \"crates/types\" }\n";
        assert!(lint_manifest_source("Cargo.toml", clean).is_empty());
        let dirty = "[workspace.dependencies]\nserde = \"1.0\"\n";
        assert_eq!(lint_manifest_source("Cargo.toml", dirty).len(), 1);
    }
}
