//! The lint passes.
//!
//! Three layers, in the order the driver runs them:
//!
//! * [`source`] — per-line token lints over one file (SN001–SN005 plus the
//!   new SN008/SN009/SN011). Pure per-file, so their findings are safe to
//!   cache by file digest.
//! * [`dataflow`] — whole-workspace passes over the item graph
//!   (SN006/SN007/SN010). Cheap once facts exist; always re-run.
//! * [`manifest`] — `Cargo.toml` drift checks (SN012). Always re-run.
//!
//! Crate-level scoping (which crates a rule applies to) lives here so the
//! driver and the tests agree on one source of truth.

pub mod dataflow;
pub mod manifest;
pub mod source;

/// Crate directory names exempt from SN002 (wall-clock): the benchmark
/// harness must measure real time; everything else simulates time.
pub fn wallclock_exempt() -> &'static [&'static str] {
    &["bench"]
}

/// Crate directory names exempt from SN005 (direct prints): the CLI and
/// the benchmark harness are operator-facing front ends, and the obs crate
/// owns structured rendering. Library crates must route operator-visible
/// output through the obs event journal instead of printing.
pub fn println_exempt() -> &'static [&'static str] {
    &["bench", "cli", "obs"]
}

/// Crate directory names exempt from SN008 (thread-topology reads): the
/// CLI and bench harness may size themselves to the host; simulation
/// libraries must not let worker counts reach simulated state.
pub fn thread_topology_exempt() -> &'static [&'static str] {
    &["bench", "cli"]
}

/// Crates where SN009 (narrowing `as` casts) applies: the simulation
/// kernel and the shared types, where a silent truncation corrupts
/// results instead of merely mis-rendering them.
pub fn truncation_scope() -> &'static [&'static str] {
    &["sim", "types"]
}

/// Crates whose public APIs SN010 holds to order-stability: everything on
/// the simulation side of the workspace. Front ends (cli/bench) and the
/// analyzer itself are exempt.
pub fn order_stable_api_scope() -> &'static [&'static str] {
    &[
        "sim",
        "core",
        "mem",
        "cache",
        "coherence",
        "migration",
        "topology",
        "trace",
    ]
}

/// Applies the crate-level scoping rules to one file's source-pass
/// findings. `crate_name` is the crate directory name (empty for the root
/// package, which is treated as a front end).
pub fn scope_findings(findings: &mut Vec<starnuma_types::Diagnostic>, crate_name: &str) {
    let is_front_end = crate_name.is_empty();
    if wallclock_exempt().contains(&crate_name) {
        findings.retain(|d| d.code != "SN002");
    }
    if is_front_end || println_exempt().contains(&crate_name) {
        findings.retain(|d| d.code != "SN005");
    }
    if is_front_end || thread_topology_exempt().contains(&crate_name) {
        findings.retain(|d| d.code != "SN008");
    }
    if !truncation_scope().contains(&crate_name) {
        findings.retain(|d| d.code != "SN009");
    }
}
