//! Pass 1: the source-lint scanner.
//!
//! A deliberately simple line/token scanner — not a parser. It strips line
//! comments and string literals, tracks brace depth to skip `#[cfg(test)]`
//! modules, and matches the forbidden tokens textually. The trade-off is
//! explicit: a handful of syntactic blind spots (multi-line string
//! literals containing braces) in exchange for zero dependencies and
//! sub-millisecond whole-workspace scans.

use std::fs;
use std::path::{Path, PathBuf};

use starnuma_types::{Diagnostic, StarNumaError};

/// Crate directory names exempt from SN002 (wall-clock): the benchmark
/// harness must measure real time; everything else simulates time.
pub fn wallclock_exempt() -> &'static [&'static str] {
    &["bench"]
}

/// Crate directory names exempt from SN005 (direct prints): the CLI and
/// the benchmark harness are operator-facing front ends, and the obs crate
/// owns structured rendering. Library crates must route operator-visible
/// output through the obs event journal instead of printing.
pub fn println_exempt() -> &'static [&'static str] {
    &["bench", "cli", "obs"]
}

/// Scans a workspace rooted at `root`: `src/` plus every `crates/*/src/`.
///
/// Returns all findings, sorted by file then line, so output order is
/// deterministic regardless of directory enumeration order.
///
/// # Errors
///
/// Returns [`StarNumaError::Io`] when a source tree cannot be read, or
/// when `root` contains no Rust sources at all — a mistyped path must not
/// read as a clean scan.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, StarNumaError> {
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    let mut src_dirs: Vec<(PathBuf, String)> = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        src_dirs.push((root_src, String::new()));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| StarNumaError::Io(format!("{}: {e}", crates_dir.display())))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.join("src").is_dir())
            .collect();
        entries.sort();
        for c in entries {
            let name = c
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            src_dirs.push((c.join("src"), name));
        }
    }
    for (src, crate_name) in src_dirs {
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        let skip_wallclock = wallclock_exempt().contains(&crate_name.as_str());
        let skip_println = println_exempt().contains(&crate_name.as_str());
        for file in files {
            files_scanned += 1;
            let source = fs::read_to_string(&file)
                .map_err(|e| StarNumaError::Io(format!("{}: {e}", file.display())))?;
            let label = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .into_owned();
            let is_crate_root = file.file_name().is_some_and(|n| n == "lib.rs")
                && file.parent().is_some_and(|p| p.ends_with("src"));
            let mut f = lint_source(&label, &source, is_crate_root);
            if skip_wallclock {
                f.retain(|d| d.code != "SN002");
            }
            if skip_println {
                f.retain(|d| d.code != "SN005");
            }
            findings.extend(f);
        }
    }
    if files_scanned == 0 {
        return Err(StarNumaError::Io(format!(
            "{}: no Rust sources found (expected src/ or crates/*/src/)",
            root.display()
        )));
    }
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), StarNumaError> {
    for entry in
        fs::read_dir(dir).map_err(|e| StarNumaError::Io(format!("{}: {e}", dir.display())))?
    {
        let entry = entry.map_err(|e| StarNumaError::Io(e.to_string()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints one source file's text. `label` names it in diagnostics;
/// `is_crate_root` enables the SN004 attribute check.
pub fn lint_source(label: &str, source: &str, is_crate_root: bool) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    let mut depth: i64 = 0;
    // Depth at which the innermost `#[cfg(test)] mod { … }` was entered.
    let mut test_depth: Option<i64> = None;
    let mut pending_cfg_test = false;
    let mut prev_allows: Vec<String> = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = raw.trim_start();
        let allows = allow_markers(raw);
        let code = strip_comments_and_strings(raw);

        // Doc comments and attributes carry no executable code.
        let is_doc = trimmed.starts_with("///") || trimmed.starts_with("//!");
        let is_comment = trimmed.starts_with("//");

        if trimmed.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
        } else if pending_cfg_test && !trimmed.starts_with('#') {
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                if code.contains('{') {
                    test_depth = test_depth.or(Some(depth));
                }
                // `mod x;` points at a separate file cargo only builds for
                // tests; nothing to skip here.
                pending_cfg_test = false;
            } else if !trimmed.is_empty() {
                pending_cfg_test = false;
            }
        }

        let in_test = test_depth.is_some();
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        depth += opens - closes;
        if let Some(td) = test_depth {
            if depth <= td {
                test_depth = None;
            }
        }

        if in_test || is_doc || is_comment {
            prev_allows = allows;
            continue;
        }

        let suppressed =
            |rule: &str| allows.iter().any(|a| a == rule) || prev_allows.iter().any(|a| a == rule);
        let loc = format!("{label}:{line_no}");

        if !suppressed("SN001") {
            if code.contains(".unwrap()") {
                findings.push(Diagnostic::error(
                    "SN001",
                    loc.clone(),
                    "`unwrap()` in library code",
                    "return a typed StarNumaError (or mark `// audit:allow(SN001)` \
                     with a documented panic contract)",
                ));
            }
            if code.contains(".expect(") {
                findings.push(Diagnostic::error(
                    "SN001",
                    loc.clone(),
                    "`expect()` in library code",
                    "return a typed StarNumaError (or mark `// audit:allow(SN001)` \
                     with a documented panic contract)",
                ));
            }
            if code.contains("panic!(") {
                findings.push(Diagnostic::error(
                    "SN001",
                    loc.clone(),
                    "`panic!` in library code",
                    "return a typed StarNumaError (or mark `// audit:allow(SN001)` \
                     with a documented panic contract)",
                ));
            }
        }
        // Identifier-boundary match: a bare `Instant` binding smuggles the
        // host clock just as well as a literal `Instant::now()` call, but
        // `InstantLike`/`MyInstant` identifiers must not fire.
        if !suppressed("SN002")
            && (contains_identifier(&code, "Instant") || contains_identifier(&code, "SystemTime"))
        {
            findings.push(Diagnostic::error(
                "SN002",
                loc.clone(),
                "wall-clock type in a simulation crate",
                "simulated time only: derive timing from Cycles/Nanos; wall \
                 time goes through starnuma_prof::ProfClock (whose internals \
                 are the allow-listed exception)",
            ));
        }
        if !suppressed("SN003") && (code.contains("HashMap") || code.contains("HashSet")) {
            findings.push(Diagnostic::error(
                "SN003",
                loc.clone(),
                "hash collection in library code (iteration order is unstable)",
                "use BTreeMap/BTreeSet (all workspace keys are Ord) or drain \
                 through a sorted Vec",
            ));
        }
        // `println!(` is a suffix of `eprintln!(`, so one match covers both.
        if !suppressed("SN005") && code.contains("println!(") {
            findings.push(Diagnostic::error(
                "SN005",
                loc.clone(),
                "direct stdout/stderr print in library code",
                "emit a structured obs event instead (or mark \
                 `// audit:allow(SN005)` for deliberate operator output)",
            ));
        }

        prev_allows = allows;
    }

    if is_crate_root {
        for attr in ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"] {
            if !source.contains(attr) {
                findings.push(Diagnostic::error(
                    "SN004",
                    format!("{label}:1"),
                    format!("crate root is missing `{attr}`"),
                    "add the attribute below the crate-level doc comment",
                ));
            }
        }
    }

    findings
}

/// Whether `needle` occurs in `haystack` as a standalone identifier —
/// not as a substring of a longer one (`InstantLike`, `MyInstant`).
fn contains_identifier(haystack: &str, needle: &str) -> bool {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before_ok = !haystack[..at].chars().next_back().is_some_and(is_ident);
        let after_ok = !haystack[at + needle.len()..]
            .chars()
            .next()
            .is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Extracts `audit:allow(SNxxx)` rule codes from a line's comment.
fn allow_markers(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(pos) = rest.find("audit:allow(") {
        rest = &rest[pos + "audit:allow(".len()..];
        if let Some(end) = rest.find(')') {
            out.push(rest[..end].trim().to_string());
            rest = &rest[end..];
        } else {
            break;
        }
    }
    out
}

/// Removes `//` line comments and the contents of string/char literals so
/// token matching cannot fire inside text.
fn strip_comments_and_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        if in_char {
            match c {
                '\\' => {
                    chars.next();
                }
                '\'' => in_char = false,
                _ => {}
            }
            continue;
        }
        match c {
            '/' if chars.peek() == Some(&'/') => break,
            '"' => {
                in_str = true;
                out.push('"');
            }
            // A quote is a char literal only when it closes within a couple
            // of characters; otherwise it is a lifetime (`'a`).
            '\'' => {
                let lookahead: String = chars.clone().take(3).collect();
                if lookahead.starts_with('\\') || lookahead.chars().nth(1) == Some('\'') {
                    in_char = true;
                } else {
                    out.push('\'');
                }
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_expect_and_panic() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let y = x.unwrap();\n    let z = x.expect(\"msg\");\n    panic!(\"no\");\n}\n";
        let codes: Vec<_> = lint_source("f.rs", src, false)
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, vec!["SN001", "SN001", "SN001"]);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(lint_source("f.rs", src, false).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        None::<u32>.unwrap();\n        let m = std::collections::HashMap::<u32, u32>::new();\n        let _ = m;\n    }\n}\n";
        assert!(lint_source("f.rs", src, false).is_empty());
    }

    #[test]
    fn code_after_test_module_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n\nfn after(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = lint_source("f.rs", src, false);
        assert_eq!(f.len(), 1);
        assert!(f[0].location.ends_with(":6"));
    }

    #[test]
    fn wallclock_and_hash_collections_flagged() {
        let src = "use std::time::Instant;\nuse std::collections::HashMap;\nfn f() { let _ = Instant::now(); }\n";
        let codes: Vec<_> = lint_source("f.rs", src, false)
            .into_iter()
            .map(|d| d.code)
            .collect();
        // The bare `Instant` import now fires too, not just the `::now()`.
        assert_eq!(codes, vec!["SN002", "SN003", "SN002"]);
    }

    #[test]
    fn bare_wallclock_types_flagged_on_identifier_boundaries() {
        // A stashed Instant or a SystemTime read without `Instant::now()`
        // in sight is still a wall-clock dependency.
        let dirty = "pub struct Timer {\n    started: std::time::Instant,\n}\nfn f() -> u64 {\n    let t = std::time::SystemTime::UNIX_EPOCH;\n    let _ = t;\n    0\n}\n";
        let codes: Vec<_> = lint_source("f.rs", dirty, false)
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, vec!["SN002", "SN002"]);
        // Identifiers that merely *contain* the type names stay clean.
        let clean = "pub struct InstantLike;\npub struct MyInstant;\npub fn instant_of(x: InstantLike) -> InstantLike { x }\ntype SystemTimeout = u64;\n";
        assert!(lint_source("f.rs", clean, false).is_empty());
    }

    #[test]
    fn profclock_style_allow_markers_satisfy_sn002() {
        // The shape `starnuma_prof::clock` uses: each wall-clock-touching
        // line carries its own allow marker.
        let clean = "use std::time::Instant; // audit:allow(SN002)\npub struct ProfClock {\n    at: Instant, // audit:allow(SN002)\n}\nimpl ProfClock {\n    pub fn stamp() -> Self {\n        // audit:allow(SN002)\n        ProfClock { at: Instant::now() }\n    }\n}\n";
        assert!(lint_source("f.rs", clean, false).is_empty());
    }

    /// The in-repo deterministic map (PR 5) must pass SN003 by
    /// construction while std hash collections keep being flagged — the
    /// hot paths are expected to hold `DetMap`s.
    #[test]
    fn detmap_is_accepted_where_hashmap_is_flagged() {
        let clean = "use starnuma_types::DetMap;\nuse starnuma_types::BlockAddr;\npub struct Directory {\n    entries: DetMap<BlockAddr, u32>,\n}\n";
        assert!(lint_source("f.rs", clean, false).is_empty());
        let dirty = "pub struct Directory {\n    entries: std::collections::HashMap<u64, u32>,\n    sharers: std::collections::HashSet<u64>,\n}\n";
        let codes: Vec<_> = lint_source("f.rs", dirty, false)
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, vec!["SN003", "SN003"]);
    }

    #[test]
    fn allow_marker_suppresses_same_and_next_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // audit:allow(SN001)\n    let a = x.unwrap();\n    let b = x.unwrap(); // audit:allow(SN001)\n    a + b\n}\n";
        assert!(lint_source("f.rs", src, false).is_empty());
    }

    #[test]
    fn allow_marker_is_rule_specific() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // audit:allow(SN003)\n";
        assert_eq!(lint_source("f.rs", src, false).len(), 1);
    }

    #[test]
    fn direct_prints_are_flagged() {
        let src = "fn f() {\n    println!(\"hi\");\n    eprintln!(\"also\");\n}\n";
        let codes: Vec<_> = lint_source("f.rs", src, false)
            .into_iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, vec!["SN005", "SN005"]);
        let allowed = "fn f() {\n    eprintln!(\"ok\"); // audit:allow(SN005)\n}\n";
        assert!(lint_source("f.rs", allowed, false).is_empty());
    }

    #[test]
    fn tokens_inside_strings_do_not_fire() {
        let src = "fn f() -> &'static str { \"call .unwrap() or panic!(HashMap)\" }\n";
        assert!(lint_source("f.rs", src, false).is_empty());
    }

    #[test]
    fn tokens_inside_comments_do_not_fire() {
        let src = "fn f() {} // the old code called .unwrap() on a HashMap\n/// docs mention panic!(…) too\nfn g() {}\n";
        assert!(lint_source("f.rs", src, false).is_empty());
    }

    #[test]
    fn crate_root_attributes_required() {
        let f = lint_source("src/lib.rs", "//! docs\npub fn x() {}\n", true);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|d| d.code == "SN004"));
        let ok = "//! docs\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn x() {}\n";
        assert!(lint_source("src/lib.rs", ok, true).is_empty());
    }

    #[test]
    fn lifetimes_do_not_confuse_the_stripper() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\n";
        assert!(lint_source("f.rs", src, false).is_empty());
    }

    #[test]
    fn should_panic_attribute_is_not_a_panic() {
        let src = "#[should_panic(expected = \"boom\")]\nfn not_really_lib() {}\n";
        assert!(lint_source("f.rs", src, false).is_empty());
    }
}
