//! Safe auto-fixes for `starnuma lint --fix`.
//!
//! Only rewrites with a clear semantic story are applied:
//!
//! * **SN003** — `HashMap` → `DetMap` on the finding line, including the
//!   `use std::collections::HashMap` import and qualified
//!   `std::collections::HashMap` paths. (`HashSet` has no drop-in
//!   deterministic twin, so it is left for a human or `--fix-allow`.)
//! * **SN004** — insert the missing crate-root attributes after the
//!   leading `//!` doc block.
//! * **SN011** — `.sort_unstable_by(` → `.sort_by(` and
//!   `.sort_unstable_by_key(` → `.sort_by_key(` (stable sorts accept the
//!   same closures; only the tie behavior changes, toward determinism).
//!
//! With `fix_allow`, every *remaining* finding gets an
//! `// audit:allow(SNxxx)` marker line inserted above it — an explicit,
//! reviewable suppression rather than a silent one.
//!
//! Fixes never touch a path outside the scanned root: locations are
//! workspace-relative by construction and re-anchored under `root`, and
//! anything absolute or containing `..` is rejected.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use starnuma_types::{Diagnostic, StarNumaError};

/// What a fix run changed.
#[derive(Debug, Default)]
pub struct FixReport {
    /// Workspace-relative paths of files rewritten.
    pub files_changed: Vec<String>,
    /// How many safe rewrites were applied.
    pub rewrites: usize,
    /// How many `audit:allow` markers were inserted (`--fix-allow`).
    pub allows_inserted: usize,
}

/// Applies fixes for `findings` to files under `root`. Pass the safe
/// rewrites first; call again with `fix_allow = true` (and the re-linted
/// remaining findings) to insert suppression markers.
///
/// # Errors
///
/// Returns [`StarNumaError::Io`] when a target file cannot be read or
/// written, or when a finding's location would escape `root`.
pub fn apply_fixes(
    root: &Path,
    findings: &[Diagnostic],
    fix_allow: bool,
) -> Result<FixReport, StarNumaError> {
    // Group line findings per file; non-file locations (model validation)
    // have nothing to rewrite.
    let mut per_file: BTreeMap<String, Vec<(usize, &Diagnostic)>> = BTreeMap::new();
    for d in findings {
        let Some((path, line)) = d.location.rsplit_once(':') else {
            continue;
        };
        let Ok(line) = line.parse::<usize>() else {
            continue;
        };
        check_inside_root(path)?;
        per_file
            .entry(path.to_string())
            .or_default()
            .push((line, d));
    }

    let mut report = FixReport::default();
    for (rel, mut sites) in per_file {
        let abs = root.join(&rel);
        let source = fs::read_to_string(&abs)
            .map_err(|e| StarNumaError::Io(format!("{}: {e}", abs.display())))?;
        let had_final_newline = source.ends_with('\n');
        let mut lines: Vec<String> = source.lines().map(str::to_string).collect();
        let mut changed = false;

        // Bottom-up so insertions never shift unprocessed line numbers.
        sites.sort_by_key(|s| std::cmp::Reverse(s.0));
        for (line_no, d) in sites {
            let idx = line_no.saturating_sub(1);
            if idx >= lines.len() {
                continue;
            }
            let applied = match d.code {
                "SN003" => fix_sn003(&mut lines[idx]),
                "SN011" => fix_sn011(&mut lines[idx]),
                "SN004" => {
                    let n = fix_sn004(&mut lines, &d.message);
                    report.rewrites += n;
                    n > 0
                }
                _ => false,
            };
            if applied {
                if d.code != "SN004" {
                    report.rewrites += 1;
                }
                changed = true;
            } else if fix_allow {
                let indent: String = lines[idx]
                    .chars()
                    .take_while(|c| c.is_whitespace())
                    .collect();
                let comment = if rel.ends_with(".toml") { "#" } else { "//" };
                lines.insert(
                    idx,
                    format!(
                        "{indent}{comment} audit:allow({}) accepted by lint --fix-allow",
                        d.code
                    ),
                );
                report.allows_inserted += 1;
                changed = true;
            }
        }

        if changed {
            let mut out = lines.join("\n");
            if had_final_newline {
                out.push('\n');
            }
            fs::write(&abs, out)
                .map_err(|e| StarNumaError::Io(format!("{}: {e}", abs.display())))?;
            report.files_changed.push(rel);
        }
    }
    Ok(report)
}

fn check_inside_root(rel: &str) -> Result<(), StarNumaError> {
    let p = Path::new(rel);
    if p.is_absolute() || rel.split(['/', '\\']).any(|c| c == "..") {
        return Err(StarNumaError::Io(format!(
            "refusing to fix location outside the scanned root: {rel}"
        )));
    }
    Ok(())
}

/// `HashMap` → `DetMap` on one line. Returns whether anything changed.
fn fix_sn003(line: &mut String) -> bool {
    if !line.contains("HashMap") {
        return false; // HashSet-only line: no safe rewrite.
    }
    let mut fixed = line.replace("std::collections::HashMap", "starnuma_types::DetMap");
    fixed = fixed.replace("HashMap", "DetMap");
    let changed = fixed != *line;
    *line = fixed;
    changed
}

/// Keyed unstable sorts → stable sorts on one line.
fn fix_sn011(line: &mut String) -> bool {
    let fixed = line
        .replace(".sort_unstable_by_key(", ".sort_by_key(")
        .replace(".sort_unstable_by(", ".sort_by(");
    let changed = fixed != *line;
    *line = fixed;
    changed
}

/// Inserts the crate-root attribute named in an SN004 message after the
/// leading `//!` doc block. Returns how many lines were inserted.
fn fix_sn004(lines: &mut Vec<String>, message: &str) -> usize {
    let Some(attr) = message.split('`').nth(1).filter(|a| a.starts_with("#![")) else {
        return 0;
    };
    if lines.iter().any(|l| l.contains(attr)) {
        return 0;
    }
    let mut at = 0usize;
    for (i, l) in lines.iter().enumerate() {
        let t = l.trim_start();
        if t.starts_with("//!") || t.is_empty() || t.starts_with("#![") {
            at = i + 1;
        } else {
            break;
        }
    }
    lines.insert(at, attr.to_string());
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashmap_lines_are_rewritten_to_detmap() {
        let mut l = "use std::collections::HashMap;".to_string();
        assert!(fix_sn003(&mut l));
        assert_eq!(l, "use starnuma_types::DetMap;");
        let mut l2 = "    entries: HashMap<u64, u32>,".to_string();
        assert!(fix_sn003(&mut l2));
        assert_eq!(l2, "    entries: DetMap<u64, u32>,");
        let mut l3 = "    sharers: HashSet<u64>,".to_string();
        assert!(!fix_sn003(&mut l3));
    }

    #[test]
    fn keyed_unstable_sorts_become_stable() {
        let mut l = "    v.sort_unstable_by_key(|e| e.0);".to_string();
        assert!(fix_sn011(&mut l));
        assert_eq!(l, "    v.sort_by_key(|e| e.0);");
        let mut l2 = "    v.sort_unstable_by(|a, b| a.cmp(b));".to_string();
        assert!(fix_sn011(&mut l2));
        assert_eq!(l2, "    v.sort_by(|a, b| a.cmp(b));");
    }

    #[test]
    fn sn004_inserts_after_doc_block() {
        let mut lines: Vec<String> = ["//! Crate docs.", "//! More.", "", "pub fn x() {}"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let n = fix_sn004(
            &mut lines,
            "crate root is missing `#![forbid(unsafe_code)]`",
        );
        assert_eq!(n, 1);
        assert_eq!(lines[3], "#![forbid(unsafe_code)]");
    }

    #[test]
    fn locations_outside_root_are_rejected() {
        let d = Diagnostic::error("SN003", "../escape.rs:1", "m", "h");
        let err = apply_fixes(Path::new("/tmp"), &[d], false);
        assert!(err.is_err());
        let d2 = Diagnostic::error("SN003", "/abs/path.rs:1", "m", "h");
        assert!(apply_fixes(Path::new("/tmp"), &[d2], false).is_err());
    }

    #[test]
    fn fix_allow_inserts_marker_with_matching_indent() {
        let dir = std::env::temp_dir().join("starnuma-audit-fix-test");
        let src_dir = dir.join("src");
        std::fs::create_dir_all(&src_dir).unwrap();
        let file = src_dir.join("m.rs");
        std::fs::write(&file, "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n").unwrap();
        let d = Diagnostic::error("SN001", "src/m.rs:2", "`unwrap()` in library code", "h");
        let report = apply_fixes(&dir, &[d], true).unwrap();
        assert_eq!(report.allows_inserted, 1);
        let out = std::fs::read_to_string(&file).unwrap();
        assert!(out.contains("    // audit:allow(SN001)"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
