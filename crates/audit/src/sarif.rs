//! SARIF 2.1.0 emission for CI annotation surfaces.
//!
//! One run, one driver (`starnuma-audit`), one rule per distinct code that
//! fired, one result per finding. Locations split the workspace-relative
//! `path:line` diagnostics back into `artifactLocation` + `region`. The
//! shape follows the SARIF 2.1.0 schema subset that GitHub code scanning
//! consumes.

use starnuma_types::Diagnostic;

use crate::json::{obj, JsonValue};

/// Renders findings as a SARIF 2.1.0 document.
pub fn render_sarif(findings: &[Diagnostic], tool_version: &str) -> String {
    let mut codes: Vec<&str> = findings.iter().map(|d| d.code).collect();
    codes.sort_unstable();
    codes.dedup();
    let rules: Vec<JsonValue> = codes
        .iter()
        .map(|c| {
            obj(vec![
                ("id", JsonValue::Str((*c).to_string())),
                (
                    "shortDescription",
                    obj(vec![("text", JsonValue::Str(rule_summary(c).to_string()))]),
                ),
            ])
        })
        .collect();
    let results: Vec<JsonValue> = findings
        .iter()
        .map(|d| {
            let (path, line) = split_location(&d.location);
            obj(vec![
                ("ruleId", JsonValue::Str(d.code.to_string())),
                (
                    "level",
                    JsonValue::Str(if d.is_error() { "error" } else { "warning" }.to_string()),
                ),
                (
                    "message",
                    obj(vec![(
                        "text",
                        JsonValue::Str(format!("{} — {}", d.message, d.hint)),
                    )]),
                ),
                (
                    "locations",
                    JsonValue::Arr(vec![obj(vec![(
                        "physicalLocation",
                        obj(vec![
                            ("artifactLocation", obj(vec![("uri", JsonValue::Str(path))])),
                            (
                                "region",
                                obj(vec![("startLine", JsonValue::Num(line as f64))]),
                            ),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();
    obj(vec![
        (
            "$schema",
            JsonValue::Str(
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
                    .to_string(),
            ),
        ),
        ("version", JsonValue::Str("2.1.0".to_string())),
        (
            "runs",
            JsonValue::Arr(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", JsonValue::Str("starnuma-audit".to_string())),
                            ("version", JsonValue::Str(tool_version.to_string())),
                            ("rules", JsonValue::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", JsonValue::Arr(results)),
            ])]),
        ),
    ])
    .render()
}

/// Splits a `path:line` location; non-numeric suffixes (model-validation
/// diagnostics like `RunConfig.phases`) keep the whole string as the path
/// with line 1.
fn split_location(loc: &str) -> (String, usize) {
    match loc.rsplit_once(':') {
        Some((path, line)) => match line.parse::<usize>() {
            Ok(n) => (path.to_string(), n.max(1)),
            Err(_) => (loc.to_string(), 1),
        },
        None => (loc.to_string(), 1),
    }
}

fn rule_summary(code: &str) -> &'static str {
    match code {
        "SN001" => "No unwrap()/expect()/panic! in library code",
        "SN002" => "No wall-clock types in simulation crates",
        "SN003" => "No std hash collections (unstable iteration order)",
        "SN004" => "Crate roots carry forbid(unsafe_code) and warn(missing_docs)",
        "SN005" => "No direct println!/eprintln! in library crates",
        "SN006" => "No unordered DetMap iteration at merge/export boundaries",
        "SN007" => "Float reduction loops state a canonical order",
        "SN008" => "No thread-topology reads in simulation crates",
        "SN009" => "No narrowing `as` casts in sim/types crates",
        "SN010" => "Public sim APIs return order-stable Vecs",
        "SN011" => "No keyed sort_unstable (ties reorder freely)",
        "SN012" => "Cargo.toml drift (non-workspace dep, missing forbid)",
        _ => "StarNUMA audit finding",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::error("SN001", "crates/sim/src/x.rs:5", "unwrap", "use Result"),
            Diagnostic::warning("SN105", "RunConfig.phases", "zero phases", "set phases"),
        ]
    }

    #[test]
    fn sarif_shape_matches_2_1_0() {
        let doc = JsonValue::parse(&render_sarif(&sample(), "0.1.0")).expect("valid json");
        assert_eq!(
            doc.get("version").and_then(JsonValue::as_str),
            Some("2.1.0")
        );
        assert!(doc
            .get("$schema")
            .and_then(JsonValue::as_str)
            .is_some_and(|s| s.contains("sarif-schema-2.1.0")));
        let runs = doc.get("runs").and_then(JsonValue::as_arr).expect("runs");
        assert_eq!(runs.len(), 1);
        let driver = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .expect("driver");
        assert_eq!(
            driver.get("name").and_then(JsonValue::as_str),
            Some("starnuma-audit")
        );
        let rules = driver
            .get("rules")
            .and_then(JsonValue::as_arr)
            .expect("rules");
        assert_eq!(rules.len(), 2);
        let results = runs[0]
            .get("results")
            .and_then(JsonValue::as_arr)
            .expect("results");
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").and_then(JsonValue::as_str),
            Some("SN001")
        );
        assert_eq!(
            results[0].get("level").and_then(JsonValue::as_str),
            Some("error")
        );
        let loc = results[0]
            .get("locations")
            .and_then(JsonValue::as_arr)
            .expect("locs")[0]
            .get("physicalLocation")
            .expect("phys");
        assert_eq!(
            loc.get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(JsonValue::as_str),
            Some("crates/sim/src/x.rs")
        );
        assert_eq!(
            loc.get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(JsonValue::as_num),
            Some(5.0)
        );
    }

    #[test]
    fn model_validation_locations_survive() {
        let doc = JsonValue::parse(&render_sarif(&sample(), "0.1.0")).expect("valid json");
        let results = doc.get("runs").and_then(JsonValue::as_arr).expect("runs")[0]
            .get("results")
            .and_then(JsonValue::as_arr)
            .expect("results");
        let loc = results[1]
            .get("locations")
            .and_then(JsonValue::as_arr)
            .expect("locs")[0]
            .get("physicalLocation")
            .expect("phys");
        assert_eq!(
            loc.get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(JsonValue::as_str),
            Some("RunConfig.phases")
        );
        assert_eq!(
            results[1].get("level").and_then(JsonValue::as_str),
            Some("warning")
        );
    }
}
