//! Incremental lint cache keyed by file digest.
//!
//! Stored at `<root>/target/audit-cache.json` by default. Each entry holds
//! a file's FNV-1a 64 content digest, its (already crate-scoped)
//! source-pass findings, and its extracted [`FileFacts`]. A warm lint
//! re-lexes nothing that has not changed: cached facts feed the dataflow
//! passes, cached findings stand in for the source pass. Dataflow and
//! manifest passes always re-run — they are whole-workspace and cheap.
//!
//! Any corruption (bad JSON, wrong schema version, shape drift) reads as
//! an empty cache: correctness never depends on the cache being present.

use std::fs;
use std::path::Path;

use starnuma_types::Diagnostic;

use crate::items::FileFacts;
use crate::json::{obj, JsonValue};

/// Cache schema version; bump on any layout or lint-semantics change so
/// stale caches self-invalidate.
pub const CACHE_SCHEMA_VERSION: f64 = 1.0;

/// FNV-1a 64 digest of a text, rendered as 16 hex digits.
pub fn digest64(text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// One cached file: digest, scoped source-pass findings, extracted facts.
pub struct CacheEntry {
    /// FNV-1a 64 digest of the file's text.
    pub digest: String,
    /// The file's source-pass findings (post crate-scoping).
    pub findings: Vec<Diagnostic>,
    /// The file's extracted facts, for the dataflow passes.
    pub facts: FileFacts,
}

/// The whole cache: path-keyed entries, kept sorted for a deterministic
/// on-disk rendering.
#[derive(Default)]
pub struct Cache {
    entries: Vec<(String, CacheEntry)>,
}

impl Cache {
    /// Loads a cache file; any problem (missing, unreadable, corrupt,
    /// version mismatch) yields an empty cache.
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = fs::read_to_string(path) else {
            return Cache::default();
        };
        let Some(doc) = JsonValue::parse(&text) else {
            return Cache::default();
        };
        if doc.get("schema_version").and_then(JsonValue::as_num) != Some(CACHE_SCHEMA_VERSION) {
            return Cache::default();
        }
        let Some(JsonValue::Obj(files)) = doc.get("files") else {
            return Cache::default();
        };
        let mut cache = Cache::default();
        for (file, entry) in files {
            let Some(digest) = entry.get("digest").and_then(JsonValue::as_str) else {
                continue;
            };
            let Some(facts) = entry.get("facts").and_then(FileFacts::from_json) else {
                continue;
            };
            let findings = entry
                .get("findings")
                .and_then(JsonValue::as_arr)
                .map(|a| a.iter().filter_map(diag_from_json).collect())
                .unwrap_or_default();
            cache.entries.push((
                file.clone(),
                CacheEntry {
                    digest: digest.to_string(),
                    findings,
                    facts,
                },
            ));
        }
        cache
    }

    /// The entry for `file` when its digest still matches.
    pub fn get(&self, file: &str, digest: &str) -> Option<&CacheEntry> {
        self.entries
            .iter()
            .find(|(f, e)| f == file && e.digest == digest)
            .map(|(_, e)| e)
    }

    /// Inserts or replaces the entry for `file`.
    pub fn insert(&mut self, file: String, entry: CacheEntry) {
        self.entries.retain(|(f, _)| *f != file);
        self.entries.push((file, entry));
    }

    /// Renders the cache as its on-disk JSON (entries sorted by path).
    pub fn render(&mut self) -> String {
        self.entries.sort_by(|a, b| a.0.cmp(&b.0));
        let files: Vec<(String, JsonValue)> = self
            .entries
            .iter()
            .map(|(f, e)| {
                (
                    f.clone(),
                    obj(vec![
                        ("digest", JsonValue::Str(e.digest.clone())),
                        (
                            "findings",
                            JsonValue::Arr(e.findings.iter().map(diag_to_json).collect()),
                        ),
                        ("facts", e.facts.to_json()),
                    ]),
                )
            })
            .collect();
        obj(vec![
            ("schema_version", JsonValue::Num(CACHE_SCHEMA_VERSION)),
            ("files", JsonValue::Obj(files)),
        ])
        .render()
    }

    /// Writes the cache to `path`, creating parent directories. Failures
    /// are returned but callers may ignore them — a read-only target tree
    /// must not fail the lint.
    pub fn save(&mut self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.render())
    }
}

/// Maps a cached code string back to the `'static` table the
/// [`Diagnostic`] type requires. Unknown codes read as absent.
pub fn static_code(code: &str) -> Option<&'static str> {
    const CODES: &[&str] = &[
        "SN001", "SN002", "SN003", "SN004", "SN005", "SN006", "SN007", "SN008", "SN009", "SN010",
        "SN011", "SN012",
    ];
    CODES.iter().find(|c| **c == code).copied()
}

fn diag_to_json(d: &Diagnostic) -> JsonValue {
    // Diagnostic::to_json is already the canonical rendering; reparse it
    // rather than duplicating the field layout here.
    JsonValue::parse(&d.to_json()).unwrap_or(JsonValue::Null)
}

fn diag_from_json(v: &JsonValue) -> Option<Diagnostic> {
    let code = static_code(v.get("code")?.as_str()?)?;
    let location = v.get("location")?.as_str()?.to_string();
    let message = v.get("message")?.as_str()?.to_string();
    let hint = v.get("hint")?.as_str()?.to_string();
    let severity = v.get("severity")?.as_str()?;
    Some(match severity {
        "warning" => Diagnostic::warning(code, location, message, hint),
        _ => Diagnostic::error(code, location, message, hint),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::lexer::lex;

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        assert_eq!(digest64("abc"), digest64("abc"));
        assert_ne!(digest64("abc"), digest64("abd"));
        assert_eq!(digest64("").len(), 16);
    }

    #[test]
    fn cache_round_trips_through_render_and_load() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let facts = extract("a.rs", "sim", false, &lex(src));
        let findings = crate::lints::source::lint_source("a.rs", src, false);
        let mut cache = Cache::default();
        cache.insert(
            "a.rs".to_string(),
            CacheEntry {
                digest: digest64(src),
                findings: findings.clone(),
                facts: facts.clone(),
            },
        );
        let rendered = cache.render();
        let dir = std::env::temp_dir().join("starnuma-audit-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        std::fs::write(&path, &rendered).unwrap();
        let loaded = Cache::load(&path);
        let entry = loaded.get("a.rs", &digest64(src)).expect("hit");
        assert_eq!(entry.facts, facts);
        assert_eq!(entry.findings.len(), findings.len());
        assert_eq!(entry.findings[0].code, "SN001");
        assert!(loaded.get("a.rs", "0000000000000000").is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_or_versionless_cache_reads_as_empty() {
        let dir = std::env::temp_dir().join("starnuma-audit-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(Cache::load(&path).get("x", "y").is_none());
        std::fs::write(&path, "{\"schema_version\":99,\"files\":{}}").unwrap();
        assert!(Cache::load(&path).get("x", "y").is_none());
        assert!(Cache::load(Path::new("/nonexistent/cache.json"))
            .get("x", "y")
            .is_none());
        std::fs::remove_file(&path).ok();
    }
}
