//! Rendering findings for humans and machines.

use starnuma_types::Diagnostic;

/// Renders findings as compiler-style text, one block per finding, plus a
/// one-line summary. Empty input renders a clean bill of health.
pub fn render_human(findings: &[Diagnostic]) -> String {
    if findings.is_empty() {
        return "audit: no findings".to_string();
    }
    let mut out = String::new();
    for d in findings {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = findings.iter().filter(|d| d.is_error()).count();
    let warnings = findings.len() - errors;
    out.push_str(&format!(
        "audit: {} finding(s) ({errors} error(s), {warnings} warning(s))",
        findings.len()
    ));
    out
}

/// Renders findings as a JSON array (stable field order, no dependencies).
pub fn render_json(findings: &[Diagnostic]) -> String {
    let items: Vec<String> = findings.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

/// Schema version of the `lint --json` report object.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// Renders the versioned `lint --json` report object: the findings array
/// plus counts the caller supplies (suppressed-by-baseline, files
/// scanned). Callers pass findings already in stable (path, line, code)
/// order and deduplicated.
pub fn render_json_report(
    findings: &[Diagnostic],
    suppressed: usize,
    files_scanned: usize,
) -> String {
    format!(
        "{{\"schema_version\":{REPORT_SCHEMA_VERSION},\"files_scanned\":{files_scanned},\"suppressed\":{suppressed},\"findings\":{}}}",
        render_json(findings)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use starnuma_types::Severity;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::error("SN001", "a.rs:3", "unwrap", "use Result"),
            Diagnostic::warning(
                "SN105",
                "RunConfig.phases",
                "zero phases",
                "set phases >= 1",
            ),
        ]
    }

    #[test]
    fn human_output_summarizes() {
        let s = render_human(&sample());
        assert!(s.contains("error[SN001]"));
        assert!(s.contains("warning[SN105]"));
        assert!(s.contains("2 finding(s) (1 error(s), 1 warning(s))"));
        assert_eq!(render_human(&[]), "audit: no findings");
    }

    #[test]
    fn json_report_is_versioned() {
        let s = render_json_report(&sample(), 3, 42);
        assert!(s.starts_with("{\"schema_version\":1,"));
        assert!(s.contains("\"files_scanned\":42"));
        assert!(s.contains("\"suppressed\":3"));
        assert!(s.contains("\"findings\":[{"));
        assert_eq!(
            render_json_report(&[], 0, 1),
            "{\"schema_version\":1,\"files_scanned\":1,\"suppressed\":0,\"findings\":[]}"
        );
    }

    #[test]
    fn json_output_is_an_array() {
        let s = render_json(&sample());
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("\"code\":\"SN001\""));
        assert!(s.contains("\"severity\":\"warning\""));
        assert_eq!(render_json(&[]), "[]");
        assert_eq!(sample()[1].severity, Severity::Warning);
    }
}
