//! Rendering findings for humans and machines.

use starnuma_types::Diagnostic;

/// Renders findings as compiler-style text, one block per finding, plus a
/// one-line summary. Empty input renders a clean bill of health.
pub fn render_human(findings: &[Diagnostic]) -> String {
    if findings.is_empty() {
        return "audit: no findings".to_string();
    }
    let mut out = String::new();
    for d in findings {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = findings.iter().filter(|d| d.is_error()).count();
    let warnings = findings.len() - errors;
    out.push_str(&format!(
        "audit: {} finding(s) ({errors} error(s), {warnings} warning(s))",
        findings.len()
    ));
    out
}

/// Renders findings as a JSON array (stable field order, no dependencies).
pub fn render_json(findings: &[Diagnostic]) -> String {
    let items: Vec<String> = findings.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use starnuma_types::Severity;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::error("SN001", "a.rs:3", "unwrap", "use Result"),
            Diagnostic::warning(
                "SN105",
                "RunConfig.phases",
                "zero phases",
                "set phases >= 1",
            ),
        ]
    }

    #[test]
    fn human_output_summarizes() {
        let s = render_human(&sample());
        assert!(s.contains("error[SN001]"));
        assert!(s.contains("warning[SN105]"));
        assert!(s.contains("2 finding(s) (1 error(s), 1 warning(s))"));
        assert_eq!(render_human(&[]), "audit: no findings");
    }

    #[test]
    fn json_output_is_an_array() {
        let s = render_json(&sample());
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("\"code\":\"SN001\""));
        assert!(s.contains("\"severity\":\"warning\""));
        assert_eq!(render_json(&[]), "[]");
        assert_eq!(sample()[1].severity, Severity::Warning);
    }
}
