//! A minimal JSON value: parse and render, no dependencies.
//!
//! The audit layer reads and writes several JSON artifacts — the
//! incremental cache (`target/audit-cache.json`), the suppression baseline
//! (`ci/lint_baseline.json`), and the SARIF report — and the obs crate's
//! flat-object parser cannot represent them (they nest). This module is a
//! small recursive-descent parser plus a deterministic renderer: objects
//! keep insertion order, numbers render like Rust's `{}` for `f64`, and
//! strings escape exactly like [`starnuma_types::json_escape`].

use starnuma_types::json_escape;

/// A parsed JSON value. Objects preserve insertion order so a
/// parse→render round trip is stable.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string (unescaped content).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value under `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document. Returns `None` on any syntax error
    /// or trailing garbage — a corrupt cache or baseline must read as
    /// "absent", never as a partial document.
    pub fn parse(text: &str) -> Option<JsonValue> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(value)
        } else {
            None
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => parse_obj(bytes, pos),
        b'[' => parse_arr(bytes, pos),
        b'"' => parse_str(bytes, pos).map(JsonValue::Str),
        b't' => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        b'n' => parse_lit(bytes, pos, "null", JsonValue::Null),
        _ => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: JsonValue) -> Option<JsonValue> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(value)
    } else {
        None
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(JsonValue::Num)
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).ok();
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        let c = char::from_u32(code)?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            &b => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(JsonValue::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return None;
        }
        *pos += 1;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(JsonValue::Obj(fields));
            }
            _ => return None,
        }
    }
}

/// Convenience constructor for an object field list.
pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let src = r#"{"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":"q\"uote"}"#;
        let v = JsonValue::parse(src).expect("parses");
        assert_eq!(JsonValue::parse(&v.render()), Some(v.clone()));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")),
            Some(&JsonValue::Bool(true))
        );
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(<[_]>::len), Some(3));
        assert_eq!(v.get("e").and_then(JsonValue::as_str), Some("q\"uote"));
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert_eq!(JsonValue::parse("{\"a\": }"), None);
        assert_eq!(JsonValue::parse("[1, 2"), None);
        assert_eq!(JsonValue::parse("{} trailing"), None);
        assert_eq!(JsonValue::parse(""), None);
        assert_eq!(JsonValue::parse("{\"a\"}"), None);
    }

    #[test]
    fn numbers_render_integers_without_decimal_point() {
        assert_eq!(JsonValue::Num(3.0).render(), "3");
        assert_eq!(JsonValue::Num(3.5).render(), "3.5");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        let v = JsonValue::parse("[-1.5e3, 17]").expect("parses");
        assert_eq!(v.as_arr().map(|a| a[0].as_num()), Some(Some(-1500.0)));
    }

    #[test]
    fn escapes_survive_round_trip() {
        let v = JsonValue::Str("line\nbreak\ttab \"quote\" back\\slash".into());
        assert_eq!(JsonValue::parse(&v.render()), Some(v));
        assert_eq!(
            JsonValue::parse(r#""Aé""#),
            Some(JsonValue::Str("Aé".into()))
        );
    }

    #[test]
    fn unicode_escape_rejects_bad_hex() {
        assert_eq!(JsonValue::parse(r#""\uzzzz""#), None);
    }
}
