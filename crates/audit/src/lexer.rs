//! A real Rust token lexer for the audit passes.
//!
//! The PR-1 scanner stripped comments and strings line by line, which left
//! it blind to anything that spans lines: a `/* … */` block comment hiding
//! a forbidden token, a raw string `r#"HashMap"#` leaking one, a multi-line
//! string literal containing `println!(`. This lexer tokenizes whole files
//! instead: nested block comments, raw strings with any `#` arity, byte
//! and char literals, lifetimes, raw identifiers, and a small set of
//! compound operators the item parser cares about (`::`, `->`, `+=`, …).
//!
//! Two properties are load-bearing and tested:
//!
//! * **Round trip** — the concatenation of every token's text is exactly
//!   the input. Nothing is dropped or normalized, so the lint layer can
//!   reconstruct per-line *code* text (comments removed, string contents
//!   blanked) without ever disagreeing with the file on line numbers.
//! * **No panics** — malformed input (unterminated strings or comments)
//!   lexes to a trailing token rather than an error; the audit must never
//!   crash on a file it merely scans.

/// What kind of source text a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` to end of line (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */`, nesting tracked, may span lines.
    BlockComment,
    /// `"…"` or `b"…"` with escapes, may span lines.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##` — any `#` arity.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `'a` in `fn f<'a>(…)`.
    Lifetime,
    /// An identifier or keyword (including raw identifiers `r#type`).
    Ident,
    /// A numeric literal (integers, floats, suffixed forms).
    Number,
    /// Everything else: one operator or delimiter, with `::`, `->`, `=>`,
    /// `..`, `+=`, `-=`, `*=`, `/=` lexed as single tokens.
    Punct,
}

/// One lexed token: kind, exact source text, and the 1-based line its
/// first character sits on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token's classification.
    pub kind: TokenKind,
    /// The exact source text (round-trips by concatenation).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// How many newlines the token spans (0 for single-line tokens).
    pub fn newlines(&self) -> usize {
        self.text.bytes().filter(|&b| b == b'\n').count()
    }
}

/// Tokenizes `source` completely. Infallible: malformed trailing
/// constructs become a final token of the kind that opened them.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        src: source,
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            let text = self.src[start..self.pos].to_string();
            self.line += text.bytes().filter(|&b| b == b'\n').count();
            self.out.push(Token { kind, text, line });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Consumes one token's worth of bytes and returns its kind.
    fn next_kind(&mut self) -> TokenKind {
        let b = self.bytes[self.pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                while matches!(self.peek(0), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                    self.pos += 1;
                }
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while self.peek(0).is_some_and(|c| c != b'\n') {
                    self.pos += 1;
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.pos += 2;
                let mut depth = 1usize;
                while depth > 0 {
                    match (self.peek(0), self.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            self.pos += 2;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            self.pos += 2;
                        }
                        (Some(_), _) => self.pos += 1,
                        (None, _) => break, // unterminated: swallow to EOF
                    }
                }
                TokenKind::BlockComment
            }
            b'r' | b'b' if self.at_raw_string() => self.lex_raw_string(),
            b'b' if self.peek(1) == Some(b'"') => {
                self.pos += 1;
                self.lex_string()
            }
            b'b' if self.peek(1) == Some(b'\'') => {
                self.pos += 1;
                self.lex_char()
            }
            b'"' => self.lex_string(),
            b'\'' => self.lex_quote(),
            b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                // Raw identifiers (`r#type`) reach here only when
                // `at_raw_string` said no; consume the `r#` prefix.
                if b == b'r'
                    && self.peek(1) == Some(b'#')
                    && self.peek(2).is_some_and(is_ident_byte)
                {
                    self.pos += 2;
                }
                while self.peek(0).is_some_and(is_ident_byte) {
                    self.pos += 1;
                }
                TokenKind::Ident
            }
            b'0'..=b'9' => {
                self.pos += 1;
                loop {
                    match self.peek(0) {
                        Some(c) if is_ident_byte(c) => self.pos += 1,
                        // A decimal point belongs to the number only when a
                        // digit follows — `1..10` keeps its range operator.
                        Some(b'.') if self.peek(1).is_some_and(|c| c.is_ascii_digit()) => {
                            self.pos += 1
                        }
                        // Exponent sign: `1e-9`.
                        Some(b'+' | b'-')
                            if matches!(self.bytes.get(self.pos - 1), Some(b'e' | b'E'))
                                && self.peek(1).is_some_and(|c| c.is_ascii_digit()) =>
                        {
                            self.pos += 1
                        }
                        _ => break,
                    }
                }
                TokenKind::Number
            }
            _ => {
                // Compound operators the item parser treats atomically.
                const COMPOUND: &[&[u8]] = &[
                    b"::", b"->", b"=>", b"..", b"+=", b"-=", b"*=", b"/=", b"|=", b"&=",
                ];
                for op in COMPOUND {
                    if self.bytes[self.pos..].starts_with(op) {
                        self.pos += op.len();
                        return TokenKind::Punct;
                    }
                }
                // One UTF-8 scalar, not one byte: keep multibyte chars whole.
                let c_len = self.src[self.pos..]
                    .chars()
                    .next()
                    .map_or(1, char::len_utf8);
                self.pos += c_len;
                TokenKind::Punct
            }
        }
    }

    /// Whether the cursor sits on `r"`, `r#…#"`, `br"`, or `br#…#"`.
    fn at_raw_string(&self) -> bool {
        let mut i = self.pos;
        if self.bytes.get(i) == Some(&b'b') {
            i += 1;
        }
        if self.bytes.get(i) != Some(&b'r') {
            return false;
        }
        i += 1;
        while self.bytes.get(i) == Some(&b'#') {
            i += 1;
        }
        self.bytes.get(i) == Some(&b'"')
    }

    fn lex_raw_string(&mut self) -> TokenKind {
        if self.peek(0) == Some(b'b') {
            self.pos += 1;
        }
        self.pos += 1; // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening '"'
        loop {
            match self.peek(0) {
                None => break, // unterminated: swallow to EOF
                Some(b'"') => {
                    self.pos += 1;
                    let mut close = 0usize;
                    while close < hashes && self.peek(0) == Some(b'#') {
                        close += 1;
                        self.pos += 1;
                    }
                    if close == hashes {
                        break;
                    }
                }
                Some(_) => self.pos += 1,
            }
        }
        TokenKind::RawStr
    }

    fn lex_string(&mut self) -> TokenKind {
        self.pos += 1; // opening '"'
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\\') => self.pos += 2.min(self.bytes.len() - self.pos),
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => self.pos += 1,
            }
        }
        TokenKind::Str
    }

    /// After a `'`: a char literal or a lifetime. `'a'` is a char, `'a` a
    /// lifetime; `'\n'` always a char.
    fn lex_quote(&mut self) -> TokenKind {
        if self.peek(1).is_some_and(is_ident_byte) && self.peek(1) != Some(b'\\') {
            // Identifier-ish after the quote: lifetime unless a closing
            // quote follows exactly one scalar later.
            let c_len = self.src[self.pos + 1..]
                .chars()
                .next()
                .map_or(1, char::len_utf8);
            if self.bytes.get(self.pos + 1 + c_len) == Some(&b'\'') {
                self.pos += 2 + c_len;
                return TokenKind::Char;
            }
            self.pos += 1;
            while self.peek(0).is_some_and(is_ident_byte) {
                self.pos += 1;
            }
            return TokenKind::Lifetime;
        }
        self.lex_char()
    }

    fn lex_char(&mut self) -> TokenKind {
        self.pos += 1; // opening '\''
        match self.peek(0) {
            Some(b'\\') => {
                self.pos += 2.min(self.bytes.len() - self.pos);
                // `\u{…}` payloads run to their brace.
                while self.peek(0).is_some_and(|c| c != b'\'') {
                    self.pos += 1;
                }
            }
            Some(_) => {
                let c_len = self.src[self.pos..]
                    .chars()
                    .next()
                    .map_or(1, char::len_utf8);
                self.pos += c_len;
            }
            None => return TokenKind::Char,
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
        TokenKind::Char
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Reconstructs per-line **code** text from a token stream: comments are
/// removed, string/char contents collapse to empty literals (`""` / `''`)
/// on their start line, everything else keeps its exact text and spacing.
/// Token matching over these lines can therefore never fire inside a
/// comment or a literal — including multi-line and raw forms the old
/// per-line stripper could not see.
pub fn code_lines(source: &str, tokens: &[Token]) -> Vec<String> {
    let nlines = source.lines().count().max(1);
    let mut lines = vec![String::new(); nlines];
    let mut line = 0usize; // 0-based cursor
    for t in tokens {
        match t.kind {
            TokenKind::Whitespace => {
                // Distribute intra-line spacing; newlines advance the cursor.
                for (i, seg) in t.text.split('\n').enumerate() {
                    if i > 0 {
                        line += 1;
                    }
                    if let Some(l) = lines.get_mut(line) {
                        l.push_str(seg.trim_end_matches('\r'));
                    }
                }
                continue;
            }
            TokenKind::LineComment | TokenKind::BlockComment => {}
            TokenKind::Str | TokenKind::RawStr => {
                if let Some(l) = lines.get_mut(line) {
                    l.push_str("\"\"");
                }
            }
            TokenKind::Char => {
                if let Some(l) = lines.get_mut(line) {
                    l.push_str("''");
                }
            }
            _ => {
                if let Some(l) = lines.get_mut(line) {
                    l.push_str(&t.text);
                }
            }
        }
        line += t.newlines();
    }
    lines
}

/// Extracts `audit:allow(SNxxx)` markers from comment tokens, keyed by the
/// 1-based line the comment starts on. Block comments contribute to their
/// start line only — a marker suppresses the same line and the next, like
/// the line-comment form always has.
pub fn allow_lines(tokens: &[Token]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let mut rest = t.text.as_str();
        while let Some(pos) = rest.find("audit:allow(") {
            rest = &rest[pos + "audit:allow(".len()..];
            if let Some(end) = rest.find(')') {
                out.push((t.line, rest[..end].trim().to_string()));
                rest = &rest[end..];
            } else {
                break;
            }
        }
    }
    out
}

/// The 1-based lines whose comments contain `needle` (case-insensitive).
/// Used by SN007's canonical-order-comment escape.
pub fn comment_lines_containing(tokens: &[Token], needle: &str) -> Vec<usize> {
    let needle = needle.to_ascii_lowercase();
    tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .filter(|t| t.text.to_ascii_lowercase().contains(&needle))
        .map(|t| t.line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concat(tokens: &[Token]) -> String {
        tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn round_trips_representative_source() {
        let src = "//! doc\nfn f<'a>(x: &'a str) -> u32 {\n    /* multi\n       line */\n    let s = r#\"raw \"quoted\" text\"#;\n    let c = 'x'; let nl = '\\n';\n    let b = b\"bytes\"; let bc = b'q';\n    x.len() as u32 + 0.5_f64 as u32\n}\n";
        let tokens = lex(src);
        assert_eq!(concat(&tokens), src);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "a /* outer /* inner */ still comment */ b";
        let tokens = lex(src);
        assert_eq!(concat(&tokens), src);
        let idents: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["a", "b"]);
    }

    #[test]
    fn raw_strings_with_hash_arity() {
        for src in [
            "let x = r\"plain\";",
            "let x = r#\"one \" inside\"#;",
            "let x = r##\"two \"# inside\"##;",
            "let x = br#\"bytes\"#;",
        ] {
            let tokens = lex(src);
            assert_eq!(concat(&tokens), src, "round trip for {src}");
            assert_eq!(
                tokens
                    .iter()
                    .filter(|t| t.kind == TokenKind::RawStr)
                    .count(),
                1,
                "one raw string in {src}"
            );
        }
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let src = "let r#type = 3; let r = r#type;";
        let tokens = lex(src);
        assert_eq!(concat(&tokens), src);
        assert!(tokens.iter().all(|t| t.kind != TokenKind::RawStr));
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "r#type"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a u8) { let c = 'a'; let d = '\\''; }";
        let tokens = lex(src);
        assert_eq!(concat(&tokens), src);
        assert_eq!(
            tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            tokens.iter().filter(|t| t.kind == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "fn a() {}\n/* two\nline */\nfn b() {}\n";
        let tokens = lex(src);
        let b_line = tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident && t.text == "b")
            .map(|t| t.line);
        assert_eq!(b_line, Some(4));
    }

    #[test]
    fn numbers_do_not_eat_range_operators() {
        let src = "for i in 0..10 { let f = 1.5e-3; let h = 0xff_u32; }";
        let tokens = lex(src);
        assert_eq!(concat(&tokens), src);
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Punct && t.text == ".."));
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Number && t.text == "1.5e-3"));
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Number && t.text == "0xff_u32"));
    }

    #[test]
    fn unterminated_constructs_swallow_to_eof_without_panicking() {
        for src in ["/* never closed", "let x = \"open", "let y = r#\"open", "'"] {
            let tokens = lex(src);
            assert_eq!(concat(&tokens), src, "round trip for {src}");
        }
    }

    #[test]
    fn code_lines_blank_comments_and_string_contents() {
        let src = "let a = \"has .unwrap() inside\"; // and HashMap here\n/* Instant */ let b = r#\"HashMap\"#;\nlet c = 1;\n";
        let tokens = lex(src);
        let lines = code_lines(src, &tokens);
        assert_eq!(lines.len(), 3);
        assert!(!lines[0].contains("unwrap"));
        assert!(!lines[0].contains("HashMap"));
        assert!(lines[0].contains("let a = \"\";"));
        assert!(!lines[1].contains("Instant"));
        assert!(!lines[1].contains("HashMap"));
        assert!(lines[1].contains("let b = \"\";"));
        assert_eq!(lines[2], "let c = 1;");
    }

    #[test]
    fn code_lines_handle_multiline_strings_and_comments() {
        let src =
            "let s = \"first\nsecond panic!( line\";\nok();\n/* a\nb HashMap\nc */\ndone();\n";
        let tokens = lex(src);
        let lines = code_lines(src, &tokens);
        assert!(lines[0].contains("let s = \"\""));
        assert!(!lines.iter().any(|l| l.contains("panic")));
        assert!(!lines.iter().any(|l| l.contains("HashMap")));
        assert_eq!(lines[2], "ok();");
        assert_eq!(lines[6], "done();");
    }

    #[test]
    fn allow_markers_found_in_line_and_block_comments() {
        let src = "x(); // audit:allow(SN001)\n/* audit:allow(SN003) audit:allow(SN009) */\ny();\n";
        let allows = allow_lines(&lex(src));
        assert_eq!(
            allows,
            vec![
                (1, "SN001".to_string()),
                (2, "SN003".to_string()),
                (2, "SN009".to_string())
            ]
        );
    }

    #[test]
    fn comment_needle_search_is_case_insensitive() {
        let src = "// Canonical order: socket ids ascending\nlet x = 1;\n";
        assert_eq!(comment_lines_containing(&lex(src), "canonical"), vec![1]);
        assert!(comment_lines_containing(&lex(src), "zebra").is_empty());
    }
}
