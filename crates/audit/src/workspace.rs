//! The workspace lint driver.
//!
//! Discovers every `.rs` file (root `src/` plus `crates/*/src/`), runs the
//! source pass per file (through the incremental cache when enabled),
//! feeds the extracted facts to the dataflow pass, runs the manifest pass,
//! and returns one deduplicated finding list in stable
//! (path, line, code, message) order.

use std::fs;
use std::path::{Path, PathBuf};

use starnuma_types::{Diagnostic, StarNumaError};

use crate::cache::{digest64, Cache, CacheEntry};
use crate::items::{extract, FileFacts};
use crate::lints::source::lint_source;
use crate::lints::{dataflow::lint_dataflow, manifest::lint_manifests, scope_findings};

/// Options for a workspace lint run.
#[derive(Clone, Debug, Default)]
pub struct LintOptions {
    /// Cache file to read/write; `None` disables the cache entirely.
    pub cache_path: Option<PathBuf>,
}

impl LintOptions {
    /// The default cache location under a workspace root.
    pub fn default_cache_path(root: &Path) -> PathBuf {
        root.join("target").join("audit-cache.json")
    }
}

/// What a workspace lint run produced.
pub struct LintOutcome {
    /// All findings, deduplicated and in stable (path, line, code) order.
    pub findings: Vec<Diagnostic>,
    /// How many source files were scanned.
    pub files_scanned: usize,
    /// How many files were served from the cache.
    pub cache_hits: usize,
}

/// Scans a workspace rooted at `root` with default options (no cache).
///
/// Returns all findings in stable order. See [`lint_workspace_with`].
///
/// # Errors
///
/// Returns [`StarNumaError::Io`] when a source tree cannot be read, or
/// when `root` contains no Rust sources at all — a mistyped path must not
/// read as a clean scan.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, StarNumaError> {
    lint_workspace_with(root, &LintOptions::default()).map(|o| o.findings)
}

/// Scans a workspace with explicit [`LintOptions`]: runs SN001–SN011 over
/// sources and SN012 over manifests, dedupes, and sorts.
///
/// # Errors
///
/// Returns [`StarNumaError::Io`] under the same conditions as
/// [`lint_workspace`]. Cache write failures are swallowed: a read-only
/// `target/` must not fail a lint.
pub fn lint_workspace_with(root: &Path, opts: &LintOptions) -> Result<LintOutcome, StarNumaError> {
    let mut cache = opts
        .cache_path
        .as_deref()
        .map(Cache::load)
        .unwrap_or_default();
    let mut findings: Vec<Diagnostic> = Vec::new();
    let mut all_facts: Vec<FileFacts> = Vec::new();
    let mut files_scanned = 0usize;
    let mut cache_hits = 0usize;

    for (src, crate_name) in source_dirs(root)? {
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            files_scanned += 1;
            let source = fs::read_to_string(&file)
                .map_err(|e| StarNumaError::Io(format!("{}: {e}", file.display())))?;
            let label = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .into_owned();
            let digest = digest64(&source);
            if let Some(entry) = cache.get(&label, &digest) {
                cache_hits += 1;
                findings.extend(entry.findings.clone());
                all_facts.push(entry.facts.clone());
                continue;
            }
            let is_crate_root = file.file_name().is_some_and(|n| n == "lib.rs")
                && file.parent().is_some_and(|p| p.ends_with("src"));
            let mut f = lint_source(&label, &source, is_crate_root);
            scope_findings(&mut f, &crate_name);
            let facts = extract(
                &label,
                &crate_name,
                is_crate_root,
                &crate::lexer::lex(&source),
            );
            if opts.cache_path.is_some() {
                cache.insert(
                    label.clone(),
                    CacheEntry {
                        digest,
                        findings: f.clone(),
                        facts: facts.clone(),
                    },
                );
            }
            findings.extend(f);
            all_facts.push(facts);
        }
    }
    if files_scanned == 0 {
        return Err(StarNumaError::Io(format!(
            "{}: no Rust sources found (expected src/ or crates/*/src/)",
            root.display()
        )));
    }

    findings.extend(lint_dataflow(&all_facts));
    findings.extend(lint_manifests(root));
    sort_and_dedup(&mut findings);

    if let Some(path) = opts.cache_path.as_deref() {
        // Best effort: a read-only target tree must not fail the lint.
        let _ = cache.save(path);
    }

    Ok(LintOutcome {
        findings,
        files_scanned,
        cache_hits,
    })
}

/// The source directories to scan: root `src/` plus every sorted
/// `crates/*/src/`, paired with the owning crate's directory name.
fn source_dirs(root: &Path) -> Result<Vec<(PathBuf, String)>, StarNumaError> {
    let mut src_dirs: Vec<(PathBuf, String)> = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        src_dirs.push((root_src, String::new()));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)
            .map_err(|e| StarNumaError::Io(format!("{}: {e}", crates_dir.display())))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.join("src").is_dir())
            .collect();
        entries.sort();
        for c in entries {
            let name = c
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            src_dirs.push((c.join("src"), name));
        }
    }
    Ok(src_dirs)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), StarNumaError> {
    for entry in
        fs::read_dir(dir).map_err(|e| StarNumaError::Io(format!("{}: {e}", dir.display())))?
    {
        let entry = entry.map_err(|e| StarNumaError::Io(e.to_string()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Sorts findings by (path, numeric line, code, message) and removes exact
/// duplicates across passes.
pub fn sort_and_dedup(findings: &mut Vec<Diagnostic>) {
    fn split_loc(loc: &str) -> (String, usize) {
        match loc.rsplit_once(':') {
            Some((path, line)) => match line.parse::<usize>() {
                Ok(n) => (path.to_string(), n),
                Err(_) => (loc.to_string(), 0),
            },
            None => (loc.to_string(), 0),
        }
    }
    findings.sort_by(|a, b| {
        let (ap, al) = split_loc(&a.location);
        let (bp, bl) = split_loc(&b.location);
        (ap, al, a.code, &a.message).cmp(&(bp, bl, b.code, &b.message))
    });
    findings
        .dedup_by(|a, b| a.code == b.code && a.location == b.location && a.message == b.message);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_orders_by_path_then_numeric_line_then_code() {
        let mut f = vec![
            Diagnostic::error("SN003", "b.rs:2", "x", "h"),
            Diagnostic::error("SN001", "a.rs:10", "x", "h"),
            Diagnostic::error("SN001", "a.rs:2", "x", "h"),
            Diagnostic::error("SN002", "a.rs:2", "x", "h"),
        ];
        sort_and_dedup(&mut f);
        let keys: Vec<_> = f.iter().map(|d| (d.location.as_str(), d.code)).collect();
        assert_eq!(
            keys,
            vec![
                ("a.rs:2", "SN001"),
                ("a.rs:2", "SN002"),
                ("a.rs:10", "SN001"),
                ("b.rs:2", "SN003"),
            ]
        );
    }

    #[test]
    fn dedup_drops_exact_duplicates_only() {
        let mut f = vec![
            Diagnostic::error("SN001", "a.rs:2", "x", "h"),
            Diagnostic::error("SN001", "a.rs:2", "x", "h"),
            Diagnostic::error("SN001", "a.rs:2", "y", "h"),
        ];
        sort_and_dedup(&mut f);
        assert_eq!(f.len(), 2);
    }
}
