//! Suppression baselines (`ci/lint_baseline.json`).
//!
//! A baseline is the checked-in list of findings the team has looked at
//! and accepted as standing debt: each entry is a `(code, location)` pair.
//! `lint --baseline` subtracts baselined findings from the exit-code
//! calculation (they are still counted and reported as suppressed);
//! `lint --update-baseline` rewrites the file from the current findings,
//! and CI asserts that rewrite is a no-op so the baseline can never go
//! stale silently.

use std::fs;
use std::path::Path;

use starnuma_types::{Diagnostic, StarNumaError};

use crate::json::{obj, JsonValue};

/// Baseline file schema version.
pub const BASELINE_SCHEMA_VERSION: f64 = 1.0;

/// A loaded suppression baseline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Baseline {
    /// Accepted `(code, location)` pairs, kept sorted.
    pub entries: Vec<(String, String)>,
}

impl Baseline {
    /// Loads a baseline file. `None` when the file is missing or corrupt —
    /// the caller decides whether that is an error (`--baseline` with no
    /// file should fail loudly, not silently suppress nothing).
    pub fn load(path: &Path) -> Option<Baseline> {
        let text = fs::read_to_string(path).ok()?;
        let doc = JsonValue::parse(&text)?;
        if doc.get("schema_version").and_then(JsonValue::as_num) != Some(BASELINE_SCHEMA_VERSION) {
            return None;
        }
        let mut entries = Vec::new();
        for e in doc.get("entries")?.as_arr()? {
            entries.push((
                e.get("code")?.as_str()?.to_string(),
                e.get("location")?.as_str()?.to_string(),
            ));
        }
        entries.sort();
        Some(Baseline { entries })
    }

    /// Builds a baseline that accepts exactly `findings`.
    pub fn from_findings(findings: &[Diagnostic]) -> Baseline {
        let mut entries: Vec<(String, String)> = findings
            .iter()
            .map(|d| (d.code.to_string(), d.location.clone()))
            .collect();
        entries.sort();
        entries.dedup();
        Baseline { entries }
    }

    /// Splits findings into (remaining, suppressed) against this baseline.
    pub fn apply(&self, findings: Vec<Diagnostic>) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
        findings.into_iter().partition(|d| {
            !self
                .entries
                .iter()
                .any(|(c, l)| c == d.code && *l == d.location)
        })
    }

    /// How many findings this baseline accepts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline accepts nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Writes the baseline to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns [`StarNumaError::Io`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), StarNumaError> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| StarNumaError::Io(format!("{}: {e}", parent.display())))?;
        }
        fs::write(path, self.render())
            .map_err(|e| StarNumaError::Io(format!("{}: {e}", path.display())))
    }

    /// Renders the baseline as its on-disk JSON: one entry per line so
    /// diffs review like code.
    pub fn render(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort();
        entries.dedup();
        let items: Vec<String> = entries
            .iter()
            .map(|(c, l)| {
                format!(
                    "    {}",
                    obj(vec![
                        ("code", JsonValue::Str(c.clone())),
                        ("location", JsonValue::Str(l.clone())),
                    ])
                    .render()
                )
            })
            .collect();
        format!(
            "{{\n  \"schema_version\": 1,\n  \"note\": \"accepted lint debt; regenerate with `starnuma lint --update-baseline`\",\n  \"entries\": [\n{}\n  ]\n}}\n",
            items.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::error("SN009", "crates/types/src/rng.rs:72", "m", "h"),
            Diagnostic::error("SN001", "crates/sim/src/x.rs:5", "m", "h"),
        ]
    }

    #[test]
    fn from_findings_apply_round_trip() {
        let b = Baseline::from_findings(&sample());
        let (remaining, suppressed) = b.apply(sample());
        assert!(remaining.is_empty());
        assert_eq!(suppressed.len(), 2);
    }

    #[test]
    fn apply_keeps_unlisted_findings() {
        let b = Baseline::from_findings(&sample()[..1]);
        let (remaining, suppressed) = b.apply(sample());
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].code, "SN001");
        assert_eq!(suppressed.len(), 1);
    }

    #[test]
    fn render_load_round_trip() {
        let b = Baseline::from_findings(&sample());
        let dir = std::env::temp_dir().join("starnuma-audit-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, b.render()).unwrap();
        assert_eq!(Baseline::load(&path), Some(b));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_or_corrupt_baseline_is_none() {
        assert_eq!(
            Baseline::load(Path::new("/nonexistent/baseline.json")),
            None
        );
        let dir = std::env::temp_dir().join("starnuma-audit-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{]").unwrap();
        assert_eq!(Baseline::load(&path), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_baseline_renders_and_loads() {
        let b = Baseline::default();
        let dir = std::env::temp_dir().join("starnuma-audit-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.json");
        std::fs::write(&path, b.render()).unwrap();
        assert_eq!(Baseline::load(&path), Some(b));
        std::fs::remove_file(&path).ok();
    }
}
