//! Zero-dependency static analysis for the StarNUMA workspace.
//!
//! The analyzer runs in layers:
//!
//! * **Lexer** ([`lexer`]): a real Rust token lexer — nested block
//!   comments, raw strings, char literals, lifetimes — whose token
//!   concatenation round-trips the source exactly. Lints match over
//!   reconstructed *code lines*, so a token hiding in a multi-line
//!   comment or a raw string can never fire (or be hidden from) a rule.
//! * **Item facts** ([`items`]) and the **workspace graph** ([`graph`]):
//!   per-file `use` edges, fn items with call/iteration sites,
//!   `DetMap`-typed bindings, and the cross-file call closure that marks
//!   merge/export boundary fns.
//! * **Lint passes** ([`lints`]):
//!   - **SN001** — no `unwrap()` / `expect()` / `panic!` in non-test
//!     library code;
//!   - **SN002** — no wall-clock types (bare `Instant` / `SystemTime`) in
//!     simulation crates;
//!   - **SN003** — no `HashMap` / `HashSet` in non-test code;
//!   - **SN004** — crate roots carry `#![forbid(unsafe_code)]` and
//!     `#![warn(missing_docs)]`;
//!   - **SN005** — no direct `println!` / `eprintln!` in library crates;
//!   - **SN006** — no insertion-order `DetMap` iteration escaping through
//!     a merge/export boundary without canonicalization;
//!   - **SN007** — float reduction loops state a canonical order;
//!   - **SN008** — no thread-id / `available_parallelism` reads in
//!     simulation crates;
//!   - **SN009** — no narrowing `as` casts in the sim/types crates;
//!   - **SN010** — public sim APIs return order-stable `Vec`s;
//!   - **SN011** — no keyed `sort_unstable` (ties reorder freely);
//!   - **SN012** — `Cargo.toml` drift: non-workspace dependencies,
//!     bin roots without `forbid(unsafe_code)`.
//! * **Workflow** ([`workspace`], [`baseline`], [`cache`], [`sarif`],
//!   [`fixes`]): an incremental digest-keyed cache, a checked-in
//!   suppression baseline, SARIF 2.1.0 emission for CI, and safe
//!   auto-fixes.
//!
//! Model validation (**SN1xx**) lives with the config types themselves:
//! their `diagnostics()` methods report through the same
//! [`starnuma_types::Diagnostic`] type.
//!
//! False positives are suppressed with a `// audit:allow(SNxxx)` marker on
//! the offending line or the line above it (`#` comments in manifests).
//!
//! # Examples
//!
//! ```
//! use starnuma_audit::lint_source;
//!
//! let findings = lint_source("demo.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }", false);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].code, "SN001");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cache;
pub mod fixes;
pub mod graph;
pub mod items;
pub mod json;
pub mod lexer;
pub mod lints;
mod report;
pub mod sarif;
pub mod workspace;

pub use baseline::Baseline;
pub use fixes::{apply_fixes, FixReport};
pub use lints::source::lint_source;
pub use lints::{println_exempt, wallclock_exempt};
pub use report::{render_human, render_json, render_json_report, REPORT_SCHEMA_VERSION};
pub use sarif::render_sarif;
pub use workspace::{lint_workspace, lint_workspace_with, LintOptions, LintOutcome};
