//! Zero-dependency static analysis for the StarNUMA workspace.
//!
//! Two passes keep the reproduction trustworthy:
//!
//! * **Pass 1 — source lints** ([`scanner`]): a line/token scanner over the
//!   workspace's own `.rs` files enforcing repo-specific rules that generic
//!   tools cannot know:
//!   - **SN001** — no `unwrap()` / `expect()` / `panic!` in non-test
//!     library code (bad configs must surface as typed errors, not mid-run
//!     aborts);
//!   - **SN002** — no wall-clock types (bare `Instant` / `SystemTime`,
//!     matched on identifier boundaries) in simulation crates — simulated
//!     time only; the `starnuma-prof` clock internals are the allow-listed
//!     exception;
//!   - **SN003** — no `HashMap` / `HashSet` in non-test code (iteration
//!     order leaks into stats; use `BTreeMap` / `BTreeSet` or sorted
//!     drains);
//!   - **SN004** — every crate root carries `#![forbid(unsafe_code)]` and
//!     `#![warn(missing_docs)]`;
//!   - **SN005** — no direct `println!` / `eprintln!` in library crates
//!     (operator-visible output flows through the obs event journal; only
//!     the CLI, the bench harness, and the obs exporters print).
//!
//! * **Pass 2 — model validation**: the `diagnostics()` methods on
//!   `SystemParams`, `PolicyConfig`, `MigrationCosts`, and `RunConfig`
//!   (living next to those types) check physical consistency before a run
//!   starts and report through the same [`starnuma_types::Diagnostic`]
//!   type, with `SN1xx` codes.
//!
//! False positives are suppressed with a `// audit:allow(SNxxx)` marker on
//! the offending line or the line above it.
//!
//! # Examples
//!
//! ```
//! use starnuma_audit::lint_source;
//!
//! let findings = lint_source("demo.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }", false);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].code, "SN001");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;
mod scanner;

pub use report::{render_human, render_json};
pub use scanner::{lint_source, lint_workspace, println_exempt, wallclock_exempt};
