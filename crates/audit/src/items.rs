//! Item-level fact extraction from a token stream.
//!
//! The lexer gives an exact token sequence; this module walks it once and
//! records the facts the dataflow lints need: `use` edges, fn items with
//! their call sites and iteration sites, `DetMap`-typed bindings, float
//! accumulators in loops, and the suppression markers. Facts are designed
//! to be (de)serializable via [`crate::json`] so the incremental cache can
//! skip re-lexing unchanged files while still running whole-workspace
//! graph passes.
//!
//! This is deliberately not a full parser. It tracks brace depth, gulps
//! attributes / `use` statements / fn headers wholesale so their internal
//! punctuation cannot confuse the depth tracker, and pattern-matches the
//! handful of shapes the lints care about. Unknown constructs fall through
//! harmlessly.

use crate::json::{obj, JsonValue};
use crate::lexer::{allow_lines, comment_lines_containing, Token, TokenKind};

/// Iteration methods that expose a collection's internal order.
pub const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "entries",
];

/// A `use` declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseFact {
    /// 1-based line of the `use` keyword.
    pub line: usize,
    /// Flattened path text, e.g. `std::collections::HashMap` or
    /// `starnuma_types::{DetMap,SimRng}`.
    pub path: String,
}

/// One iteration site inside a fn: a `for … in recv` loop or an explicit
/// `.iter()` / `.drain()`-style call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IterFact {
    /// 1-based line of the site.
    pub line: usize,
    /// The receiver identifier being iterated (best effort).
    pub recv: String,
    /// The iteration method name, or empty for a bare `for x in recv`.
    pub method: String,
}

/// A `name += …` float accumulation inside a loop body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccumFact {
    /// The accumulator's identifier.
    pub name: String,
    /// 1-based line of the `+=`.
    pub line: usize,
}

/// Facts about one `fn` item.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FnFact {
    /// The fn's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the fn is plain `pub` (restricted `pub(crate)` is not
    /// public API and does not count).
    pub is_pub: bool,
    /// The return type's token text (space-joined), empty when none.
    pub ret: String,
    /// Every identifier invoked with `(` in the body (functions, methods,
    /// macros) — the raw material for call edges.
    pub calls: Vec<String>,
    /// Iteration sites in the body.
    pub iterations: Vec<IterFact>,
    /// Float accumulations inside loop bodies.
    pub accums: Vec<AccumFact>,
    /// Identifiers bound to `DetMap` values in this fn (locals + params).
    pub det_locals: Vec<String>,
    /// Whether the fn is inside a `#[cfg(test)]` module or carries a
    /// `#[test]` / `#[cfg(test)]` attribute itself.
    pub in_test: bool,
}

impl FnFact {
    /// Whether the body calls `sorted_drain` (the canonical-order drain).
    pub fn has_sorted_drain(&self) -> bool {
        self.calls.iter().any(|c| c == "sorted_drain")
    }

    /// Whether the body sorts anything (`sort`, `sort_by_key`, …).
    pub fn has_sort(&self) -> bool {
        self.calls.iter().any(|c| c.starts_with("sort"))
    }
}

/// Everything the lint passes need to know about one source file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FileFacts {
    /// Workspace-relative path label (as used in diagnostics).
    pub path: String,
    /// The owning crate's directory name (empty for the root package).
    pub crate_name: String,
    /// Whether this is a crate root (`lib.rs` / `main.rs` under `src/`).
    pub is_crate_root: bool,
    /// All `use` declarations.
    pub uses: Vec<UseFact>,
    /// File-level identifiers bound to `DetMap` values (struct fields,
    /// statics).
    pub det_idents: Vec<String>,
    /// All fn items, in source order.
    pub fns: Vec<FnFact>,
    /// `audit:allow(SNxxx)` markers: (line, code).
    pub allows: Vec<(usize, String)>,
    /// Lines whose comments contain "canonical" (SN007's escape hatch).
    pub canonical_lines: Vec<usize>,
}

impl FileFacts {
    /// Whether an `audit:allow(code)` marker covers `line` (same line or
    /// the line above).
    pub fn allowed(&self, code: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|(l, c)| c == code && (*l == line || l + 1 == line))
    }

    /// Whether `ident` is known to hold a `DetMap` anywhere in this file
    /// or specifically in `f`'s scope.
    pub fn is_det_ident(&self, f: &FnFact, ident: &str) -> bool {
        self.det_idents.iter().any(|d| d == ident) || f.det_locals.iter().any(|d| d == ident)
    }
}

/// Extracts [`FileFacts`] from a lexed file.
pub fn extract(path: &str, crate_name: &str, is_crate_root: bool, tokens: &[Token]) -> FileFacts {
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let mut facts = FileFacts {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        is_crate_root,
        allows: allow_lines(tokens),
        canonical_lines: comment_lines_containing(tokens, "canonical"),
        ..FileFacts::default()
    };

    let mut depth: i64 = 0;
    let mut bracket: i64 = 0;
    let mut test_depth: Option<i64> = None;
    let mut pending_test_attr = false;
    let mut awaiting_test_brace = false;
    let mut awaiting_loop_brace = false;
    let mut impl_header = false;
    // (index into facts.fns, depth of the fn body's braces).
    let mut fn_stack: Vec<(usize, i64)> = Vec::new();
    let mut loop_depths: Vec<i64> = Vec::new();
    // (fn index, name) of float-zero-initialized `let mut` locals.
    let mut float_locals: Vec<(usize, String)> = Vec::new();

    let mut i = 0usize;
    while i < sig.len() {
        let t = sig[i];
        let text = t.text.as_str();
        match t.kind {
            TokenKind::Punct => match text {
                "{" => {
                    if awaiting_test_brace {
                        test_depth = test_depth.or(Some(depth));
                        awaiting_test_brace = false;
                    }
                    if awaiting_loop_brace {
                        loop_depths.push(depth + 1);
                        awaiting_loop_brace = false;
                    }
                    impl_header = false;
                    depth += 1;
                    i += 1;
                }
                "}" => {
                    depth -= 1;
                    if test_depth.is_some_and(|td| depth <= td) {
                        test_depth = None;
                    }
                    while fn_stack.last().is_some_and(|&(_, d)| depth < d) {
                        fn_stack.pop();
                    }
                    while loop_depths.last().is_some_and(|&d| depth < d) {
                        loop_depths.pop();
                    }
                    i += 1;
                }
                "[" => {
                    bracket += 1;
                    i += 1;
                }
                "]" => {
                    bracket -= 1;
                    i += 1;
                }
                ";" => {
                    if bracket == 0 {
                        awaiting_test_brace = false;
                        awaiting_loop_brace = false;
                        impl_header = false;
                    }
                    i += 1;
                }
                "#" => {
                    i = gulp_attribute(&sig, i, &mut pending_test_attr);
                }
                _ => i += 1,
            },
            TokenKind::Ident => match text {
                "use" => {
                    let line = t.line;
                    let mut j = i + 1;
                    let mut buf = String::new();
                    while j < sig.len() && sig[j].text != ";" {
                        buf.push_str(&sig[j].text);
                        j += 1;
                    }
                    facts.uses.push(UseFact { line, path: buf });
                    pending_test_attr = false;
                    i = j + 1;
                }
                "impl" | "trait" => {
                    impl_header = true;
                    pending_test_attr = false;
                    i += 1;
                }
                "mod" => {
                    if pending_test_attr {
                        awaiting_test_brace = true;
                        pending_test_attr = false;
                    }
                    i += 1;
                }
                "loop" => {
                    awaiting_loop_brace = true;
                    i += 1;
                }
                "while" if !impl_header => {
                    i = gulp_loop_header(&sig, i + 1, None, &mut facts, &fn_stack);
                    awaiting_loop_brace = true;
                }
                "for" if !impl_header && sig.get(i + 1).is_none_or(|n| n.text != "<") => {
                    i = gulp_loop_header(&sig, i + 1, Some(t.line), &mut facts, &fn_stack);
                    awaiting_loop_brace = true;
                }
                "fn" => {
                    i = parse_fn_header(
                        &sig,
                        i,
                        &mut facts,
                        &mut fn_stack,
                        &mut depth,
                        test_depth.is_some() || pending_test_attr,
                    );
                    pending_test_attr = false;
                }
                "let" => {
                    record_float_local(&sig, i, &fn_stack, &mut float_locals);
                    i += 1;
                }
                "struct" | "enum" | "const" | "static" | "type" => {
                    pending_test_attr = false;
                    i += 1;
                }
                "DetMap" => {
                    record_det_binding(&sig, i, &fn_stack, &mut facts);
                    i += 1;
                }
                _ => {
                    scan_body_ident(&sig, i, &fn_stack, &loop_depths, &float_locals, &mut facts);
                    i += 1;
                }
            },
            _ => i += 1,
        }
    }
    facts
}

/// Gulps a `#[…]` / `#![…]` attribute starting at the `#`; sets
/// `pending_test_attr` for `#[test]` and `#[cfg(test)]`. Returns the index
/// past the closing `]`.
fn gulp_attribute(sig: &[&Token], start: usize, pending_test_attr: &mut bool) -> usize {
    let mut j = start + 1;
    if sig.get(j).is_some_and(|t| t.text == "!") {
        j += 1;
    }
    if sig.get(j).is_none_or(|t| t.text != "[") {
        return start + 1;
    }
    let body_start = j + 1;
    let mut depth = 0i64;
    while let Some(t) = sig.get(j) {
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let body = &sig[body_start..j.min(sig.len())];
    let is_test_attr = body.first().is_some_and(|t| t.text == "test")
        || body
            .windows(3)
            .any(|w| w[0].text == "cfg" && w[1].text == "(" && w[2].text == "test");
    if is_test_attr {
        *pending_test_attr = true;
    }
    (j + 1).min(sig.len())
}

/// Scans a `for`/`while` header from just past the keyword to the body
/// `{`, recording calls and (for `for` loops) the iteration site. Returns
/// the index of the body `{` so the caller's `awaiting_loop_brace` fires.
fn gulp_loop_header(
    sig: &[&Token],
    start: usize,
    for_line: Option<usize>,
    facts: &mut FileFacts,
    fn_stack: &[(usize, i64)],
) -> usize {
    let mut j = start;
    let mut paren = 0i64;
    let mut in_at: Option<usize> = None;
    while let Some(t) = sig.get(j) {
        match t.text.as_str() {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "{" if paren == 0 => break,
            ";" if paren == 0 => break,
            "in" if paren == 0 && in_at.is_none() => in_at = Some(j),
            _ => {}
        }
        j += 1;
    }
    let cur_fn = fn_stack.last().map(|&(f, _)| f);
    // Calls inside the header expression.
    let mut k = start;
    while k + 1 < j {
        if sig[k].kind == TokenKind::Ident && sig[k + 1].text == "(" {
            if let Some(f) = cur_fn {
                facts.fns[f].calls.push(sig[k].text.clone());
            }
        }
        k += 1;
    }
    // The iteration site itself (for loops only).
    if let (Some(line), Some(in_idx)) = (for_line, in_at) {
        let expr = &sig[in_idx + 1..j.min(sig.len())];
        let mut method = String::new();
        let mut recv = String::new();
        for (k, t) in expr.iter().enumerate() {
            if t.kind == TokenKind::Ident
                && ITER_METHODS.contains(&t.text.as_str())
                && expr.get(k + 1).is_some_and(|n| n.text == "(")
                && k >= 1
                && expr[k - 1].text == "."
            {
                method = t.text.clone();
                if k >= 2 && expr[k - 2].kind == TokenKind::Ident {
                    recv = expr[k - 2].text.clone();
                }
                break;
            }
        }
        if recv.is_empty() {
            // Bare `for x in recv` / `for x in &self.recv`: the last
            // identifier of the path not itself being called.
            for (k, t) in expr.iter().enumerate() {
                if t.kind == TokenKind::Ident && expr.get(k + 1).is_none_or(|n| n.text != "(") {
                    recv = t.text.clone();
                }
            }
        }
        if let Some(f) = cur_fn {
            facts.fns[f]
                .iterations
                .push(IterFact { line, recv, method });
        }
    }
    j
}

/// Parses a `fn` header starting at the `fn` keyword: name, visibility,
/// generics, params (mining them for `DetMap` bindings), return type, and
/// where clause. Pushes the new fn and, when a body opens, enters it.
/// Returns the index past the body `{` or the `;`.
fn parse_fn_header(
    sig: &[&Token],
    fn_idx_tok: usize,
    facts: &mut FileFacts,
    fn_stack: &mut Vec<(usize, i64)>,
    depth: &mut i64,
    in_test: bool,
) -> usize {
    let line = sig[fn_idx_tok].line;
    let mut j = fn_idx_tok + 1;
    let name = sig
        .get(j)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_default();
    j += 1;
    let is_pub = {
        let mut k = fn_idx_tok;
        // Skip qualifiers between the visibility and `fn`.
        while k >= 1
            && (matches!(sig[k - 1].text.as_str(), "const" | "async" | "extern")
                || sig[k - 1].kind == TokenKind::Str)
        {
            k -= 1;
        }
        k >= 1 && sig[k - 1].text == "pub"
    };
    // Generics.
    if sig.get(j).is_some_and(|t| t.text == "<") {
        let mut angle = 0i64;
        while let Some(t) = sig.get(j) {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Params.
    let params_start = j;
    if sig.get(j).is_some_and(|t| t.text == "(") {
        let mut paren = 0i64;
        while let Some(t) = sig.get(j) {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => {
                    paren -= 1;
                    if paren == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    let mut det_locals = Vec::new();
    let params = &sig[params_start..j.min(sig.len())];
    for (k, t) in params.iter().enumerate() {
        if t.text == "DetMap" {
            if let Some(n) = det_name_before(params, k) {
                det_locals.push(n);
            }
        }
    }
    // Return type.
    let mut ret = String::new();
    if sig.get(j).is_some_and(|t| t.text == "->") {
        j += 1;
        let (mut a, mut p) = (0i64, 0i64);
        while let Some(t) = sig.get(j) {
            match t.text.as_str() {
                "{" | ";" | "where" if a == 0 && p == 0 => break,
                "<" => a += 1,
                ">" => a -= 1,
                "(" => p += 1,
                ")" => p -= 1,
                _ => {}
            }
            if !ret.is_empty() && t.kind == TokenKind::Ident {
                ret.push(' ');
            }
            ret.push_str(&t.text);
            j += 1;
        }
    }
    // Where clause.
    while sig.get(j).is_some_and(|t| t.text != "{" && t.text != ";") {
        j += 1;
    }
    let fn_idx = facts.fns.len();
    facts.fns.push(FnFact {
        name,
        line,
        is_pub,
        ret,
        det_locals,
        in_test,
        ..FnFact::default()
    });
    match sig.get(j).map(|t| t.text.as_str()) {
        Some("{") => {
            fn_stack.push((fn_idx, *depth + 1));
            *depth += 1;
            j + 1
        }
        Some(";") => j + 1,
        _ => j,
    }
}

/// Walks back from a `DetMap` token over its path (`a::b::DetMap`) and
/// `&`/`mut`, expecting `name :` or `name =`; returns the bound name.
fn det_name_before(sig: &[&Token], det_at: usize) -> Option<String> {
    let mut j = det_at.checked_sub(1)?;
    while sig[j].text == "::" {
        j = j.checked_sub(2)?;
    }
    while matches!(sig[j].text.as_str(), "&" | "mut") {
        j = j.checked_sub(1)?;
    }
    if !matches!(sig[j].text.as_str(), ":" | "=") {
        return None;
    }
    let name_tok = sig.get(j.checked_sub(1)?)?;
    if name_tok.kind == TokenKind::Ident {
        Some(name_tok.text.clone())
    } else {
        None
    }
}

/// Records a `DetMap`-typed binding at file level or fn level.
fn record_det_binding(
    sig: &[&Token],
    det_at: usize,
    fn_stack: &[(usize, i64)],
    facts: &mut FileFacts,
) {
    let Some(name) = det_name_before(sig, det_at) else {
        return;
    };
    if let Some(&(f, _)) = fn_stack.last() {
        if !facts.fns[f].det_locals.contains(&name) {
            facts.fns[f].det_locals.push(name);
        }
    } else if !facts.det_idents.contains(&name) {
        facts.det_idents.push(name);
    }
}

/// Records `let mut name = <float zero>` / `let mut name: f64` locals.
fn record_float_local(
    sig: &[&Token],
    let_at: usize,
    fn_stack: &[(usize, i64)],
    float_locals: &mut Vec<(usize, String)>,
) {
    let Some(&(f, _)) = fn_stack.last() else {
        return;
    };
    if sig.get(let_at + 1).is_none_or(|t| t.text != "mut") {
        return;
    }
    let Some(name) = sig
        .get(let_at + 2)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
    else {
        return;
    };
    let mut k = let_at + 3;
    let mut is_float = false;
    // Optional `: type` annotation.
    if sig.get(k).is_some_and(|t| t.text == ":") {
        while let Some(t) = sig.get(k) {
            if t.text == "=" || t.text == ";" {
                break;
            }
            if matches!(t.text.as_str(), "f64" | "f32") {
                is_float = true;
            }
            k += 1;
        }
    }
    if sig.get(k).is_some_and(|t| t.text == "=") {
        if let Some(v) = sig.get(k + 1) {
            if v.kind == TokenKind::Number
                && (v.text.contains('.') || v.text.contains("f64") || v.text.contains("f32"))
            {
                is_float = true;
            }
        }
    }
    if is_float {
        float_locals.push((f, name));
    }
}

/// Handles a generic identifier in a body: call sites, explicit iteration
/// calls, and float `+=` accumulations inside loops.
fn scan_body_ident(
    sig: &[&Token],
    i: usize,
    fn_stack: &[(usize, i64)],
    loop_depths: &[i64],
    float_locals: &[(usize, String)],
    facts: &mut FileFacts,
) {
    let Some(&(f, _)) = fn_stack.last() else {
        return;
    };
    let t = sig[i];
    let next = sig.get(i + 1).map(|n| n.text.as_str());
    let called =
        next == Some("(") || (next == Some("!") && sig.get(i + 2).is_some_and(|n| n.text == "("));
    if called {
        facts.fns[f].calls.push(t.text.clone());
        if ITER_METHODS.contains(&t.text.as_str()) && i >= 1 && sig[i - 1].text == "." {
            let recv = sig
                .get(i.wrapping_sub(2))
                .filter(|r| r.kind == TokenKind::Ident)
                .map(|r| r.text.clone())
                .unwrap_or_default();
            facts.fns[f].iterations.push(IterFact {
                line: t.line,
                recv,
                method: t.text.clone(),
            });
        }
        return;
    }
    if next == Some("+=")
        && !loop_depths.is_empty()
        && float_locals.iter().any(|(ff, n)| *ff == f && *n == t.text)
    {
        facts.fns[f].accums.push(AccumFact {
            name: t.text.clone(),
            line: t.line,
        });
    }
}

// ---------------------------------------------------------------------
// Cache (de)serialization.
// ---------------------------------------------------------------------

fn arr_of_strings(items: &[String]) -> JsonValue {
    JsonValue::Arr(items.iter().map(|s| JsonValue::Str(s.clone())).collect())
}

fn strings_of_arr(v: Option<&JsonValue>) -> Vec<String> {
    v.and_then(JsonValue::as_arr)
        .map(|a| {
            a.iter()
                .filter_map(|x| x.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default()
}

impl FileFacts {
    /// Serializes the facts for the incremental cache.
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("path", JsonValue::Str(self.path.clone())),
            ("crate", JsonValue::Str(self.crate_name.clone())),
            ("root", JsonValue::Bool(self.is_crate_root)),
            (
                "uses",
                JsonValue::Arr(
                    self.uses
                        .iter()
                        .map(|u| {
                            obj(vec![
                                ("line", JsonValue::Num(u.line as f64)),
                                ("path", JsonValue::Str(u.path.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("det", arr_of_strings(&self.det_idents)),
            (
                "fns",
                JsonValue::Arr(self.fns.iter().map(fn_to_json).collect()),
            ),
            (
                "allows",
                JsonValue::Arr(
                    self.allows
                        .iter()
                        .map(|(l, c)| {
                            JsonValue::Arr(vec![
                                JsonValue::Num(*l as f64),
                                JsonValue::Str(c.clone()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "canon",
                JsonValue::Arr(
                    self.canonical_lines
                        .iter()
                        .map(|l| JsonValue::Num(*l as f64))
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes facts from the incremental cache; `None` on any shape
    /// mismatch (a stale cache must read as absent).
    pub fn from_json(v: &JsonValue) -> Option<FileFacts> {
        let mut facts = FileFacts {
            path: v.get("path")?.as_str()?.to_string(),
            crate_name: v.get("crate")?.as_str()?.to_string(),
            is_crate_root: matches!(v.get("root"), Some(JsonValue::Bool(true))),
            det_idents: strings_of_arr(v.get("det")),
            ..FileFacts::default()
        };
        for u in v.get("uses")?.as_arr()? {
            facts.uses.push(UseFact {
                line: u.get("line")?.as_num()? as usize,
                path: u.get("path")?.as_str()?.to_string(),
            });
        }
        for f in v.get("fns")?.as_arr()? {
            facts.fns.push(fn_from_json(f)?);
        }
        for a in v.get("allows")?.as_arr()? {
            let pair = a.as_arr()?;
            facts.allows.push((
                pair.first()?.as_num()? as usize,
                pair.get(1)?.as_str()?.to_string(),
            ));
        }
        for l in v.get("canon")?.as_arr()? {
            facts.canonical_lines.push(l.as_num()? as usize);
        }
        Some(facts)
    }
}

fn fn_to_json(f: &FnFact) -> JsonValue {
    obj(vec![
        ("name", JsonValue::Str(f.name.clone())),
        ("line", JsonValue::Num(f.line as f64)),
        ("pub", JsonValue::Bool(f.is_pub)),
        ("ret", JsonValue::Str(f.ret.clone())),
        ("calls", arr_of_strings(&f.calls)),
        (
            "iters",
            JsonValue::Arr(
                f.iterations
                    .iter()
                    .map(|it| {
                        obj(vec![
                            ("line", JsonValue::Num(it.line as f64)),
                            ("recv", JsonValue::Str(it.recv.clone())),
                            ("method", JsonValue::Str(it.method.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "accums",
            JsonValue::Arr(
                f.accums
                    .iter()
                    .map(|a| {
                        obj(vec![
                            ("name", JsonValue::Str(a.name.clone())),
                            ("line", JsonValue::Num(a.line as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("det", arr_of_strings(&f.det_locals)),
        ("test", JsonValue::Bool(f.in_test)),
    ])
}

fn fn_from_json(v: &JsonValue) -> Option<FnFact> {
    let mut f = FnFact {
        name: v.get("name")?.as_str()?.to_string(),
        line: v.get("line")?.as_num()? as usize,
        is_pub: matches!(v.get("pub"), Some(JsonValue::Bool(true))),
        ret: v.get("ret")?.as_str()?.to_string(),
        calls: strings_of_arr(v.get("calls")),
        det_locals: strings_of_arr(v.get("det")),
        in_test: matches!(v.get("test"), Some(JsonValue::Bool(true))),
        ..FnFact::default()
    };
    for it in v.get("iters")?.as_arr()? {
        f.iterations.push(IterFact {
            line: it.get("line")?.as_num()? as usize,
            recv: it.get("recv")?.as_str()?.to_string(),
            method: it.get("method")?.as_str()?.to_string(),
        });
    }
    for a in v.get("accums")?.as_arr()? {
        f.accums.push(AccumFact {
            name: a.get("name")?.as_str()?.to_string(),
            line: a.get("line")?.as_num()? as usize,
        });
    }
    Some(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn facts_of(src: &str) -> FileFacts {
        extract("t.rs", "sim", false, &lex(src))
    }

    #[test]
    fn extracts_uses_and_fn_shapes() {
        let src = "use std::collections::BTreeMap;\nuse starnuma_types::{DetMap, SimRng};\n\npub fn merge_results(xs: &[u32]) -> Vec<u32> {\n    let mut out = Vec::new();\n    out.extend(xs.iter().copied());\n    out\n}\n\nfn helper() {}\n";
        let f = facts_of(src);
        assert_eq!(f.uses.len(), 2);
        assert_eq!(f.uses[0].path, "std::collections::BTreeMap");
        assert_eq!(f.uses[1].path, "starnuma_types::{DetMap,SimRng}");
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "merge_results");
        assert!(f.fns[0].is_pub);
        assert_eq!(f.fns[0].ret, "Vec< u32>");
        assert!(f.fns[0].calls.iter().any(|c| c == "extend"));
        assert!(!f.fns[1].is_pub);
    }

    #[test]
    fn detmap_fields_locals_and_params_are_recorded() {
        let src = "pub struct Dir {\n    entries: DetMap<u64, u32>,\n}\n\nfn f(masks: &DetMap<u64, u64>) {\n    let mut local = DetMap::new();\n    local.insert(1u64, 2u64);\n    let _ = masks.len();\n}\n";
        let f = facts_of(src);
        assert_eq!(f.det_idents, vec!["entries".to_string()]);
        assert_eq!(
            f.fns[0].det_locals,
            vec!["masks".to_string(), "local".to_string()]
        );
    }

    #[test]
    fn iteration_sites_capture_receiver_and_method() {
        let src = "fn g(m: &DetMap<u64, u64>) -> u64 {\n    let mut acc = 0u64;\n    for (k, v) in m.iter() {\n        acc += k + v;\n    }\n    let n: u64 = m.values().sum();\n    acc + n\n}\n";
        let f = facts_of(src);
        let iters = &f.fns[0].iterations;
        assert!(iters
            .iter()
            .any(|it| it.recv == "m" && it.method == "iter" && it.line == 3));
        assert!(iters
            .iter()
            .any(|it| it.recv == "m" && it.method == "values"));
    }

    #[test]
    fn float_accumulators_in_loops_are_found() {
        let src = "fn h(xs: &[f64]) -> f64 {\n    let mut total = 0.0;\n    let mut count = 0u64;\n    for x in xs {\n        total += x;\n        count += 1;\n    }\n    let _ = count;\n    total\n}\n";
        let f = facts_of(src);
        assert_eq!(f.fns[0].accums.len(), 1);
        assert_eq!(f.fns[0].accums[0].name, "total");
        assert_eq!(f.fns[0].accums[0].line, 5);
    }

    #[test]
    fn float_accumulation_outside_a_loop_is_not_an_accum() {
        let src =
            "fn h(x: f64) -> f64 {\n    let mut total = 0.0;\n    total += x;\n    total\n}\n";
        let f = facts_of(src);
        assert!(f.fns[0].accums.is_empty());
    }

    #[test]
    fn test_modules_and_test_attrs_mark_fns() {
        let src = "fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        lib();\n    }\n}\n";
        let f = facts_of(src);
        assert_eq!(f.fns.len(), 2);
        assert!(!f.fns[0].in_test);
        assert!(f.fns[1].in_test);
    }

    #[test]
    fn impl_for_is_not_a_loop_and_sorted_drain_is_seen() {
        let src = "struct S;\nimpl Iterator for S {\n    type Item = u32;\n    fn next(&mut self) -> Option<u32> { None }\n}\n\nfn export(m: &mut DetMap<u64, u64>) -> Vec<(u64, u64)> {\n    m.sorted_drain()\n}\n";
        let f = facts_of(src);
        let export = f.fns.iter().find(|x| x.name == "export").unwrap();
        assert!(export.has_sorted_drain());
        assert!(f.fns.iter().all(|x| x.accums.is_empty()));
    }

    #[test]
    fn allows_and_canonical_lines_round_trip_through_json() {
        let src = "// audit:allow(SN007)\nfn f(xs: &[f64]) -> f64 {\n    // canonical order: sorted by id\n    let mut t = 0.0;\n    for x in xs {\n        t += x;\n    }\n    t\n}\n";
        let f = facts_of(src);
        assert_eq!(f.allows, vec![(1, "SN007".to_string())]);
        assert_eq!(f.canonical_lines, vec![3]);
        let back = FileFacts::from_json(&f.to_json()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn pub_crate_does_not_count_as_public_api() {
        let src = "pub(crate) fn internal() -> Vec<u32> { Vec::new() }\npub fn external() -> Vec<u32> { Vec::new() }\n";
        let f = facts_of(src);
        assert!(!f.fns[0].is_pub);
        assert!(f.fns[1].is_pub);
    }

    #[test]
    fn while_loops_count_as_loops_for_accums() {
        let src = "fn w(xs: &[f64]) -> f64 {\n    let mut t = 0.0;\n    let mut i = 0usize;\n    while i < xs.len() {\n        t += xs[i];\n        i += 1;\n    }\n    t\n}\n";
        let f = facts_of(src);
        assert_eq!(f.fns[0].accums.len(), 1);
        assert_eq!(f.fns[0].accums[0].name, "t");
    }
}
