//! Lexer round-trip gate: concatenating the lexed tokens of every `.rs`
//! file in the workspace (fixtures included) must reproduce the source
//! byte-for-byte, and the reconstructed code-line view must keep the line
//! structure. Any divergence means the lints are matching against text
//! the compiler would read differently.

use std::fs;
use std::path::{Path, PathBuf};

use starnuma_audit::lexer::{code_lines, lex};

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_rs(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_workspace_source_file_round_trips() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    files.sort();
    assert!(
        files.len() >= 40,
        "expected a whole workspace, found {} files",
        files.len()
    );
    for file in files {
        let source = fs::read_to_string(&file).expect("readable source");
        let tokens = lex(&source);
        let rebuilt: String = tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            rebuilt,
            source,
            "token concatenation must round-trip {}",
            file.display()
        );
        let code = code_lines(&source, &tokens);
        assert_eq!(
            code.len(),
            source.lines().count(),
            "code-line view must keep the line structure of {}",
            file.display()
        );
    }
}
