//! Fixture binary root deliberately missing `#![forbid(unsafe_code)]`
//! so the SN012 bin-root check has something to catch.

fn main() {}
