//! A deliberately dirty simulation crate for the audit integration tests.
//! Each of SN005–SN011 fires exactly once here; every rule also has a
//! clean twin that must stay silent. Like the rest of the fixture tree,
//! cargo never compiles this file — the analyzer sees it purely as text.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use starnuma_types::DetMap;

// SN006: insertion-order DetMap iteration inside an export boundary.
pub fn export_counts(m: &DetMap<u64, u64>) -> u64 {
    let mut n = 0u64;
    for (_k, v) in m.iter() {
        n += v;
    }
    n
}

// Clean twin: the boundary canonicalizes through sorted_drain.
pub fn export_sorted(m: &mut DetMap<u64, u64>) -> Vec<(u64, u64)> {
    m.sorted_drain()
}

// SN007: float accumulation in a loop without a canonical-order note.
pub fn mean(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    for x in xs {
        total += x;
    }
    total
}

// Clean twin: the iteration order is stated within reach of the `+=`.
pub fn mean_noted(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    // canonical order: xs is slice-ordered by the caller.
    for x in xs {
        total += x;
    }
    total
}

// SN008: a thread-topology read inside a simulation crate.
pub fn worker_count() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

// SN009: a narrowing `as` cast in a truncation-scoped crate.
pub fn truncate(x: u64) -> u16 {
    x as u16
}

// Clean twins: a lossless conversion and an allow-marked bounded cast.
pub fn widen(x: u16) -> u64 {
    u64::from(x)
}

pub fn bounded(x: u64) -> u16 {
    // audit:allow(SN009) fixture: values are bounded below 2^16.
    x as u16
}

// SN010: a pub API returning a Vec in DetMap iteration order.
pub fn snapshot(m: &DetMap<u64, u64>) -> Vec<u64> {
    m.values().copied().collect()
}

// Clean twin: the Vec is sorted before it escapes.
pub fn snapshot_sorted(m: &DetMap<u64, u64>) -> Vec<u64> {
    let mut v: Vec<u64> = m.values().copied().collect();
    v.sort();
    v
}

// SN011: a keyed unstable sort (ties reorder freely).
pub fn rank(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.sort_unstable_by_key(|e| e.0);
    v
}

// Clean twin: a stable sort on the same key.
pub fn rank_stable(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.sort_by_key(|e| e.0);
    v
}

// SN005: a direct print from a library crate.
pub fn chatty() {
    println!("simulation crates must route output through the obs journal");
}
