// A deliberately dirty crate root, scanned by the audit integration tests.
// It is not part of the cargo build (no Cargo.toml): it only exists on disk.

pub fn risky(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn timed() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn stamped() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn unordered() -> std::collections::HashMap<u32, u32> {
    std::collections::HashMap::new()
}

// The deterministic in-repo map must NOT trip SN003 ("DetMap" is not a
// std hash collection) — fixture coverage for the PR-5 index swap.
pub struct DeterministicIndexUser {
    pub entries: starnuma_types::DetMap<u64, u32>,
}

// The ProfClock shape: wall-clock internals carrying their own allow
// markers must stay clean under the identifier-boundary SN002 — and
// identifiers that merely contain the type name must not fire at all.
pub struct FixtureClock {
    at: std::time::Instant, // audit:allow(SN002) fixture: clock internals
}

pub struct InstantLike;

pub fn instant_adjacent(x: InstantLike) -> InstantLike {
    x
}

pub fn suppressed(v: Option<u32>) -> u32 {
    // audit:allow(SN001) fixture: the marker must silence the next line.
    v.unwrap()
}

// The root package is a front end, so this must be scoped out of SN005
// (library crates in the fixture still fire it).
pub fn noisy() {
    println!("chatty library");
}

/* Instant */
// ^ a wall-clock name inside a block comment must not fire SN002.

pub fn raw_string_is_not_code() -> &'static str {
    // A std hash collection named inside a raw string must not fire SN003,
    // and a macro name inside a plain string must not fire SN005.
    let quoted = "println!(";
    let _ = quoted;
    r#"HashMap"#
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
