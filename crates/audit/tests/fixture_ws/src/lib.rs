// A deliberately dirty crate root, scanned by the audit integration tests.
// It is not part of the cargo build (no Cargo.toml): it only exists on disk.

pub fn risky(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn timed() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn unordered() -> std::collections::HashMap<u32, u32> {
    std::collections::HashMap::new()
}

// The deterministic in-repo map must NOT trip SN003 ("DetMap" is not a
// std hash collection) — fixture coverage for the PR-5 index swap.
pub struct DeterministicIndexUser {
    pub entries: starnuma_types::DetMap<u64, u32>,
}

pub fn suppressed(v: Option<u32>) -> u32 {
    // audit:allow(SN001) fixture: the marker must silence the next line.
    v.unwrap()
}

pub fn noisy() {
    println!("chatty library");
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
