//! End-to-end scan of the deliberately dirty fixture tree under
//! `tests/fixture_ws` (which carries no workspace `Cargo.toml`, so cargo
//! never compiles it — the analyzer sees it purely as text). The fixture
//! fires every rule SN001–SN012 at least once and carries a clean twin
//! for each of the new dataflow rules.

use std::path::Path;

use starnuma_audit::{lint_workspace, render_human, render_json, Baseline};

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixture_ws")
}

#[test]
fn fixture_violations_are_found_with_exact_codes() {
    let findings = lint_workspace(&fixture_root()).expect("fixture tree is readable");
    let got: Vec<(&str, &str)> = findings
        .iter()
        .map(|d| (d.location.as_str(), d.code))
        .collect();
    assert_eq!(
        got,
        [
            ("crates/sim/Cargo.toml:12", "SN012"),
            ("crates/sim/src/lib.rs:14", "SN006"),
            ("crates/sim/src/lib.rs:29", "SN007"),
            ("crates/sim/src/lib.rs:46", "SN008"),
            ("crates/sim/src/lib.rs:51", "SN009"),
            ("crates/sim/src/lib.rs:65", "SN010"),
            ("crates/sim/src/lib.rs:78", "SN011"),
            ("crates/sim/src/lib.rs:90", "SN005"),
            ("crates/sim/src/main.rs:1", "SN012"),
            ("src/lib.rs:1", "SN004"),
            ("src/lib.rs:1", "SN004"),
            ("src/lib.rs:5", "SN001"),
            ("src/lib.rs:8", "SN002"),
            ("src/lib.rs:9", "SN002"),
            ("src/lib.rs:12", "SN002"),
            ("src/lib.rs:13", "SN002"),
            ("src/lib.rs:16", "SN003"),
            ("src/lib.rs:17", "SN003"),
        ],
        "findings:\n{}",
        render_human(&findings)
    );
    assert!(findings.iter().all(|d| d.is_error()));
}

#[test]
fn every_rule_fires_in_the_fixture() {
    let findings = lint_workspace(&fixture_root()).expect("fixture tree is readable");
    let mut codes: Vec<&str> = findings.iter().map(|d| d.code).collect();
    codes.sort_unstable();
    codes.dedup();
    assert_eq!(
        codes,
        [
            "SN001", "SN002", "SN003", "SN004", "SN005", "SN006", "SN007", "SN008", "SN009",
            "SN010", "SN011", "SN012"
        ]
    );
}

#[test]
fn comments_strings_and_scoping_exemptions_hold() {
    let findings = lint_workspace(&fixture_root()).expect("fixture tree is readable");
    // The allow-marked ProfClock-style Instant field (line 30), the
    // `InstantLike` identifiers (lines 33/35), the allow-marked unwrap
    // (line 41), and the test-module unwrap must not be reported — nor may
    // the `/* Instant */` block comment, the `r#"HashMap"#` raw string, or
    // the `"println!("` string literal at the bottom of the root file.
    assert_eq!(
        findings
            .iter()
            .filter(|d| d.location.starts_with("src/lib.rs"))
            .filter(|d| {
                let line: usize = d.location.rsplit_once(':').unwrap().1.parse().unwrap();
                line > 17
            })
            .count(),
        0,
        "nothing after root line 17 may fire:\n{}",
        render_human(&findings)
    );
    // Front-end scoping: the root package's println! is exempt from SN005.
    assert!(!findings
        .iter()
        .any(|d| d.code == "SN005" && d.location.starts_with("src/lib.rs")));
    // The clean twins in the sim crate stay silent: exactly one finding
    // per new rule.
    for code in ["SN006", "SN007", "SN008", "SN009", "SN010", "SN011"] {
        assert_eq!(
            findings.iter().filter(|d| d.code == code).count(),
            1,
            "{code} must fire exactly once"
        );
    }
    // The allow-marked external dep in the fixture manifest stays clean.
    assert_eq!(findings.iter().filter(|d| d.code == "SN012").count(), 2);
}

#[test]
fn a_sourceless_root_is_an_error_not_a_clean_scan() {
    // A mistyped --root must not read as "no findings".
    let err = lint_workspace(Path::new("/nonexistent-starnuma-root")).expect_err("must fail");
    assert!(err.to_string().contains("no Rust sources"), "got: {err}");
}

#[test]
fn renderers_cover_every_finding() {
    let findings = lint_workspace(&fixture_root()).expect("fixture tree is readable");
    let human = render_human(&findings);
    assert!(human.contains("18 finding(s)"), "summary in: {human}");
    assert!(human.contains("error[SN004]"));
    assert!(human.contains("error[SN012]"));
    let json = render_json(&findings);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert_eq!(json.matches("\"code\"").count(), 18);
}

#[test]
fn a_baseline_built_from_the_fixture_suppresses_it_completely() {
    let findings = lint_workspace(&fixture_root()).expect("fixture tree is readable");
    let baseline = Baseline::from_findings(&findings);
    let (remaining, suppressed) = baseline.apply(findings);
    assert!(remaining.is_empty());
    assert_eq!(suppressed.len(), 18);
}
