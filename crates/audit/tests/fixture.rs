//! End-to-end scan of the deliberately dirty fixture tree under
//! `tests/fixture_ws` (which carries no `Cargo.toml`, so cargo never
//! compiles it — the scanner sees it purely as text).

use std::path::Path;

use starnuma_audit::{lint_workspace, render_human, render_json};

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixture_ws")
}

#[test]
fn fixture_violations_are_found_with_exact_codes() {
    let findings = lint_workspace(&fixture_root()).expect("fixture tree is readable");
    let codes: Vec<&str> = findings.iter().map(|d| d.code).collect();
    assert_eq!(
        codes,
        [
            "SN001", "SN002", "SN002", "SN002", "SN002", "SN003", "SN003", "SN005", "SN004",
            "SN004"
        ],
        "findings:\n{}",
        render_human(&findings)
    );
    assert!(findings.iter().all(|d| d.is_error()));
    assert!(
        findings[0].location.ends_with("lib.rs:5"),
        "unwrap flagged at {}",
        findings[0].location
    );
}

#[test]
fn allow_marker_and_test_module_are_exempt() {
    let findings = lint_workspace(&fixture_root()).expect("fixture tree is readable");
    // The allow-marked ProfClock-style Instant field (line 30), the
    // `InstantLike` identifiers (lines 33/35), the allow-marked unwrap
    // (line 41), and the test-module unwrap (line 53) must not be
    // reported.
    for exempt in [":30", ":33", ":35", ":41", ":53"] {
        assert!(
            !findings.iter().any(|d| d.location.ends_with(exempt)),
            "line {exempt} should be exempt"
        );
    }
}

#[test]
fn a_sourceless_root_is_an_error_not_a_clean_scan() {
    // A mistyped --root must not read as "no findings".
    let err = lint_workspace(Path::new("/nonexistent-starnuma-root")).expect_err("must fail");
    assert!(err.to_string().contains("no Rust sources"), "got: {err}");
}

#[test]
fn renderers_cover_every_finding() {
    let findings = lint_workspace(&fixture_root()).expect("fixture tree is readable");
    let human = render_human(&findings);
    assert!(human.contains("10 finding(s)"), "summary in: {human}");
    assert!(human.contains("error[SN004]"));
    assert!(human.contains("error[SN005]"));
    let json = render_json(&findings);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert_eq!(json.matches("\"code\"").count(), 10);
}
