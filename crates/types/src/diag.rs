//! Structured diagnostics shared by the audit scanner and model validators.
//!
//! Both static-analysis passes report through one [`Diagnostic`] shape: a
//! stable `SNxxx` code, a severity, a location (file:line for source lints,
//! a parameter path for model checks), a human message, and a fix hint.
//! Returning these instead of panicking lets callers surface *every*
//! problem with a configuration before a run starts, render them for
//! humans or machines, and test for exact codes.
//!
//! # Examples
//!
//! ```
//! use starnuma_types::{Diagnostic, Severity};
//!
//! let d = Diagnostic::error(
//!     "SN101",
//!     "SystemParams.mem_base",
//!     "local memory latency must be positive",
//!     "set mem_base to a positive nanosecond value (paper Table I: 80 ns)",
//! );
//! assert_eq!(d.code, "SN101");
//! assert_eq!(d.severity, Severity::Error);
//! assert!(d.to_string().contains("SN101"));
//! ```

use core::fmt;

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Suspicious but not necessarily wrong; does not fail validation.
    Warning,
    /// The model or source violates an invariant; fails validation.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding from a lint pass or a model validator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable rule code (`SN001`–`SN004` source lints, `SN1xx` model checks).
    pub code: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Where: `path/to/file.rs:line` or a parameter path like
    /// `RunConfig.pool_capacity_frac`.
    pub location: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    pub fn error(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
            hint: hint.into(),
        }
    }

    /// Creates a warning-severity diagnostic.
    pub fn warning(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            location: location.into(),
            message: message.into(),
            hint: hint.into(),
        }
    }

    /// Whether this finding fails validation.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Renders the diagnostic as one JSON object (no external serializer).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"location\":\"{}\",\"message\":\"{}\",\"hint\":\"{}\"}}",
            json_escape(self.code),
            self.severity,
            json_escape(&self.location),
            json_escape(&self.message),
            json_escape(&self.hint),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}\n  hint: {}",
            self.severity, self.code, self.location, self.message, self.hint
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_code_location_and_hint() {
        let d = Diagnostic::error(
            "SN103",
            "PolicyConfig.hi_min",
            "hi_min > hi_init",
            "lower hi_min",
        );
        let s = d.to_string();
        assert!(s.contains("error[SN103]"));
        assert!(s.contains("PolicyConfig.hi_min"));
        assert!(s.contains("hint: lower hi_min"));
    }

    #[test]
    fn warnings_do_not_fail_validation() {
        let w = Diagnostic::warning("SN105", "x", "m", "h");
        assert!(!w.is_error());
        assert!(Diagnostic::error("SN105", "x", "m", "h").is_error());
    }

    #[test]
    fn json_is_escaped() {
        let d = Diagnostic::error("SN001", "a\"b", "line\nbreak", "tab\there");
        let j = d.to_json();
        assert!(j.contains("a\\\"b"));
        assert!(j.contains("line\\nbreak"));
        assert!(j.contains("tab\\there"));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn severity_orders_warning_below_error() {
        assert!(Severity::Warning < Severity::Error);
    }
}
