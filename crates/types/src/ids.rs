//! Identifier newtypes: sockets, chassis, cores, pages, regions, addresses.

use core::fmt;

use crate::{BLOCK_SIZE, PAGE_SIZE, REGION_PAGES, SOCKETS_PER_CHASSIS};

/// Identifies one CPU socket in the multi-socket system.
///
/// Sockets are numbered `0..num_sockets`; socket `s` belongs to chassis
/// `s / 4` (see [`SocketId::chassis`]).
///
/// # Examples
///
/// ```
/// use starnuma_types::SocketId;
/// let s = SocketId::new(7);
/// assert_eq!(s.index(), 7);
/// assert_eq!(s.chassis().index(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SocketId(u16);

impl SocketId {
    /// Creates a socket identifier from its index.
    pub const fn new(index: u16) -> Self {
        SocketId(index)
    }

    /// Returns the zero-based socket index.
    pub const fn index(self) -> u16 {
        self.0
    }

    /// Returns the chassis this socket belongs to (four sockets per chassis).
    pub const fn chassis(self) -> ChassisId {
        // audit:allow(SN009) socket index / 4 fits u8: validated topologies stay far below 1024.
        ChassisId((self.0 as usize / SOCKETS_PER_CHASSIS) as u8)
    }

    /// Returns `true` if `self` and `other` live in the same chassis.
    pub const fn same_chassis(self, other: SocketId) -> bool {
        self.chassis().0 == other.chassis().0
    }

    /// Iterates over all sockets of an `n`-socket system.
    pub fn all(n: usize) -> impl Iterator<Item = SocketId> {
        (0..u16::try_from(n).unwrap_or(u16::MAX)).map(SocketId)
    }
}

impl fmt::Debug for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "socket {}", self.0)
    }
}

impl From<SocketId> for usize {
    fn from(s: SocketId) -> usize {
        s.0 as usize
    }
}

/// Identifies one four-socket chassis.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChassisId(u8);

impl ChassisId {
    /// Creates a chassis identifier from its index.
    pub const fn new(index: u8) -> Self {
        ChassisId(index)
    }

    /// Returns the zero-based chassis index.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Returns the sockets housed in this chassis.
    pub fn sockets(self) -> impl Iterator<Item = SocketId> {
        // audit:allow(SN009) SOCKETS_PER_CHASSIS is the constant 4.
        let per = SOCKETS_PER_CHASSIS as u16;
        let base = u16::from(self.0) * per;
        (base..base + per).map(SocketId)
    }
}

impl fmt::Debug for ChassisId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for ChassisId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chassis {}", self.0)
    }
}

/// Identifies one core, globally across the system.
///
/// Core `c` of an `k`-cores-per-socket system belongs to socket `c / k`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(u32);

impl CoreId {
    /// Creates a core identifier from its global index.
    pub const fn new(index: u32) -> Self {
        CoreId(index)
    }

    /// Returns the zero-based global core index.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the socket this core belongs to, given `cores_per_socket`.
    pub const fn socket(self, cores_per_socket: usize) -> SocketId {
        // audit:allow(SN009) core/cores-per-socket is a socket index, always far below 2^16.
        SocketId((self.0 as usize / cores_per_socket) as u16)
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core {}", self.0)
    }
}

/// A physical byte address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte address.
    pub const fn new(addr: u64) -> Self {
        PhysAddr(addr)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the 4 KiB page containing this address.
    pub const fn page(self) -> PageId {
        PageId(self.0 / PAGE_SIZE as u64)
    }

    /// Returns the 64 B cache block containing this address.
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 / BLOCK_SIZE as u64)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(a: u64) -> Self {
        PhysAddr(a)
    }
}

/// Identifies one 4 KiB page (a page frame number).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page identifier from a page frame number.
    pub const fn new(pfn: u64) -> Self {
        PageId(pfn)
    }

    /// Returns the page frame number.
    pub const fn pfn(self) -> u64 {
        self.0
    }

    /// Returns the monitored 512 KiB region containing this page.
    pub const fn region(self) -> RegionId {
        RegionId(self.0 / REGION_PAGES as u64)
    }

    /// Returns the base physical address of this page.
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 * PAGE_SIZE as u64)
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page{:#x}", self.0)
    }
}

/// Identifies one 512 KiB monitored region (128 consecutive pages, §IV-C).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegionId(u64);

impl RegionId {
    /// Creates a region identifier from its index.
    pub const fn new(index: u64) -> Self {
        RegionId(index)
    }

    /// Returns the zero-based region index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the first page of this region.
    pub const fn first_page(self) -> PageId {
        PageId(self.0 * REGION_PAGES as u64)
    }

    /// Iterates over the 128 pages of this region.
    pub fn pages(self) -> impl Iterator<Item = PageId> {
        let base = self.0 * REGION_PAGES as u64;
        (base..base + REGION_PAGES as u64).map(PageId)
    }
}

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{:#x}", self.0)
    }
}

/// Identifies one 64 B cache block (a block frame number).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a block frame number.
    pub const fn new(bfn: u64) -> Self {
        BlockAddr(bfn)
    }

    /// Returns the block frame number.
    pub const fn bfn(self) -> u64 {
        self.0
    }

    /// Returns the page containing this block.
    pub const fn page(self) -> PageId {
        PageId(self.0 * BLOCK_SIZE as u64 / PAGE_SIZE as u64)
    }

    /// Returns the base physical address of this block.
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 * BLOCK_SIZE as u64)
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block{:#x}", self.0)
    }
}

/// Where a page (or a block's home) physically lives: a socket's local DRAM
/// or the CXL memory pool.
///
/// This is the central placement type of the reproduction: migration
/// decisions produce a `Location`, routing consumes one.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Location {
    /// The local DRAM of the given socket.
    Socket(SocketId),
    /// The CXL-attached shared memory pool.
    Pool,
}

impl Location {
    /// Returns the socket if this location is socket-attached memory.
    pub fn socket(self) -> Option<SocketId> {
        match self {
            Location::Socket(s) => Some(s),
            Location::Pool => None,
        }
    }

    /// Returns `true` if this location is the memory pool.
    pub const fn is_pool(self) -> bool {
        matches!(self, Location::Pool)
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Socket(s) => write!(f, "{s}"),
            Location::Pool => write!(f, "memory pool"),
        }
    }
}

impl From<SocketId> for Location {
    fn from(s: SocketId) -> Self {
        Location::Socket(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_chassis_mapping() {
        assert_eq!(SocketId::new(0).chassis(), ChassisId::new(0));
        assert_eq!(SocketId::new(3).chassis(), ChassisId::new(0));
        assert_eq!(SocketId::new(4).chassis(), ChassisId::new(1));
        assert_eq!(SocketId::new(15).chassis(), ChassisId::new(3));
        assert!(SocketId::new(1).same_chassis(SocketId::new(2)));
        assert!(!SocketId::new(3).same_chassis(SocketId::new(4)));
    }

    #[test]
    fn chassis_sockets_roundtrip() {
        for c in 0..4u8 {
            for s in ChassisId::new(c).sockets() {
                assert_eq!(s.chassis(), ChassisId::new(c));
            }
        }
        assert_eq!(ChassisId::new(2).sockets().count(), 4);
    }

    #[test]
    fn core_to_socket() {
        assert_eq!(CoreId::new(0).socket(4), SocketId::new(0));
        assert_eq!(CoreId::new(7).socket(4), SocketId::new(1));
        assert_eq!(CoreId::new(63).socket(4), SocketId::new(15));
        assert_eq!(CoreId::new(27).socket(28), SocketId::new(0));
    }

    #[test]
    fn addr_page_block_region() {
        let a = PhysAddr::new(2 * 4096 + 100);
        assert_eq!(a.page(), PageId::new(2));
        assert_eq!(a.block(), BlockAddr::new((2 * 4096 + 100) / 64));
        assert_eq!(a.block().page(), PageId::new(2));
        assert_eq!(PageId::new(127).region(), RegionId::new(0));
        assert_eq!(PageId::new(128).region(), RegionId::new(1));
        assert_eq!(RegionId::new(3).first_page(), PageId::new(384));
        assert_eq!(RegionId::new(1).pages().count(), 128);
        for p in RegionId::new(5).pages() {
            assert_eq!(p.region(), RegionId::new(5));
        }
    }

    #[test]
    fn page_base_addr_roundtrip() {
        let p = PageId::new(42);
        assert_eq!(p.base_addr().page(), p);
        let b = BlockAddr::new(1000);
        assert_eq!(b.base_addr().block(), b);
    }

    #[test]
    fn location_helpers() {
        let l = Location::Socket(SocketId::new(3));
        assert_eq!(l.socket(), Some(SocketId::new(3)));
        assert!(!l.is_pool());
        assert!(Location::Pool.is_pool());
        assert_eq!(Location::Pool.socket(), None);
        assert_eq!(
            Location::from(SocketId::new(1)),
            Location::Socket(SocketId::new(1))
        );
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert_eq!(format!("{:?}", SocketId::new(2)), "S2");
        assert_eq!(format!("{}", Location::Pool), "memory pool");
        assert!(!format!("{:?}", PageId::new(0)).is_empty());
        assert!(!format!("{:?}", PhysAddr::new(0)).is_empty());
    }

    #[test]
    fn socket_all_iterates() {
        let all: Vec<_> = SocketId::all(16).collect();
        assert_eq!(all.len(), 16);
        assert_eq!(all[0], SocketId::new(0));
        assert_eq!(all[15], SocketId::new(15));
    }
}
