//! Memory-access records: the unit of work flowing through the simulator.

use core::fmt;

use crate::{CoreId, PhysAddr};

/// Whether a memory operation reads or writes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessType {
    /// A load (read) operation.
    Read,
    /// A store (write) operation.
    Write,
}

impl AccessType {
    /// Returns `true` for [`AccessType::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessType::Write)
    }
}

impl fmt::Display for AccessType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessType::Read => f.write_str("read"),
            AccessType::Write => f.write_str("write"),
        }
    }
}

/// One memory access in a trace: which core touched which address, tagged
/// with the issuing core's dynamic instruction count (paper §IV-A1).
///
/// # Examples
///
/// ```
/// use starnuma_types::{AccessType, CoreId, MemAccess, PhysAddr};
///
/// let a = MemAccess::new(CoreId::new(3), PhysAddr::new(0x1000), AccessType::Write, 42);
/// assert!(a.kind.is_write());
/// assert_eq!(a.icount, 42);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemAccess {
    /// The core that issued the access.
    pub core: CoreId,
    /// The physical address touched.
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: AccessType,
    /// The issuing core's dynamic instruction count at the time of the access.
    pub icount: u64,
}

impl MemAccess {
    /// Creates a memory access record.
    pub const fn new(core: CoreId, addr: PhysAddr, kind: AccessType, icount: u64) -> Self {
        MemAccess {
            core,
            addr,
            kind,
            icount,
        }
    }
}

/// A read/write mixture expressed as the fraction of accesses that are reads.
///
/// # Examples
///
/// ```
/// use starnuma_types::RwMix;
/// let mix = RwMix::new(0.5);
/// assert_eq!(mix.read_fraction(), 0.5);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct RwMix(f64);

impl RwMix {
    /// All accesses are reads.
    pub const READ_ONLY: RwMix = RwMix(1.0);

    /// Creates a mix from the fraction of reads in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `read_fraction` is outside `[0, 1]`.
    pub fn new(read_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&read_fraction),
            "read fraction must be in [0, 1], got {read_fraction}"
        );
        RwMix(read_fraction)
    }

    /// Returns the fraction of accesses that are reads.
    pub const fn read_fraction(self) -> f64 {
        self.0
    }

    /// Returns the fraction of accesses that are writes.
    pub fn write_fraction(self) -> f64 {
        1.0 - self.0
    }
}

impl Default for RwMix {
    /// Defaults to a 2:1 read:write mix, typical of the paper's workloads.
    fn default() -> Self {
        RwMix(2.0 / 3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_type_predicates() {
        assert!(AccessType::Write.is_write());
        assert!(!AccessType::Read.is_write());
        assert_eq!(AccessType::Read.to_string(), "read");
    }

    #[test]
    fn mem_access_fields() {
        let a = MemAccess::new(CoreId::new(1), PhysAddr::new(64), AccessType::Read, 7);
        assert_eq!(a.core, CoreId::new(1));
        assert_eq!(a.addr.raw(), 64);
        assert_eq!(a.icount, 7);
    }

    #[test]
    fn rw_mix_fractions() {
        let m = RwMix::new(0.75);
        assert!((m.read_fraction() - 0.75).abs() < 1e-12);
        assert!((m.write_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(RwMix::READ_ONLY.write_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "read fraction must be in [0, 1]")]
    fn rw_mix_rejects_out_of_range() {
        let _ = RwMix::new(1.5);
    }
}
