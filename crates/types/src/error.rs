//! Error types shared across the workspace.

use core::fmt;
use std::error::Error;

/// Returned when a system or experiment configuration is invalid.
///
/// # Examples
///
/// ```
/// use starnuma_types::ConfigError;
/// let err = ConfigError::new("socket count must be a multiple of 4");
/// assert!(err.to_string().contains("multiple of 4"));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    /// Returns the error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("boom");
        assert_eq!(e.to_string(), "invalid configuration: boom");
        assert_eq!(e.message(), "boom");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
