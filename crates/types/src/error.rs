//! Error types shared across the workspace.

use core::fmt;
use std::error::Error;

/// Returned when a system or experiment configuration is invalid.
///
/// # Examples
///
/// ```
/// use starnuma_types::ConfigError;
/// let err = ConfigError::new("socket count must be a multiple of 4");
/// assert!(err.to_string().contains("multiple of 4"));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }

    /// Returns the error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

/// The workspace-wide error type: everything a library entry point can
/// return instead of panicking.
///
/// # Examples
///
/// ```
/// use starnuma_types::{ConfigError, StarNumaError};
///
/// let e: StarNumaError = ConfigError::new("bad socket count").into();
/// assert!(e.to_string().contains("bad socket count"));
/// ```
#[derive(Clone, PartialEq, Debug)]
pub enum StarNumaError {
    /// A configuration value is malformed (shape-level problem).
    Config(ConfigError),
    /// Model validation found physically inconsistent parameters; each
    /// diagnostic carries its `SNxxx` code, location, and fix hint.
    InvalidModel(Vec<crate::Diagnostic>),
    /// An I/O operation (trace files, source scanning) failed.
    Io(String),
}

impl StarNumaError {
    /// The validation diagnostics, if this is an [`StarNumaError::InvalidModel`].
    pub fn diagnostics(&self) -> &[crate::Diagnostic] {
        match self {
            StarNumaError::InvalidModel(d) => d,
            _ => &[],
        }
    }
}

impl fmt::Display for StarNumaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StarNumaError::Config(e) => write!(f, "{e}"),
            StarNumaError::InvalidModel(diags) => {
                write!(f, "model validation failed ({} finding(s))", diags.len())?;
                for d in diags {
                    write!(f, "\n{d}")?;
                }
                Ok(())
            }
            StarNumaError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl Error for StarNumaError {}

impl From<ConfigError> for StarNumaError {
    fn from(e: ConfigError) -> Self {
        StarNumaError::Config(e)
    }
}

impl From<std::io::Error> for StarNumaError {
    fn from(e: std::io::Error) -> Self {
        StarNumaError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Diagnostic;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("boom");
        assert_eq!(e.to_string(), "invalid configuration: boom");
        assert_eq!(e.message(), "boom");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
        assert_send_sync::<StarNumaError>();
    }

    #[test]
    fn invalid_model_lists_every_diagnostic() {
        let e = StarNumaError::InvalidModel(vec![
            Diagnostic::error("SN101", "a", "m1", "h1"),
            Diagnostic::error("SN102", "b", "m2", "h2"),
        ]);
        let s = e.to_string();
        assert!(s.contains("2 finding(s)"));
        assert!(s.contains("SN101") && s.contains("SN102"));
        assert_eq!(e.diagnostics().len(), 2);
    }

    #[test]
    fn config_error_converts() {
        let e: StarNumaError = ConfigError::new("x").into();
        assert!(matches!(e, StarNumaError::Config(_)));
        assert!(e.diagnostics().is_empty());
    }
}
