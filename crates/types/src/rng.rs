//! Deterministic, dependency-free pseudo-random number generation.
//!
//! Every stochastic choice in the workspace (trace sampling, migration
//! tie-breaking, benchmark address streams) draws from [`SimRng`], a
//! xoshiro256** generator seeded through SplitMix64. Keeping the generator
//! in-repo guarantees two things the reproduction depends on:
//!
//! 1. **Offline builds** — no external registry dependency;
//! 2. **Bit-stable streams** — the sequence for a given seed is frozen by
//!    this file, not by a third-party crate's version bump, so every figure
//!    regenerates identically forever.
//!
//! # Examples
//!
//! ```
//! use starnuma_types::SimRng;
//!
//! let mut a = SimRng::seed_from_u64(42);
//! let mut b = SimRng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(0usize..10);
//! assert!(x < 10);
//! ```

/// SplitMix64 step: the recommended seeder for xoshiro state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small, fast, deterministic PRNG (xoshiro256**, SplitMix64-seeded).
///
/// Not cryptographically secure — it exists purely to make simulations
/// reproducible. Cloning captures the full state, so a cloned generator
/// replays the identical stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Builds a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 raw bits (the high half of [`SimRng::next_u64`]).
    pub fn gen_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform value in `range`. Empty ranges yield the range's start.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform in `[0, span)` by rejection sampling (unbiased); `span` must
    /// be nonzero (callers guard via the range impls).
    fn bounded(&mut self, span: u64) -> u64 {
        // Reject draws from the tail zone that would bias the modulus.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % span;
            }
        }
    }
}

/// Ranges [`SimRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut SimRng) -> Self::Output;
}

impl SampleRange for core::ops::Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SimRng) -> usize {
        if self.end <= self.start {
            return self.start;
        }
        self.start + rng.bounded((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for core::ops::Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SimRng) -> u64 {
        if self.end <= self.start {
            return self.start;
        }
        self.start + rng.bounded(self.end - self.start)
    }
}

impl SampleRange for core::ops::Range<u32> {
    type Output = u32;
    fn sample(self, rng: &mut SimRng) -> u32 {
        if self.end <= self.start {
            return self.start;
        }
        self.start + rng.bounded(u64::from(self.end - self.start)) as u32
    }
}

impl SampleRange for core::ops::Range<u16> {
    type Output = u16;
    fn sample(self, rng: &mut SimRng) -> u16 {
        if self.end <= self.start {
            return self.start;
        }
        self.start + rng.bounded(u64::from(self.end - self.start)) as u16
    }
}

impl SampleRange for core::ops::RangeInclusive<u16> {
    type Output = u16;
    fn sample(self, rng: &mut SimRng) -> u16 {
        let (start, end) = (*self.start(), *self.end());
        if end <= start {
            return start;
        }
        start + rng.bounded(u64::from(end - start) + 1) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut r = SimRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SimRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(2u16..=5);
            assert!((2..=5).contains(&y));
            let z = r.gen_range(0u64..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SimRng::seed_from_u64(6);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "every bucket hit: {seen:?}");
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // empty ranges are the point here
    fn empty_range_returns_start() {
        let mut r = SimRng::seed_from_u64(8);
        assert_eq!(r.gen_range(5usize..5), 5);
        assert_eq!(r.gen_range(9u16..=8), 9);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SimRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn reference_vector() {
        // Frozen first outputs for seed 0: any change to the algorithm
        // breaks every regenerated figure, so lock the stream down.
        let mut r = SimRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut again = SimRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }
}
