//! Deterministic hot-path indexes: [`DetMap`], an open-addressing hash map
//! with a **fixed, in-repo seed**.
//!
//! PR 1 replaced every `std::collections::HashMap` on the simulator's
//! per-access paths with `BTreeMap` to make iteration order (and therefore
//! every `RunResult`) reproducible. That bought determinism at O(log n) per
//! lookup with pointer-chasing node traversals — the dominant cost of the
//! TLB-annex, coherence-directory, and in-flight-timing lookups. `DetMap`
//! buys the speed back without reopening the determinism hole:
//!
//! * **Fixed seed, in-repo hash.** The hash is a SplitMix64-style finalizer
//!   (the same mixer that seeds the workspace's xoshiro256** [`SimRng`])
//!   over `key ^ HASH_SEED`, where [`HASH_SEED`] is itself the first output
//!   of the frozen xoshiro stream. No `RandomState`, no per-process
//!   randomness: the table layout for a given insert sequence is identical
//!   on every run and platform.
//! * **Insertion-order iteration.** Entries live in a dense vector in
//!   arrival order (indexmap-style); the probe table stores indices into
//!   it. Iteration never depends on hash values, so even *if* a future
//!   change iterates a hot map, the order is a pure function of the
//!   simulated events.
//! * **[`DetMap::sorted_drain`]** for phase barriers: merges that must be
//!   order-canonical (not arrival-ordered) drain through a key-sorted
//!   `Vec`, mirroring what the BTreeMap-era code got for free.
//!
//! Keys implement [`DetKey`] — a total injection into `u64` — which every
//! workspace identifier newtype provides.
//!
//! # Examples
//!
//! ```
//! use starnuma_types::{DetMap, PageId};
//!
//! let mut m: DetMap<PageId, u32> = DetMap::new();
//! m.insert(PageId::new(7), 1);
//! m.insert(PageId::new(3), 2);
//! assert_eq!(m.get(&PageId::new(7)), Some(&1));
//! // Iteration is insertion-ordered, independent of hash layout.
//! let keys: Vec<_> = m.iter().map(|(k, _)| *k).collect();
//! assert_eq!(keys, vec![PageId::new(7), PageId::new(3)]);
//! // Phase-barrier merges drain key-sorted.
//! assert_eq!(m.sorted_drain()[0].0, PageId::new(3));
//! ```

use crate::ids::{BlockAddr, ChassisId, CoreId, PageId, PhysAddr, RegionId, SocketId};

/// Fixed hash seed: the first `next_u64()` of the workspace xoshiro256**
/// stream for seed `0x5744_524e` (`"WDRN"`, verified against [`SimRng`] by
/// a unit test). Frozen here so table layouts never vary across runs,
/// builds, or platforms.
///
/// [`SimRng`]: crate::SimRng
const HASH_SEED: u64 = 0x2341_eb2b_6958_564c;

/// Probe-table marker: slot never used.
const EMPTY: u32 = u32::MAX;
/// Probe-table marker: slot's entry was removed (probing continues past it).
const TOMB: u32 = u32::MAX - 1;

/// SplitMix64 finalizer over the seeded key: the avalanche stage of the
/// mixer that seeds [`crate::SimRng`], reused as a fixed hash function.
#[inline]
fn mix(key: u64) -> u64 {
    let mut z = key ^ HASH_SEED;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A key usable in a [`DetMap`]: totally ordered (for
/// [`DetMap::sorted_drain`]) and injectively convertible to `u64` (for
/// hashing). Distinct keys **must** produce distinct `u64`s; every
/// workspace identifier is a thin integer newtype, so the conversion is
/// the identity on its payload.
pub trait DetKey: Copy + Eq + Ord {
    /// This key's unique 64-bit representation.
    fn det_key(&self) -> u64;
}

impl DetKey for u64 {
    fn det_key(&self) -> u64 {
        *self
    }
}

impl DetKey for u32 {
    fn det_key(&self) -> u64 {
        u64::from(*self)
    }
}

impl DetKey for u16 {
    fn det_key(&self) -> u64 {
        u64::from(*self)
    }
}

impl DetKey for usize {
    fn det_key(&self) -> u64 {
        *self as u64
    }
}

impl DetKey for PageId {
    fn det_key(&self) -> u64 {
        self.pfn()
    }
}

impl DetKey for BlockAddr {
    fn det_key(&self) -> u64 {
        self.bfn()
    }
}

impl DetKey for RegionId {
    fn det_key(&self) -> u64 {
        self.index()
    }
}

impl DetKey for PhysAddr {
    fn det_key(&self) -> u64 {
        self.raw()
    }
}

impl DetKey for SocketId {
    fn det_key(&self) -> u64 {
        u64::from(self.index())
    }
}

impl DetKey for CoreId {
    fn det_key(&self) -> u64 {
        u64::from(self.index())
    }
}

impl DetKey for ChassisId {
    fn det_key(&self) -> u64 {
        u64::from(self.index())
    }
}

/// A deterministic open-addressing hash map with insertion-order iteration.
///
/// See the [module docs](self) for the design contract. Not a drop-in
/// `HashMap` replacement: the API is the subset the simulator's hot paths
/// use, and keys must implement [`DetKey`].
#[derive(Clone, Debug)]
pub struct DetMap<K, V> {
    /// Entries in insertion order; `None` marks a removed entry awaiting
    /// compaction. Probe-table slots index into this vector.
    dense: Vec<Option<(K, V)>>,
    /// Power-of-two linear-probe table of dense indices ([`EMPTY`]/[`TOMB`]
    /// markers in the high values).
    table: Vec<u32>,
    /// Live entries.
    live: usize,
    /// Tombstoned dense entries (compacted when they outnumber the living).
    dead: usize,
    /// Tombstoned probe slots (cleared on rebuild).
    table_tombs: usize,
}

impl<K, V> Default for DetMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> DetMap<K, V> {
    /// Creates an empty map (no allocation until the first insert).
    pub fn new() -> Self {
        DetMap {
            dense: Vec::new(),
            table: Vec::new(),
            live: 0,
            dead: 0,
            table_tombs: 0,
        }
    }
}

impl<K: DetKey, V> DetMap<K, V> {
    /// Creates an empty map pre-sized for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut m = Self::new();
        if capacity > 0 {
            m.dense.reserve(capacity);
            m.rebuild(Self::table_len_for(capacity));
        }
        m
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Smallest power-of-two table length keeping load factor ≤ 3/4 for
    /// `entries` live entries (minimum 8).
    fn table_len_for(entries: usize) -> usize {
        let needed = entries.saturating_mul(4) / 3 + 1;
        needed.next_power_of_two().max(8)
    }

    /// Finds `key`'s `(probe slot, dense index)` if present.
    #[inline]
    fn find(&self, key: &K) -> Option<(usize, usize)> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut i = (mix(key.det_key()) as usize) & mask;
        loop {
            match self.table[i] {
                x if x == EMPTY => return None,
                x if x == TOMB => {}
                x => {
                    let d = x as usize;
                    if let Some((k, _)) = &self.dense[d] {
                        if k == key {
                            return Some((i, d));
                        }
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Grows/rebuilds ahead of an insert so the table never exceeds a 3/4
    /// load factor (live entries plus probe tombstones).
    fn reserve_one(&mut self) {
        if (self.live + self.table_tombs + 1) * 4 > self.table.len() * 3 {
            self.rebuild(Self::table_len_for((self.live + 1) * 2));
        }
    }

    /// Compacts the dense vector (dropping tombstones, preserving insertion
    /// order) and re-probes every live entry into a fresh table of
    /// `table_len` slots.
    fn rebuild(&mut self, table_len: usize) {
        if self.dead > 0 {
            self.dense.retain(Option::is_some);
            self.dead = 0;
        }
        self.table.clear();
        self.table.resize(table_len, EMPTY);
        self.table_tombs = 0;
        let mask = table_len - 1;
        for (d, e) in self.dense.iter().enumerate() {
            let Some((k, _)) = e else { continue };
            let mut i = (mix(k.det_key()) as usize) & mask;
            while self.table[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.table[i] = d as u32; // audit:allow(SN009) dense index, far below 2^32 entries.
        }
    }

    /// Returns a reference to the value stored for `key`.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        let (_, d) = self.find(key)?;
        match &self.dense[d] {
            Some((_, v)) => Some(v),
            None => None,
        }
    }

    /// Returns a mutable reference to the value stored for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let (_, d) = self.find(key)?;
        match &mut self.dense[d] {
            Some((_, v)) => Some(v),
            None => None,
        }
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `key → value`, returning the previous value if the key was
    /// already present.
    #[inline]
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if let Some((_, d)) = self.find(&key) {
            if let Some((_, v)) = &mut self.dense[d] {
                return Some(core::mem::replace(v, value));
            }
        }
        self.insert_fresh(key, value);
        None
    }

    /// Inserts a key known to be absent: probes to the first free slot
    /// (reusing a tombstone if one is hit first — safe because the key is
    /// not anywhere in the chain) and appends to the dense vector.
    fn insert_fresh(&mut self, key: K, value: V) {
        self.reserve_one();
        let mask = self.table.len() - 1;
        let mut i = (mix(key.det_key()) as usize) & mask;
        loop {
            match self.table[i] {
                x if x == EMPTY => {
                    // audit:allow(SN009) dense index, far below 2^32 entries.
                    self.table[i] = self.dense.len() as u32;
                    self.dense.push(Some((key, value)));
                    self.live += 1;
                    return;
                }
                x if x == TOMB => {
                    // audit:allow(SN009) dense index, far below 2^32 entries.
                    self.table[i] = self.dense.len() as u32;
                    self.dense.push(Some((key, value)));
                    self.table_tombs -= 1;
                    self.live += 1;
                    return;
                }
                _ => {}
            }
            i = (i + 1) & mask;
        }
    }

    /// Entry-or-default: the value for `key`, inserting `default()` first
    /// when absent (the `BTreeMap::entry(k).or_insert_with(f)` shape the
    /// hot paths use).
    #[inline]
    pub fn entry_or_insert_with<F: FnOnce() -> V>(&mut self, key: K, default: F) -> &mut V {
        let d = match self.find(&key) {
            Some((_, d)) => d,
            None => {
                self.insert_fresh(key, default());
                self.dense.len() - 1
            }
        };
        // A found/just-pushed dense slot is always live; the else arm is
        // unreachable but spelled out so library code stays panic-free.
        match &mut self.dense[d] {
            Some((_, v)) => v,
            None => unreachable!("DetMap probe resolved to a tombstone"),
        }
    }

    /// Removes `key`, returning its value if it was present. Removal never
    /// perturbs the insertion order of surviving entries.
    #[inline]
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (slot, d) = self.find(key)?;
        self.table[slot] = TOMB;
        self.table_tombs += 1;
        let (_, v) = self.dense[d].take()?;
        self.live -= 1;
        self.dead += 1;
        // Amortized compaction: dense tombstones never outnumber the
        // living by more than a small constant floor.
        if self.dead > self.live.max(8) {
            self.rebuild(self.table.len());
        }
        Some(v)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.dense
            .iter()
            .filter_map(|e| e.as_ref().map(|(k, v)| (k, v)))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Drains every entry, returned **sorted by key** — the canonical order
    /// for phase-barrier merges, independent of both hash layout and
    /// arrival order. The map is left empty but keeps its allocations.
    pub fn sorted_drain(&mut self) -> Vec<(K, V)> {
        let mut out: Vec<(K, V)> = self.dense.drain(..).flatten().collect();
        out.sort_by_key(|(k, _)| *k);
        self.table.fill(EMPTY);
        self.live = 0;
        self.dead = 0;
        self.table_tombs = 0;
        out
    }

    /// Removes every entry, keeping allocations.
    pub fn clear(&mut self) {
        self.dense.clear();
        self.table.fill(EMPTY);
        self.live = 0;
        self.dead = 0;
        self.table_tombs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn hash_seed_is_the_frozen_xoshiro_output() {
        assert_eq!(
            HASH_SEED,
            SimRng::seed_from_u64(0x5744_524e).next_u64(),
            "HASH_SEED must stay pinned to the frozen SimRng stream"
        );
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: DetMap<u64, String> = DetMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, "five".into()), None);
        assert_eq!(m.insert(5, "FIVE".into()), Some("five".into()));
        assert_eq!(m.get(&5).map(String::as_str), Some("FIVE"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(&5), Some("FIVE".into()));
        assert_eq!(m.remove(&5), None);
        assert!(m.is_empty());
    }

    #[test]
    fn entry_or_insert_with_matches_btree_entry_semantics() {
        let mut m: DetMap<u64, u32> = DetMap::new();
        *m.entry_or_insert_with(9, || 0) += 1;
        *m.entry_or_insert_with(9, || 0) += 1;
        assert_eq!(m.get(&9), Some(&2));
    }

    #[test]
    fn iteration_is_insertion_ordered_across_growth_and_removal() {
        let mut m: DetMap<u64, u64> = DetMap::new();
        for k in 0..100 {
            m.insert(k * 7919 % 1000, k);
        }
        m.remove(&(7919 % 1000));
        m.remove(&(50 * 7919 % 1000));
        let keys: Vec<u64> = m.keys().copied().collect();
        let expected: Vec<u64> = (0..100)
            .map(|k| k * 7919 % 1000)
            .filter(|k| *k != 7919 % 1000 && *k != 50 * 7919 % 1000)
            .collect();
        assert_eq!(keys, expected);
    }

    #[test]
    fn sorted_drain_is_key_ordered_and_empties() {
        let mut m: DetMap<u64, u64> = DetMap::new();
        for k in [9, 2, 7, 4, 0] {
            m.insert(k, k * 10);
        }
        let drained = m.sorted_drain();
        assert_eq!(drained, vec![(0, 0), (2, 20), (4, 40), (7, 70), (9, 90)]);
        assert!(m.is_empty());
        m.insert(1, 1);
        assert_eq!(m.get(&1), Some(&1));
    }

    #[test]
    fn clear_resets_but_map_stays_usable() {
        let mut m: DetMap<u64, u64> = DetMap::with_capacity(32);
        for k in 0..32 {
            m.insert(k, k);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&3), None);
        m.insert(3, 33);
        assert_eq!(m.get(&3), Some(&33));
    }

    #[test]
    fn heavy_churn_compacts_without_losing_entries() {
        let mut m: DetMap<u64, u64> = DetMap::new();
        for round in 0..50u64 {
            for k in 0..64 {
                m.insert(round * 64 + k, k);
            }
            for k in 0..63 {
                assert_eq!(m.remove(&(round * 64 + k)), Some(k));
            }
        }
        // One survivor per round, in insertion order.
        assert_eq!(m.len(), 50);
        let keys: Vec<u64> = m.keys().copied().collect();
        let expected: Vec<u64> = (0..50).map(|r| r * 64 + 63).collect();
        assert_eq!(keys, expected);
        // Dense storage was compacted: tombstones are bounded.
        assert!(m.dense.len() <= m.live * 2 + 16, "dense {}", m.dense.len());
    }

    #[test]
    fn id_newtypes_hash_injectively() {
        let mut m: DetMap<PageId, u8> = DetMap::new();
        m.insert(PageId::new(0), 0);
        m.insert(PageId::new(u64::MAX), 1);
        assert_eq!(m.get(&PageId::new(0)), Some(&0));
        assert_eq!(m.get(&PageId::new(u64::MAX)), Some(&1));
        assert_eq!(BlockAddr::new(42).det_key(), 42);
        assert_eq!(RegionId::new(9).det_key(), 9);
        assert_eq!(SocketId::new(3).det_key(), 3);
        assert_eq!(CoreId::new(5).det_key(), 5);
        assert_eq!(ChassisId::new(1).det_key(), 1);
        assert_eq!(PhysAddr::new(77).det_key(), 77);
        assert_eq!(7u16.det_key(), 7);
        assert_eq!(7u32.det_key(), 7);
        assert_eq!(7usize.det_key(), 7);
    }

    /// The PR-5 gate property: under an arbitrary SimRng-driven op
    /// sequence, `DetMap` is observationally equal to `BTreeMap` —
    /// insert/get/remove return values, length, membership, and the
    /// key-sorted drain all match.
    #[test]
    fn matches_btreemap_semantics_under_random_ops() {
        use std::collections::BTreeMap;
        let mut rng = SimRng::seed_from_u64(0xde7_3a9);
        for _case in 0..48 {
            let len = rng.gen_range(1usize..400);
            let mut det: DetMap<u64, u64> = DetMap::new();
            let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
            for step in 0..len {
                let key = rng.gen_range(0u64..64);
                match rng.gen_range(0u16..10) {
                    0..=4 => {
                        let v = step as u64;
                        assert_eq!(det.insert(key, v), reference.insert(key, v));
                    }
                    5..=6 => {
                        assert_eq!(det.remove(&key), reference.remove(&key));
                    }
                    7 => {
                        let v = *det.entry_or_insert_with(key, || 999);
                        assert_eq!(v, *reference.entry(key).or_insert(999));
                    }
                    8 => {
                        assert_eq!(det.get(&key), reference.get(&key));
                        assert_eq!(det.get_mut(&key), reference.get_mut(&key));
                    }
                    _ => {
                        assert_eq!(det.contains_key(&key), reference.contains_key(&key));
                    }
                }
                assert_eq!(det.len(), reference.len());
            }
            // Insertion-order iteration visits exactly the reference's
            // entries (order checked separately; membership here).
            assert_eq!(
                det.iter()
                    .map(|(k, v)| (*k, *v))
                    .collect::<BTreeMap<_, _>>(),
                reference
            );
            // sorted_drain equals the BTreeMap's natural order.
            let drained = det.sorted_drain();
            let expected: Vec<(u64, u64)> = reference.into_iter().collect();
            assert_eq!(drained, expected);
            assert!(det.is_empty());
        }
    }

    /// Layout determinism: two maps fed the same sequence are identical in
    /// iteration order regardless of spare capacity, and the same sequence
    /// hashed twice yields the same internal table.
    #[test]
    fn layout_is_a_pure_function_of_the_insert_sequence() {
        let build = |cap: usize| {
            let mut m: DetMap<u64, u64> = DetMap::with_capacity(cap);
            let mut rng = SimRng::seed_from_u64(0x1abe1);
            for _ in 0..300 {
                let k = rng.gen_range(0u64..120);
                if rng.gen_bool(0.3) {
                    m.remove(&k);
                } else {
                    m.insert(k, k);
                }
            }
            m.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        };
        assert_eq!(build(0), build(0));
        assert_eq!(build(0), build(1024), "spare capacity must not reorder");
    }
}
