//! Common vocabulary types for the StarNUMA reproduction.
//!
//! This crate defines the newtypes, identifiers, units, and access records
//! shared by every other crate in the workspace. Everything here is plain
//! data: `Copy` where possible, totally ordered where meaningful, and
//! convertible with the standard `From`/`TryFrom` traits.
//!
//! # Examples
//!
//! ```
//! use starnuma_types::{PhysAddr, PageId, RegionId, SocketId, PAGE_SIZE};
//!
//! let addr = PhysAddr::new(3 * PAGE_SIZE as u64 + 17);
//! assert_eq!(addr.page(), PageId::new(3));
//! assert_eq!(addr.page().region(), RegionId::new(0));
//! let socket = SocketId::new(5);
//! assert_eq!(socket.chassis().index(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod access;
mod diag;
mod digest;
mod error;
mod ids;
mod index;
mod rng;
mod units;

pub use access::{AccessType, MemAccess, RwMix};
pub use diag::{json_escape, Diagnostic, Severity};
pub use digest::{digest_hex, fnv1a, fnv1a_digest, parse_digest_hex, FNV_OFFSET, FNV_PRIME};
pub use error::{ConfigError, StarNumaError};
pub use ids::{BlockAddr, ChassisId, CoreId, Location, PageId, PhysAddr, RegionId, SocketId};
pub use index::{DetKey, DetMap};
pub use rng::{SampleRange, SimRng};
pub use units::{Bytes, Cycles, GbPerSec, Nanos, CORE_GHZ};

/// Size of a virtual-memory page in bytes (4 KiB, as in the paper).
pub const PAGE_SIZE: usize = 4096;

/// Size of a cache block in bytes (64 B, as in the paper).
pub const BLOCK_SIZE: usize = 64;

/// Number of consecutive 4 KiB pages per monitored region
/// (512 KiB regions, §IV-C of the paper).
pub const REGION_PAGES: usize = 128;

/// Number of sockets per chassis in the HPE Superdome FLEX-style topology.
pub const SOCKETS_PER_CHASSIS: usize = 4;
