//! FNV-1a digests and their hex rendering.
//!
//! The run ledger and the equivalence gates identify configurations and
//! results by a 64-bit FNV-1a hash over their `Debug` rendering (Debug
//! renders every float with shortest-roundtrip precision, so the digest is
//! bit-exact). JSON cannot carry a `u64` losslessly through an `f64`
//! number, so digests travel as `"0x..."` hex strings — the helpers here
//! keep the two representations in one place.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a hash. Start from [`FNV_OFFSET`]
/// (or a previous call's return value, to chain buffers).
///
/// # Examples
///
/// ```
/// use starnuma_types::{fnv1a, FNV_OFFSET};
/// let h = fnv1a(b"starnuma", FNV_OFFSET);
/// assert_eq!(h, fnv1a(b"numa", fnv1a(b"star", FNV_OFFSET)));
/// ```
pub fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Digest of a single buffer, starting from the offset basis.
pub fn fnv1a_digest(bytes: &[u8]) -> u64 {
    fnv1a(bytes, FNV_OFFSET)
}

/// Renders a digest as a fixed-width `0x`-prefixed hex string
/// (`"0x00000000000004d2"`).
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:#018x}")
}

/// Parses a digest rendered by [`digest_hex`]. Accepts any `0x`-prefixed
/// hex string up to 16 digits; returns `None` otherwise.
///
/// # Examples
///
/// ```
/// use starnuma_types::{digest_hex, parse_digest_hex};
/// assert_eq!(parse_digest_hex(&digest_hex(1234)), Some(1234));
/// assert_eq!(parse_digest_hex("1234"), None);
/// ```
pub fn parse_digest_hex(s: &str) -> Option<u64> {
    let hex = s.strip_prefix("0x")?;
    if hex.is_empty() || hex.len() > 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("") is the offset basis; FNV-1a("a") is a published vector.
        assert_eq!(fnv1a_digest(b""), FNV_OFFSET);
        assert_eq!(fnv1a_digest(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn hex_round_trips_extremes() {
        for v in [0u64, 1, u64::MAX, FNV_OFFSET] {
            assert_eq!(parse_digest_hex(&digest_hex(v)), Some(v));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_digest_hex(""), None);
        assert_eq!(parse_digest_hex("0x"), None);
        assert_eq!(parse_digest_hex("0xzz"), None);
        assert_eq!(parse_digest_hex("0x00000000000000000"), None);
    }
}
