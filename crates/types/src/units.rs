//! Physical units: time (cycles, nanoseconds), capacity, bandwidth.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Core clock frequency assumed throughout the reproduction (2.4 GHz,
/// Table I of the paper). Used to convert between [`Cycles`] and [`Nanos`].
pub const CORE_GHZ: f64 = 2.4;

/// A duration measured in core clock cycles at 2.4 GHz.
///
/// The discrete-event simulator's timebase.
///
/// # Examples
///
/// ```
/// use starnuma_types::{Cycles, Nanos};
/// let lat = Cycles::new(240);
/// assert_eq!(lat.to_nanos(), Nanos::new(100.0));
/// assert_eq!(Nanos::new(100.0).to_cycles(), lat);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a duration from a raw cycle count.
    pub const fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// Returns the raw cycle count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Converts to nanoseconds at the 2.4 GHz core clock.
    pub fn to_nanos(self) -> Nanos {
        Nanos(self.0 as f64 / CORE_GHZ)
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(c: u64) -> Self {
        Cycles(c)
    }
}

/// A duration measured in nanoseconds.
///
/// Latency parameters in the paper are given in nanoseconds; the simulator
/// converts them to [`Cycles`] at configuration time.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Nanos(f64);

impl Nanos {
    /// Zero nanoseconds.
    pub const ZERO: Nanos = Nanos(0.0);

    /// Creates a duration from a nanosecond count.
    pub const fn new(ns: f64) -> Self {
        Nanos(ns)
    }

    /// Returns the raw nanosecond value.
    pub const fn raw(self) -> f64 {
        self.0
    }

    /// Converts to core cycles at 2.4 GHz, rounding to the nearest cycle.
    pub fn to_cycles(self) -> Cycles {
        Cycles((self.0 * CORE_GHZ).round() as u64)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl Mul<f64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: f64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        Nanos(iter.map(|n| n.0).sum())
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}ns", self.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} ns", self.0)
    }
}

impl From<f64> for Nanos {
    fn from(ns: f64) -> Self {
        Nanos(ns)
    }
}

/// A capacity or transfer size in bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a size from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a size from a count of kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Creates a size from a count of mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Creates a size from a count of gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        Bytes(gib * 1024 * 1024 * 1024)
    }

    /// Returns the raw byte count.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1 << 30 {
            write!(f, "{:.1}GiB", self.0 as f64 / (1u64 << 30) as f64)
        } else if self.0 >= 1 << 20 {
            write!(f, "{:.1}MiB", self.0 as f64 / (1u64 << 20) as f64)
        } else if self.0 >= 1 << 10 {
            write!(f, "{:.1}KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A bandwidth in gigabytes per second (10^9 bytes/s), per direction.
///
/// Link and memory-channel bandwidths in the paper are given in GB/s.
/// [`GbPerSec::service_cycles`] converts a bandwidth into the link occupancy
/// of one 64 B block, which is how the simulator's FIFO link servers model
/// bandwidth limits and the queuing delays they induce.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct GbPerSec(f64);

impl GbPerSec {
    /// Creates a bandwidth from a GB/s value.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not finite and positive.
    pub fn new(gbps: f64) -> Self {
        assert!(
            gbps.is_finite() && gbps > 0.0,
            "bandwidth must be finite and positive, got {gbps}"
        );
        GbPerSec(gbps)
    }

    /// Returns the raw GB/s value.
    pub const fn raw(self) -> f64 {
        self.0
    }

    /// Scales the bandwidth by a factor (used by the ISO-BW / 2×BW / Half-BW
    /// configurations of §V-D).
    pub fn scale(self, factor: f64) -> GbPerSec {
        GbPerSec::new(self.0 * factor)
    }

    /// Returns the number of core cycles this bandwidth needs to transfer
    /// `bytes`, i.e. the occupancy of one transfer on a FIFO link server.
    ///
    /// At 2.4 GHz, one GB/s moves `1/2.4` bytes per cycle.
    pub fn service_cycles(self, bytes: u64) -> Cycles {
        let bytes_per_cycle = self.0 / CORE_GHZ; // GB/s ÷ Gcycle/s = bytes/cycle
        Cycles((bytes as f64 / bytes_per_cycle).ceil() as u64)
    }
}

impl Div<f64> for GbPerSec {
    type Output = GbPerSec;
    fn div(self, rhs: f64) -> GbPerSec {
        GbPerSec::new(self.0 / rhs)
    }
}

impl fmt::Debug for GbPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}GB/s", self.0)
    }
}

impl fmt::Display for GbPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} GB/s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_nanos_roundtrip() {
        assert_eq!(Nanos::new(100.0).to_cycles(), Cycles::new(240));
        assert_eq!(Cycles::new(240).to_nanos(), Nanos::new(100.0));
        assert_eq!(Nanos::new(50.0).to_cycles(), Cycles::new(120));
        assert_eq!(Nanos::new(360.0).to_cycles(), Cycles::new(864));
    }

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(3);
        assert_eq!(a + b, Cycles::new(13));
        assert_eq!(a - b, Cycles::new(7));
        assert_eq!(a * 2, Cycles::new(20));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let mut c = a;
        c += b;
        assert_eq!(c, Cycles::new(13));
        c -= b;
        assert_eq!(c, a);
        let total: Cycles = [a, b].into_iter().sum();
        assert_eq!(total, Cycles::new(13));
    }

    #[test]
    fn bytes_constructors() {
        assert_eq!(Bytes::from_kib(1), Bytes::new(1024));
        assert_eq!(Bytes::from_mib(2), Bytes::new(2 * 1024 * 1024));
        assert_eq!(Bytes::from_gib(1), Bytes::new(1 << 30));
        assert_eq!(format!("{:?}", Bytes::from_gib(3)), "3.0GiB");
        assert_eq!(format!("{:?}", Bytes::from_mib(5)), "5.0MiB");
        assert_eq!(format!("{:?}", Bytes::new(100)), "100B");
    }

    #[test]
    fn bandwidth_service_time() {
        // 24 GB/s at 2.4 GHz = 10 bytes/cycle → 64 B takes ceil(6.4) = 7 cycles.
        let bw = GbPerSec::new(24.0);
        assert_eq!(bw.service_cycles(64), Cycles::new(7));
        // 3 GB/s (scaled-down UPI, Table II) = 1.25 bytes/cycle → 52 cycles.
        let upi = GbPerSec::new(3.0);
        assert_eq!(upi.service_cycles(64), Cycles::new(52));
    }

    #[test]
    fn bandwidth_scaling() {
        let bw = GbPerSec::new(20.8);
        assert!((bw.scale(2.0).raw() - 41.6).abs() < 1e-9);
        assert!(((bw / 2.0).raw() - 10.4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be finite and positive")]
    fn bandwidth_rejects_zero() {
        let _ = GbPerSec::new(0.0);
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::new(80.0);
        let b = Nanos::new(20.0);
        assert_eq!((a + b).raw(), 100.0);
        assert_eq!((a - b).raw(), 60.0);
        assert_eq!((a * 2.0).raw(), 160.0);
        let s: Nanos = [a, b].into_iter().sum();
        assert_eq!(s.raw(), 100.0);
    }
}
