//! Implementation of the CLI commands.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use std::collections::BTreeMap;

use starnuma::obs::{
    metrics_json, parse_flat_object, trace_jsonl, try_percentile_from_counts, JsonValue, ObsReport,
    RunExtras, RunMeta, RunRecord, SiteSummary, LEDGER_FILE, MONITOR_NAMES,
};
use starnuma::prof;
use starnuma::report::{run_result_json, Json};
use starnuma::{
    geomean, AccessClass, CxlLatencyBreakdown, Experiment, JobPool, LatencyModel, RunResult,
    ScaleConfig, ScalePreset, SystemKind, TraceGenerator, Workload,
};
use starnuma_migration::ReplicationConfig;
use starnuma_topology::SystemParams;
use starnuma_trace::{read_phase, write_phase, SharingHistogram};
use starnuma_types::{digest_hex, fnv1a_digest, Location, SocketId};

use crate::args::{ArgError, Args};

/// Resolves a workload name (`bfs`, `BFS`, ...).
pub fn parse_workload(name: &str) -> Result<Workload, ArgError> {
    Workload::ALL
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            ArgError(format!(
                "unknown workload '{name}' (expected one of: {})",
                Workload::ALL.map(|w| w.name().to_lowercase()).join(", ")
            ))
        })
}

/// Resolves a system-kind name.
pub fn parse_system(name: &str) -> Result<SystemKind, ArgError> {
    let key = name.to_ascii_lowercase().replace(['-', '_'], "");
    let kind = match key.as_str() {
        "baseline" => SystemKind::Baseline,
        "baselinefirsttouch" | "firsttouch" => SystemKind::BaselineFirstTouch,
        "baselineisobw" | "isobw" => SystemKind::BaselineIsoBw,
        "baseline2xbw" | "2xbw" => SystemKind::Baseline2xBw,
        "baselinestatic" | "baselinestaticoracle" => SystemKind::BaselineStaticOracle,
        "starnuma" | "t16" => SystemKind::StarNuma,
        "starnumat0" | "t0" => SystemKind::StarNumaT0,
        "starnumahalfbw" | "halfbw" => SystemKind::StarNumaHalfBw,
        "starnumacxlswitch" | "cxlswitch" => SystemKind::StarNumaCxlSwitch,
        "starnumasmallpool" | "smallpool" => SystemKind::StarNumaSmallPool,
        "starnumastatic" | "starnumastaticoracle" => SystemKind::StarNumaStaticOracle,
        _ => {
            return Err(ArgError(format!(
                "unknown system '{name}' (try: baseline, starnuma, t0, isobw, \
                 2xbw, halfbw, cxlswitch, smallpool, baseline-static, \
                 starnuma-static, first-touch)"
            )))
        }
    };
    Ok(kind)
}

/// Resolves the worker count for multi-run commands and installs it as the
/// process-global [`JobPool`] setting: `--jobs N` wins, else `STARNUMA_JOBS`
/// (validated here, at harness entry — a typo is an error, not a silent
/// fallback), else the host's available parallelism.
pub fn configure_jobs(args: &Args) -> Result<(), ArgError> {
    let workers = match args.get("jobs") {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| ArgError(format!("--jobs expects a positive integer, got '{v}'")))?,
        None => JobPool::from_env()
            .map_err(|e| ArgError(e.to_string()))?
            .workers(),
    };
    starnuma::set_global_jobs(workers);
    Ok(())
}

/// The §V-G preset label stamped into observability exports.
fn preset_name(preset: ScalePreset) -> &'static str {
    match preset {
        ScalePreset::Sc1 => "SC1",
        ScalePreset::Sc2 => "SC2",
        ScalePreset::Sc3 => "SC3",
    }
}

/// Whether this invocation asked for observability output, and therefore
/// whether the simulation should run with the [`starnuma::obs`] sink on.
/// The ledger and the monitor flags all need the sink's report.
fn wants_obs(args: &Args) -> bool {
    args.get("trace-out").is_some()
        || args.get("metrics-out").is_some()
        || args.switch("strict-monitors")
        || args.get("inject-monitor-fault").is_some()
        || ledger_dir(args).is_some()
}

/// Resolved ledger directory: `--ledger DIR` wins, else the
/// `STARNUMA_LEDGER` environment variable; `None` when neither is set.
fn ledger_dir(args: &Args) -> Option<String> {
    args.get("ledger").map(str::to_string).or_else(|| {
        std::env::var("STARNUMA_LEDGER")
            .ok()
            .filter(|v| !v.is_empty())
    })
}

/// Per-command ledger state, created *before* the runs start so the wall
/// timer covers them and the profiler can attribute their time.
struct LedgerSession {
    dir: std::path::PathBuf,
    timer: prof::SessionTimer,
    /// Whether this session turned the profiler on (and must drain it).
    /// False under `starnuma profile`, which owns the report.
    owns_prof: bool,
}

/// Starts a ledger session when this invocation asked for one. Enables
/// the profiler for top-site attribution unless an enclosing `profile`
/// wrapper already owns it.
fn ledger_session(args: &Args) -> Option<LedgerSession> {
    let dir = ledger_dir(args)?;
    let owns_prof = !prof::is_enabled();
    if owns_prof {
        prof::reset();
        prof::set_enabled(true);
    }
    Some(LedgerSession {
        dir: dir.into(),
        timer: prof::SessionTimer::start(),
        owns_prof,
    })
}

impl LedgerSession {
    /// Appends one [`RunRecord`] per completed run to `dir/runs.jsonl`.
    /// Wall time and profiler top sites are per *command*, shared by every
    /// record of a batch (compare/sweep fan their runs out in parallel, so
    /// per-run wall time does not exist).
    fn append(self, entries: &[(RunMeta, u64, &RunResult, &ObsReport)]) -> Result<(), ArgError> {
        let wall_ns = self.timer.elapsed_ns();
        let top_sites: Vec<SiteSummary> = if self.owns_prof {
            prof::set_enabled(false);
            prof::take_report()
                .top_sites(5)
                .into_iter()
                .map(|(label, ns, calls)| SiteSummary { label, ns, calls })
                .collect()
        } else {
            Vec::new()
        };
        for (meta, config_digest, result, report) in entries {
            let extras = RunExtras {
                config_digest: *config_digest,
                result_digest: fnv1a_digest(format!("{result:?}").as_bytes()),
                wall_ns,
                ipc: result.ipc,
                amat_ns: result.amat_ns,
                pages_migrated: result.pages_migrated,
                pages_to_pool: result.pages_to_pool,
                top_sites: top_sites.clone(),
            };
            RunRecord::from_observed(meta, report, &report.monitor, &extras)
                .append_to(&self.dir)
                .map_err(|e| {
                    ArgError(format!("cannot write ledger {}: {e}", self.dir.display()))
                })?;
        }
        Ok(())
    }
}

/// Prints every monitor violation to stderr; under `--strict-monitors` a
/// non-empty set fails the command.
fn enforce_monitors(args: &Args, sections: &[(RunMeta, &ObsReport)]) -> ExitCode {
    let mut violations = 0u64;
    for (meta, report) in sections {
        for v in &report.monitor.violations {
            violations += 1;
            eprintln!(
                "monitor violation: {} (phase {}, observed {}, limit {}) in {} on {}",
                v.monitor, v.phase, v.observed, v.limit, meta.workload, meta.system
            );
        }
    }
    if violations > 0 && args.switch("strict-monitors") {
        eprintln!("strict-monitors: failing on {violations} violation(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Validates `--inject-monitor-fault NAME` against the monitor catalogue.
fn parse_fault(args: &Args) -> Result<Option<&str>, ArgError> {
    match args.get("inject-monitor-fault") {
        None => Ok(None),
        Some(name) if MONITOR_NAMES.contains(&name) => Ok(Some(name)),
        Some(name) => Err(ArgError(format!(
            "unknown monitor '{name}' (expected one of: {})",
            MONITOR_NAMES.join(", ")
        ))),
    }
}

/// The run-identity header stamped into every `--trace-out`/`--metrics-out`
/// export. The version is the package version only — no git-describe, so
/// identical source always produces identical files.
fn run_meta(workload: &str, system: SystemKind, scale: &ScaleConfig) -> RunMeta {
    RunMeta {
        workload: workload.to_string(),
        system: system.label().to_string(),
        preset: preset_name(scale.preset).to_string(),
        jobs: JobPool::global().workers() as u64,
        seed: scale.seed,
        version: env!("CARGO_PKG_VERSION").to_string(),
    }
}

/// Writes an export file, mapping I/O failures onto [`ArgError`].
fn write_out(path: &str, contents: &str) -> Result<(), ArgError> {
    std::fs::write(path, contents).map_err(|e| ArgError(format!("cannot write {path}: {e}")))
}

/// Honors `--trace-out`/`--metrics-out` for a batch of observed runs: the
/// trace file is the concatenation of each run's self-describing JSONL
/// section (one `meta` line each), the metrics file a JSON array with one
/// object per run (a bare object for a single run).
fn write_obs_outputs(args: &Args, sections: &[(RunMeta, &ObsReport)]) -> Result<(), ArgError> {
    if let Some(path) = args.get("trace-out") {
        let mut out = String::new();
        for (meta, report) in sections {
            out.push_str(&trace_jsonl(meta, report));
        }
        write_out(path, &out)?;
    }
    if let Some(path) = args.get("metrics-out") {
        let rendered: Vec<String> = sections
            .iter()
            .map(|(meta, report)| metrics_json(meta, &report.metrics))
            .collect();
        let payload = match rendered.as_slice() {
            [one] => one.clone(),
            many => format!("[{}]", many.join(",")),
        };
        write_out(path, &payload)?;
    }
    Ok(())
}

/// Builds a [`ScaleConfig`] from `--scale/--phases/--instructions/--seed`.
pub fn parse_scale(args: &Args) -> Result<ScaleConfig, ArgError> {
    let mut scale = match args.get_or("scale", "default") {
        "quick" => ScaleConfig::quick(),
        "default" => ScaleConfig::default_scale(),
        "full" => ScaleConfig::full(),
        other => {
            return Err(ArgError(format!(
                "unknown scale '{other}' (quick|default|full)"
            )))
        }
    };
    scale.phases = args.get_u64("phases", scale.phases as u64)? as usize;
    scale.instructions_per_phase = args.get_u64("instructions", scale.instructions_per_phase)?;
    scale.seed = args.get_u64("seed", scale.seed)?;
    Ok(scale)
}

/// `starnuma run --workload W --system S [--replication FRAC] [--json]
/// [--trace-out PATH] [--metrics-out PATH] [--ledger DIR]
/// [--strict-monitors] [--inject-monitor-fault NAME] [--progress]`
pub fn cmd_run(args: &Args) -> Result<ExitCode, ArgError> {
    args.expect_only(&[
        "workload",
        "system",
        "scale",
        "phases",
        "instructions",
        "seed",
        "jobs",
        "json",
        "replication",
        "trace-out",
        "metrics-out",
        "ledger",
        "strict-monitors",
        "inject-monitor-fault",
        "progress",
    ])?;
    configure_jobs(args)?;
    starnuma::set_progress(args.switch("progress"));
    let workload = parse_workload(args.require("workload")?)?;
    let system = parse_system(args.get_or("system", "starnuma"))?;
    let scale = parse_scale(args)?;
    let observed = wants_obs(args);
    let fault = parse_fault(args)?;
    let ledger = ledger_session(args);
    let (result, report, config_digest) = match args.get("replication") {
        None => {
            let e = Experiment::new(workload, system, scale.clone());
            let digest = fnv1a_digest(format!("{:?}", e.run_config()).as_bytes());
            if observed {
                let (r, rep) = e.run_observed_faulted(fault);
                (r, Some(rep), digest)
            } else {
                (e.run(), None, digest)
            }
        }
        Some(frac) => {
            let frac: f64 = frac
                .parse()
                .map_err(|_| ArgError(format!("--replication expects a fraction, got '{frac}'")))?;
            if !(0.0..=1.0).contains(&frac) {
                return Err(ArgError("--replication must be in [0, 1]".into()));
            }
            let mut cfg = Experiment::new(workload, system, scale.clone()).run_config();
            cfg.replication = Some(ReplicationConfig::with_budget_frac(
                workload.profile().footprint_pages,
                frac,
            ));
            let digest = fnv1a_digest(format!("{cfg:?}").as_bytes());
            let runner = starnuma::Runner::new(workload.profile(), cfg);
            if observed {
                let (r, rep) = runner.run_with_obs_faulted(fault);
                (r, Some(rep), digest)
            } else {
                (runner.run(), None, digest)
            }
        }
    };
    let mut exit = ExitCode::SUCCESS;
    if let Some(rep) = &report {
        let meta = run_meta(workload.name(), system, &scale);
        write_obs_outputs(args, &[(meta.clone(), rep)])?;
        if let Some(session) = ledger {
            session.append(&[(meta.clone(), config_digest, &result, rep)])?;
        }
        exit = enforce_monitors(args, &[(meta, rep)]);
    }
    if args.switch("json") {
        println!("{}", run_result_json(workload, system, &result).render());
        return Ok(exit);
    }
    println!("{workload} on {system}");
    println!("  per-core IPC      {:.3}", result.ipc);
    println!(
        "  AMAT              {:.0} ns ({:.0} unloaded + {:.0} contention)",
        result.amat_ns, result.unloaded_amat_ns, result.contention_ns
    );
    println!("  observed MPKI     {:.1}", result.mpki);
    println!(
        "  migrations        {} pages ({:.0}% to pool)",
        result.pages_migrated,
        result.pool_migration_frac() * 100.0
    );
    println!("  access breakdown:");
    for (i, class) in AccessClass::ALL.iter().enumerate() {
        if result.class_fracs[i] > 0.0005 {
            println!(
                "    {:<10} {:>5.1}%  (mean {:.0} ns)",
                class.label(),
                result.class_fracs[i] * 100.0,
                result.class_mean_ns[i]
            );
        }
    }
    if let Some(reps) = result.replication {
        println!(
            "  replication       {} regions, peak {} pages, {} collapses",
            reps.regions_replicated, reps.peak_replica_pages, reps.collapses
        );
    }
    Ok(exit)
}

/// `starnuma compare --workload W [--systems a,b,...] [--json]
/// [--trace-out PATH] [--metrics-out PATH] [--ledger DIR]
/// [--strict-monitors] [--progress]`
pub fn cmd_compare(args: &Args) -> Result<ExitCode, ArgError> {
    args.expect_only(&[
        "workload",
        "systems",
        "scale",
        "phases",
        "instructions",
        "seed",
        "jobs",
        "json",
        "trace-out",
        "metrics-out",
        "ledger",
        "strict-monitors",
        "progress",
    ])?;
    configure_jobs(args)?;
    starnuma::set_progress(args.switch("progress"));
    let workload = parse_workload(args.require("workload")?)?;
    let systems: Vec<SystemKind> = args
        .get_or("systems", "baseline,starnuma,t0")
        .split(',')
        .map(parse_system)
        .collect::<Result<_, _>>()?;
    let scale = parse_scale(args)?;
    let observed = wants_obs(args);
    let ledger = ledger_session(args);
    // Fan every distinct system (plus the baseline, which anchors the
    // speedup column) out on the job pool; results are keyed for the
    // requested row order below.
    let mut distinct = vec![SystemKind::Baseline];
    for s in &systems {
        if !distinct.contains(s) {
            distinct.push(*s);
        }
    }
    let computed: BTreeMap<SystemKind, (RunResult, Option<ObsReport>)> = JobPool::global()
        .run(distinct.clone(), |_, system| {
            let e = Experiment::new(workload, system, scale.clone());
            if observed {
                let (r, rep) = e.run_observed();
                (system, (r, Some(rep)))
            } else {
                (system, (e.run(), None))
            }
        })
        .into_iter()
        .collect();
    let mut exit = ExitCode::SUCCESS;
    if observed {
        // One export section per distinct system, baseline first — the
        // same deterministic order the fan-out used.
        let sections: Vec<(RunMeta, &ObsReport)> = distinct
            .iter()
            .filter_map(|s| {
                computed[s]
                    .1
                    .as_ref()
                    .map(|rep| (run_meta(workload.name(), *s, &scale), rep))
            })
            .collect();
        write_obs_outputs(args, &sections)?;
        if let Some(session) = ledger {
            let entries: Vec<(RunMeta, u64, &RunResult, &ObsReport)> = distinct
                .iter()
                .filter_map(|s| {
                    let (result, rep) = &computed[s];
                    let cfg = Experiment::new(workload, *s, scale.clone()).run_config();
                    rep.as_ref().map(|rep| {
                        (
                            run_meta(workload.name(), *s, &scale),
                            fnv1a_digest(format!("{cfg:?}").as_bytes()),
                            result,
                            rep,
                        )
                    })
                })
                .collect();
            session.append(&entries)?;
        }
        exit = enforce_monitors(args, &sections);
    }
    let computed: BTreeMap<SystemKind, RunResult> =
        computed.into_iter().map(|(s, (r, _))| (s, r)).collect();
    let baseline = computed[&SystemKind::Baseline].clone();
    let rows: Vec<(SystemKind, RunResult)> = systems
        .into_iter()
        .map(|s| (s, computed[&s].clone()))
        .collect();
    if args.switch("json") {
        let arr = Json::Arr(
            rows.iter()
                .map(|(s, r)| run_result_json(workload, *s, r))
                .collect(),
        );
        println!("{}", arr.render());
        return Ok(exit);
    }
    println!("{workload}: comparison against {}", SystemKind::Baseline);
    println!(
        "{:<30} {:>8} {:>9} {:>9} {:>8}",
        "system", "IPC", "AMAT(ns)", "cont.(ns)", "speedup"
    );
    for (system, r) in &rows {
        println!(
            "{:<30} {:>8.3} {:>9.0} {:>9.0} {:>7.2}x",
            system.label(),
            r.ipc,
            r.amat_ns,
            r.contention_ns,
            r.ipc / baseline.ipc
        );
    }
    Ok(exit)
}

/// `starnuma sweep --system S [--workloads a,b,...] [--json]
/// [--trace-out PATH] [--metrics-out PATH] [--ledger DIR]
/// [--strict-monitors] [--progress]`
pub fn cmd_sweep(args: &Args) -> Result<ExitCode, ArgError> {
    args.expect_only(&[
        "system",
        "workloads",
        "scale",
        "phases",
        "instructions",
        "seed",
        "jobs",
        "json",
        "trace-out",
        "metrics-out",
        "ledger",
        "strict-monitors",
        "progress",
    ])?;
    configure_jobs(args)?;
    starnuma::set_progress(args.switch("progress"));
    let system = parse_system(args.get_or("system", "starnuma"))?;
    let workloads: Vec<Workload> = match args.get("workloads") {
        None => Workload::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(parse_workload)
            .collect::<Result<_, _>>()?,
    };
    let scale = parse_scale(args)?;
    let observed = wants_obs(args);
    let ledger = ledger_session(args);
    // One job per workload; each job runs the system and its baseline.
    // When observability output was requested, each job also carries back
    // the *system* run's result and report (the baseline anchors speedups
    // only — the ledger records the system run).
    type SweepRow = (Workload, f64, Option<(RunResult, ObsReport)>);
    let rows: Vec<SweepRow> = JobPool::global().run(workloads, |_, w| {
        if observed {
            let (speedup, sys, _, sys_report, _) =
                starnuma::speedup_vs_baseline_observed(w, system, &scale);
            (w, speedup, Some((sys, sys_report)))
        } else {
            let (speedup, _, _) = starnuma::speedup_vs_baseline(w, system, &scale);
            (w, speedup, None)
        }
    });
    let mut exit = ExitCode::SUCCESS;
    if observed {
        let sections: Vec<(RunMeta, &ObsReport)> = rows
            .iter()
            .filter_map(|(w, _, obs)| {
                obs.as_ref()
                    .map(|(_, r)| (run_meta(w.name(), system, &scale), r))
            })
            .collect();
        write_obs_outputs(args, &sections)?;
        if let Some(session) = ledger {
            let entries: Vec<(RunMeta, u64, &RunResult, &ObsReport)> = rows
                .iter()
                .filter_map(|(w, _, obs)| {
                    let cfg = Experiment::new(*w, system, scale.clone()).run_config();
                    obs.as_ref().map(|(result, rep)| {
                        (
                            run_meta(w.name(), system, &scale),
                            fnv1a_digest(format!("{cfg:?}").as_bytes()),
                            result,
                            rep,
                        )
                    })
                })
                .collect();
            session.append(&entries)?;
        }
        exit = enforce_monitors(args, &sections);
    }
    let rows: Vec<(&str, f64)> = rows.iter().map(|(w, s, _)| (w.name(), *s)).collect();
    if args.switch("json") {
        // Self-describing output: a `meta` header (scale preset, worker
        // count, seed, version) plus the per-workload results — so a sweep
        // artifact alone records how it was produced.
        let meta = Json::Obj(vec![
            ("system".into(), Json::Str(system.label().into())),
            ("preset".into(), Json::Str(preset_name(scale.preset).into())),
            ("jobs".into(), Json::Num(JobPool::global().workers() as f64)),
            ("seed".into(), Json::Num(scale.seed as f64)),
            (
                "version".into(),
                Json::Str(env!("CARGO_PKG_VERSION").into()),
            ),
        ]);
        let results = Json::Arr(
            rows.iter()
                .map(|(name, s)| {
                    Json::Obj(vec![
                        ("workload".into(), Json::Str((*name).into())),
                        ("system".into(), Json::Str(system.label().into())),
                        ("speedup".into(), Json::Num(*s)),
                    ])
                })
                .collect(),
        );
        let doc = Json::Obj(vec![("meta".into(), meta), ("results".into(), results)]);
        println!("{}", doc.render());
        return Ok(exit);
    }
    println!(
        "speedup of {system} over {} per workload:\n",
        SystemKind::Baseline
    );
    print!("{}", starnuma::chart::speedup_chart(&rows, 40));
    let speedups: Vec<f64> = rows.iter().map(|(_, s)| *s).collect();
    println!("{:<10} geomean {:.2}x", "", geomean(&speedups));
    Ok(exit)
}

/// `starnuma topology [--sockets N] [--full-scale] [--dot PATH]`
pub fn cmd_topology(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["sockets", "full-scale", "dot"])?;
    let sockets = args.get_u64("sockets", 16)? as usize;
    let base = if args.switch("full-scale") {
        SystemParams::full_scale_starnuma()
    } else {
        SystemParams::scaled_starnuma()
    };
    let params = base
        .with_num_sockets(sockets)
        .map_err(|e| ArgError(e.to_string()))?;
    if let Some(path) = args.get("dot") {
        std::fs::write(path, starnuma_topology::to_dot(&params))
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        println!("wrote GraphViz topology to {path}");
        return Ok(());
    }
    let m = LatencyModel::new(params.clone());
    println!(
        "{} sockets in {} chassis, {} cores, pool: yes",
        params.num_sockets,
        params.num_chassis(),
        params.total_cores()
    );
    let s0 = SocketId::new(0);
    println!("unloaded latencies from socket 0:");
    println!("  local   {}", m.demand_access(s0, Location::Socket(s0)));
    println!(
        "  1-hop   {}",
        m.demand_access(s0, Location::Socket(SocketId::new(1)))
    );
    println!(
        "  2-hop   {}",
        m.demand_access(s0, Location::Socket(SocketId::new(4)))
    );
    println!("  pool    {}", m.demand_access(s0, Location::Pool));
    println!(
        "block transfers: 3-hop avg {}, 4-hop via pool {}",
        m.average_three_hop_transfer(),
        m.four_hop_pool_transfer()
    );
    let b = CxlLatencyBreakdown::paper();
    println!(
        "CXL breakdown: {} + {} + {} + {} + {} = {} penalty",
        b.cpu_port,
        b.mhd_port,
        b.retimer,
        b.flight,
        b.mhd_internal,
        b.total()
    );
    Ok(())
}

/// `starnuma workloads`
pub fn cmd_workloads(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[])?;
    println!(
        "{:<10} {:>7} {:>8} {:>5} {:>12} {:>8}",
        "workload", "MPKI", "IPC(1s)", "MLP", "footprint", "classes"
    );
    for w in Workload::ALL {
        let p = w.profile();
        println!(
            "{:<10} {:>7.1} {:>8.2} {:>5} {:>9} pg {:>8}",
            w.name(),
            p.mpki,
            p.ipc_single_socket,
            p.mlp,
            p.footprint_pages,
            p.classes.len()
        );
    }
    Ok(())
}

/// `starnuma trace gen|info ...`
pub fn cmd_trace(args: &Args) -> Result<(), ArgError> {
    match args.subcommand() {
        Some("gen") => {
            args.expect_only(&["workload", "out", "instructions", "seed", "sockets"])?;
            let workload = parse_workload(args.require("workload")?)?;
            let out = args.require("out")?;
            let instructions = args.get_u64("instructions", 100_000)?;
            let seed = args.get_u64("seed", 42)?;
            let sockets = args.get_u64("sockets", 16)? as usize;
            let mut gen = TraceGenerator::new(&workload.profile(), sockets, 4, seed);
            let phase = gen.generate_phase(instructions);
            let file =
                File::create(out).map_err(|e| ArgError(format!("cannot create {out}: {e}")))?;
            write_phase(BufWriter::new(file), &phase)
                .map_err(|e| ArgError(format!("write failed: {e}")))?;
            println!(
                "wrote {} accesses from {} cores to {out}",
                phase.total_accesses(),
                phase.per_core.len()
            );
            Ok(())
        }
        Some("info") => {
            args.expect_only(&["in"])?;
            let path = args.require("in")?;
            let file =
                File::open(path).map_err(|e| ArgError(format!("cannot open {path}: {e}")))?;
            let phase = read_phase(BufReader::new(file))
                .map_err(|e| ArgError(format!("read failed: {e}")))?;
            let h = SharingHistogram::from_trace(&phase, 4);
            println!(
                "{path}: {} cores, {} accesses, {} pages touched",
                phase.per_core.len(),
                phase.total_accesses(),
                h.touched_pages
            );
            println!("observed sharing bins (pages / accesses):");
            for (i, bin) in h.bins().iter().enumerate() {
                println!(
                    "  {:>5}: {:>5.1}% / {:>5.1}%",
                    SharingHistogram::LABELS[i],
                    bin.page_frac * 100.0,
                    bin.access_frac * 100.0
                );
            }
            Ok(())
        }
        other => Err(ArgError(format!(
            "trace needs a subcommand gen|info, got {other:?}"
        ))),
    }
}

/// `starnuma lint [--root <path>] [--format human|json|sarif] [--json]
/// [--sarif <path>] [--baseline] [--baseline-file <path>]
/// [--update-baseline] [--fix] [--fix-allow] [--no-cache]`: runs the full
/// SN001–SN012 analyzer over a workspace tree and exits non-zero when
/// anything is found beyond the accepted baseline. Findings are not an
/// `ArgError`: the invocation was fine, so no usage dump — just the
/// report and the code.
pub fn cmd_lint(args: &Args) -> Result<ExitCode, ArgError> {
    args.expect_only(&[
        "root",
        "format",
        "json",
        "sarif",
        "baseline",
        "baseline-file",
        "update-baseline",
        "fix",
        "fix-allow",
        "no-cache",
    ])?;
    let root = std::path::PathBuf::from(args.get_or("root", "."));
    let format = match (args.switch("json"), args.get_or("format", "human")) {
        (true, _) | (false, "json") => "json",
        (false, "human") => "human",
        (false, "sarif") => "sarif",
        (false, other) => {
            return Err(ArgError(format!(
                "unknown format '{other}' (human|json|sarif)"
            )))
        }
    };
    let opts = starnuma_audit::LintOptions {
        cache_path: if args.switch("no-cache") {
            None
        } else {
            Some(starnuma_audit::LintOptions::default_cache_path(&root))
        },
    };
    let scan = |opts: &starnuma_audit::LintOptions| {
        starnuma_audit::lint_workspace_with(&root, opts)
            .map_err(|e| ArgError(format!("cannot scan {}: {e}", root.display())))
    };
    let mut outcome = scan(&opts)?;

    // Fix flow: apply the safe rewrites, re-lint, then (with --fix-allow)
    // insert suppression markers for whatever is left and re-lint again,
    // so the report below always describes the tree as it now stands.
    if args.switch("fix") || args.switch("fix-allow") {
        let report = starnuma_audit::apply_fixes(&root, &outcome.findings, false)
            .map_err(|e| ArgError(format!("cannot fix under {}: {e}", root.display())))?;
        if report.rewrites > 0 {
            eprintln!(
                "lint --fix: {} rewrite(s) in {} file(s)",
                report.rewrites,
                report.files_changed.len()
            );
            outcome = scan(&opts)?;
        }
        if args.switch("fix-allow") && !outcome.findings.is_empty() {
            let report = starnuma_audit::apply_fixes(&root, &outcome.findings, true)
                .map_err(|e| ArgError(format!("cannot fix under {}: {e}", root.display())))?;
            eprintln!(
                "lint --fix-allow: {} audit:allow marker(s) inserted",
                report.allows_inserted
            );
            outcome = scan(&opts)?;
        }
    }

    let baseline_path = args
        .get("baseline-file")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| root.join("ci").join("lint_baseline.json"));
    if args.switch("update-baseline") {
        let baseline = starnuma_audit::Baseline::from_findings(&outcome.findings);
        baseline
            .save(&baseline_path)
            .map_err(|e| ArgError(format!("cannot write {}: {e}", baseline_path.display())))?;
        println!(
            "lint: baseline updated ({} entr{}) at {}",
            baseline.len(),
            if baseline.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }
    let (findings, suppressed) = if args.switch("baseline") || args.get("baseline-file").is_some() {
        let baseline = starnuma_audit::Baseline::load(&baseline_path).ok_or_else(|| {
            ArgError(format!(
                "cannot read baseline {}; regenerate with `starnuma lint --update-baseline`",
                baseline_path.display()
            ))
        })?;
        baseline.apply(outcome.findings)
    } else {
        (outcome.findings, Vec::new())
    };

    match format {
        "json" => println!(
            "{}",
            starnuma_audit::render_json_report(&findings, suppressed.len(), outcome.files_scanned)
        ),
        "sarif" => println!(
            "{}",
            starnuma_audit::render_sarif(&findings, env!("CARGO_PKG_VERSION"))
        ),
        _ => {
            println!("{}", starnuma_audit::render_human(&findings));
            if !suppressed.is_empty() {
                println!(
                    "audit: {} finding(s) suppressed by baseline",
                    suppressed.len()
                );
            }
        }
    }
    if let Some(path) = args.get("sarif") {
        std::fs::write(
            path,
            starnuma_audit::render_sarif(&findings, env!("CARGO_PKG_VERSION")),
        )
        .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
    }
    if findings.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

/// `starnuma profile <run|compare|sweep> <wrapped flags>
/// [--profile-out PATH] [--folded-out PATH]`: runs the wrapped command
/// under the deterministic self-profiler, renders the top-down wall-time
/// attribution tree, and writes the schema-versioned `profile.json`
/// (plus optional folded stacks for flamegraph tooling). Profiling never
/// feeds back into the simulation, so the wrapped command's outputs are
/// bit-identical to an unprofiled invocation.
pub fn cmd_profile(args: &Args) -> Result<ExitCode, ArgError> {
    let sub = args
        .subcommand()
        .filter(|s| matches!(*s, "run" | "compare" | "sweep"))
        .ok_or_else(|| {
            ArgError(
                "profile wraps a simulation command: \
                 starnuma profile <run|compare|sweep> ..."
                    .into(),
            )
        })?;
    let profile_out = args.get_or("profile-out", "profile.json").to_string();
    let folded_out = args.get("folded-out").map(str::to_string);
    let inner = args.rewrap(sub, &["profile-out", "folded-out"]);
    prof::reset();
    prof::set_enabled(true);
    let timer = prof::SessionTimer::start();
    let dispatched = match sub {
        "run" => cmd_run(&inner),
        "compare" => cmd_compare(&inner),
        _ => cmd_sweep(&inner),
    };
    let wall_ns = timer.elapsed_ns();
    prof::set_enabled(false);
    let report = prof::take_report();
    let exit = dispatched?;
    println!();
    print!("{}", report.render_tree(wall_ns));
    write_out(
        &profile_out,
        &report.to_json(&format!("profile {sub}"), wall_ns),
    )?;
    println!("wrote {profile_out}");
    if let Some(path) = &folded_out {
        write_out(path, &report.folded())?;
        println!("wrote folded stacks to {path}");
    }
    Ok(exit)
}

/// Loads bench metrics from a flat JSON object file or a
/// `BENCH_history.jsonl` file. Every non-empty line must be a flat JSON
/// object; numeric fields are merged across lines with later lines
/// superseding earlier ones per key, so a history file compares at its
/// most recent state. Identity fields (`bench`, `schema_version`,
/// `smoke`, `version`) are not metrics and are dropped.
fn load_bench_metrics(path: &str) -> Result<BTreeMap<String, f64>, ArgError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let mut metrics = BTreeMap::new();
    let mut parsed_any = false;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = parse_flat_object(line)
            .ok_or_else(|| ArgError(format!("{path}:{}: not a flat JSON object line", i + 1)))?;
        parsed_any = true;
        for (key, value) in obj {
            if matches!(
                key.as_str(),
                "bench" | "schema_version" | "smoke" | "version"
            ) {
                continue;
            }
            if let JsonValue::Num(n) = value {
                if n.is_finite() {
                    metrics.insert(key, n);
                }
            }
        }
    }
    if !parsed_any {
        return Err(ArgError(format!("{path}: no metric lines")));
    }
    Ok(metrics)
}

/// The known-good direction of a bench metric, inferred from its key.
/// Throughput-style metrics regress when they fall, latency/overhead
/// metrics when they rise; anything else is reported without judgement.
fn higher_is_better(key: &str) -> Option<bool> {
    if key.contains("per_sec") || key.contains("speedup") || key.contains("minstr") {
        Some(true)
    } else if key.contains("_ns") || key.contains("ns_per") || key.ends_with("_ms") {
        Some(false)
    } else {
        None
    }
}

/// Renders the metric-by-metric comparison and counts regressions: shared
/// keys whose value moved beyond the tolerance band in the bad direction.
fn bench_diff_report(
    old: &BTreeMap<String, f64>,
    new: &BTreeMap<String, f64>,
    tolerance: f64,
) -> (String, usize) {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut regressions = 0usize;
    let _ = writeln!(
        out,
        "{:<44} {:>12} {:>12} {:>8}  verdict",
        "metric", "old", "new", "delta"
    );
    for (key, &old_v) in old {
        let Some(&new_v) = new.get(key) else {
            let _ = writeln!(out, "{key:<44} {old_v:>12.3} {:>12}  (metric removed)", "-");
            continue;
        };
        let delta = if old_v == 0.0 {
            if new_v == 0.0 {
                0.0
            } else {
                f64::INFINITY * new_v.signum()
            }
        } else {
            (new_v - old_v) / old_v.abs()
        };
        let verdict = match higher_is_better(key) {
            Some(true) if delta < -tolerance => {
                regressions += 1;
                "REGRESSION"
            }
            Some(false) if delta > tolerance => {
                regressions += 1;
                "REGRESSION"
            }
            Some(_) => "ok",
            None => "info",
        };
        let _ = writeln!(
            out,
            "{key:<44} {old_v:>12.3} {new_v:>12.3} {:>+7.1}%  {verdict}",
            delta * 100.0
        );
    }
    for (key, &new_v) in new {
        if !old.contains_key(key) {
            let _ = writeln!(out, "{key:<44} {:>12} {new_v:>12.3}  (new metric)", "-");
        }
    }
    (out, regressions)
}

/// `starnuma bench-diff <old> <new> [--tolerance FRAC]`: compares two
/// bench-metric files (flat JSON objects or `BENCH_history.jsonl`) and
/// exits non-zero when any shared metric regressed beyond the tolerance
/// band in its known-good direction — the CI perf-regression smoke gate.
/// Takes raw tokens because the `Args` grammar has no second positional.
pub fn cmd_bench_diff(raw: &[String]) -> Result<ExitCode, ArgError> {
    let mut positionals: Vec<&str> = Vec::new();
    let mut tolerance = 0.2_f64;
    let mut iter = raw.iter();
    while let Some(token) = iter.next() {
        if token == "--tolerance" {
            let v = iter
                .next()
                .ok_or_else(|| ArgError("flag --tolerance requires a value".into()))?;
            tolerance = v
                .parse::<f64>()
                .ok()
                .filter(|t| t.is_finite() && *t >= 0.0)
                .ok_or_else(|| {
                    ArgError(format!(
                        "--tolerance expects a non-negative fraction, got '{v}'"
                    ))
                })?;
        } else if let Some(name) = token.strip_prefix("--") {
            return Err(ArgError(format!(
                "unknown flag --{name} for command 'bench-diff'"
            )));
        } else {
            positionals.push(token);
        }
    }
    let [old_path, new_path] = positionals[..] else {
        return Err(ArgError(
            "bench-diff needs two files: starnuma bench-diff <old> <new> [--tolerance FRAC]".into(),
        ));
    };
    let old = load_bench_metrics(old_path)?;
    let new = load_bench_metrics(new_path)?;
    let (table, regressions) = bench_diff_report(&old, &new, tolerance);
    println!(
        "bench-diff: {old_path} -> {new_path} (tolerance {:.0}%)",
        tolerance * 100.0
    );
    print!("{table}");
    if regressions == 0 {
        println!("no regressions beyond the tolerance band");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("{regressions} metric(s) regressed beyond the tolerance band");
        Ok(ExitCode::FAILURE)
    }
}

/// Like [`load_bench_metrics`], but keeps the *first* value seen per key
/// — the history file's oldest state, which `starnuma report` diffs
/// against the newest to show how the benches moved over the whole file.
fn load_bench_first_state(path: &str) -> Result<BTreeMap<String, f64>, ArgError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let mut metrics = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = parse_flat_object(line)
            .ok_or_else(|| ArgError(format!("{path}:{}: not a flat JSON object line", i + 1)))?;
        for (key, value) in obj {
            if matches!(
                key.as_str(),
                "bench" | "schema_version" | "smoke" | "version"
            ) {
                continue;
            }
            if let JsonValue::Num(n) = value {
                if n.is_finite() {
                    metrics.entry(key).or_insert(n);
                }
            }
        }
    }
    Ok(metrics)
}

/// One (workload, system) trend group for `starnuma report`, in ledger
/// file order (oldest first).
struct TrendGroup<'a> {
    workload: &'a str,
    system: &'a str,
    records: Vec<&'a RunRecord>,
}

/// One determinism-drift flag: the same (workload, system, preset,
/// config digest, seed) produced more than one result digest.
struct DriftFlag<'a> {
    workload: &'a str,
    system: &'a str,
    preset: &'a str,
    seed: u64,
    config_digest: u64,
    result_digests: Vec<u64>,
    versions: Vec<&'a str>,
}

/// `starnuma report [--ledger DIR] [--bench-history PATH]
/// [--tolerance FRAC] [--json|--markdown]`: cross-run trends from the
/// run ledger — per-experiment IPC/p95 series with sparklines, monitor
/// totals, determinism-drift flags (same config digest + seed, different
/// result digest), and a first-vs-latest bench-history diff. Exits
/// non-zero on any monitor violation or drift flag, so CI can gate on it.
pub fn cmd_report(args: &Args) -> Result<ExitCode, ArgError> {
    args.expect_only(&[
        "ledger",
        "bench-history",
        "tolerance",
        "json",
        "markdown",
        "jobs",
    ])?;
    let dir = ledger_dir(args).ok_or_else(|| {
        ArgError("report needs a ledger: pass --ledger DIR or set STARNUMA_LEDGER".into())
    })?;
    let ledger_path = std::path::Path::new(&dir).join(LEDGER_FILE);
    let shown_path = ledger_path.display().to_string();
    let text = std::fs::read_to_string(&ledger_path)
        .map_err(|e| ArgError(format!("cannot read {shown_path}: {e}")))?;
    let mut records: Vec<RunRecord> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records.push(RunRecord::from_json_line(line).ok_or_else(|| {
            ArgError(format!(
                "{shown_path}:{}: not a valid ledger record (schema {})",
                i + 1,
                starnuma::obs::LEDGER_SCHEMA_VERSION
            ))
        })?);
    }
    let tolerance = {
        let v = args.get_or("tolerance", "0.2");
        v.parse::<f64>()
            .ok()
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| {
                ArgError(format!(
                    "--tolerance expects a non-negative fraction, got '{v}'"
                ))
            })?
    };

    // Group into per-experiment trends, preserving file order inside each
    // group (the ledger is append-only, so file order is time order).
    let mut groups: BTreeMap<(&str, &str), Vec<&RunRecord>> = BTreeMap::new();
    for r in &records {
        groups
            .entry((r.workload.as_str(), r.system.as_str()))
            .or_default()
            .push(r);
    }
    let groups: Vec<TrendGroup> = groups
        .into_iter()
        .map(|((workload, system), records)| TrendGroup {
            workload,
            system,
            records,
        })
        .collect();

    // Determinism drift: identical (workload, system, preset, config
    // digest, seed) must always reproduce the same result digest.
    // (workload, system, preset, config digest, seed) → the distinct
    // result digests and crate versions that identity produced.
    type DriftKey<'a> = (&'a str, &'a str, &'a str, u64, u64);
    let mut by_identity: BTreeMap<DriftKey, (Vec<u64>, Vec<&str>)> = BTreeMap::new();
    for r in &records {
        let key = (
            r.workload.as_str(),
            r.system.as_str(),
            r.preset.as_str(),
            r.config_digest,
            r.seed,
        );
        let (digests, versions) = by_identity.entry(key).or_default();
        if !digests.contains(&r.result_digest) {
            digests.push(r.result_digest);
        }
        if !versions.contains(&r.version.as_str()) {
            versions.push(r.version.as_str());
        }
    }
    let drift: Vec<DriftFlag> = by_identity
        .into_iter()
        .filter(|(_, (digests, _))| digests.len() > 1)
        .map(
            |((workload, system, preset, config_digest, seed), (result_digests, versions))| {
                DriftFlag {
                    workload,
                    system,
                    preset,
                    seed,
                    config_digest,
                    result_digests,
                    versions,
                }
            },
        )
        .collect();

    let checks: u64 = records.iter().map(|r| r.monitor_checks).sum();
    let violations: u64 = records.iter().map(|r| r.monitor_violations).sum();

    // Bench history: explicit flag wins, then the env override, then the
    // default file name if it exists in the working directory.
    let bench_path = args
        .get("bench-history")
        .map(str::to_string)
        .or_else(|| {
            std::env::var("STARNUMA_BENCH_HISTORY")
                .ok()
                .filter(|v| !v.is_empty())
        })
        .or_else(|| {
            let default = "BENCH_history.jsonl";
            std::path::Path::new(default)
                .exists()
                .then(|| default.to_string())
        });
    let bench = match &bench_path {
        Some(path) => {
            let first = load_bench_first_state(path)?;
            let latest = load_bench_metrics(path)?;
            let (table, regressions) = bench_diff_report(&first, &latest, tolerance);
            Some((path.clone(), table, regressions))
        }
        None => None,
    };

    let trend_row = |g: &TrendGroup| -> (f64, f64, f64, String) {
        let ipc_series: Vec<f64> = g.records.iter().map(|r| r.ipc).collect();
        let last = *ipc_series.last().unwrap_or(&0.0);
        let delta = if ipc_series.len() >= 2 {
            last - ipc_series[ipc_series.len() - 2]
        } else {
            0.0
        };
        let p95 = g.records.last().map_or(0.0, |r| r.overall.p95_ns);
        (last, delta, p95, sparkline(&ipc_series))
    };

    if args.switch("json") {
        let experiments = Json::Arr(
            groups
                .iter()
                .map(|g| {
                    let (last, delta, p95, _) = trend_row(g);
                    Json::Obj(vec![
                        ("workload".into(), Json::Str(g.workload.into())),
                        ("system".into(), Json::Str(g.system.into())),
                        ("runs".into(), Json::Num(g.records.len() as f64)),
                        ("ipc_last".into(), Json::Num(last)),
                        ("ipc_delta".into(), Json::Num(delta)),
                        ("p95_ns_last".into(), Json::Num(p95)),
                        (
                            "ipc_series".into(),
                            Json::Arr(g.records.iter().map(|r| Json::Num(r.ipc)).collect()),
                        ),
                    ])
                })
                .collect(),
        );
        let drift_json = Json::Arr(
            drift
                .iter()
                .map(|d| {
                    Json::Obj(vec![
                        ("workload".into(), Json::Str(d.workload.into())),
                        ("system".into(), Json::Str(d.system.into())),
                        ("preset".into(), Json::Str(d.preset.into())),
                        ("seed".into(), Json::Num(d.seed as f64)),
                        (
                            "config_digest".into(),
                            Json::Str(digest_hex(d.config_digest)),
                        ),
                        (
                            "result_digests".into(),
                            Json::Arr(
                                d.result_digests
                                    .iter()
                                    .map(|x| Json::Str(digest_hex(*x)))
                                    .collect(),
                            ),
                        ),
                        (
                            "versions".into(),
                            Json::Arr(
                                d.versions
                                    .iter()
                                    .map(|v| Json::Str((*v).to_string()))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let mut doc = vec![
            ("ledger".into(), Json::Str(shown_path.clone())),
            ("records".into(), Json::Num(records.len() as f64)),
            ("experiments".into(), experiments),
            (
                "monitors".into(),
                Json::Obj(vec![
                    ("checks".into(), Json::Num(checks as f64)),
                    ("violations".into(), Json::Num(violations as f64)),
                ]),
            ),
            ("drift".into(), drift_json),
        ];
        if let Some((path, _, regressions)) = &bench {
            doc.push((
                "bench".into(),
                Json::Obj(vec![
                    ("history".into(), Json::Str(path.clone())),
                    ("regressions".into(), Json::Num(*regressions as f64)),
                ]),
            ));
        }
        println!("{}", Json::Obj(doc).render());
    } else if args.switch("markdown") {
        println!("# starnuma report");
        println!();
        println!("ledger `{shown_path}`: {} record(s)", records.len());
        println!();
        println!("| workload | system | runs | IPC (last) | ΔIPC | p95 ns (last) | IPC trend |");
        println!("|---|---|---:|---:|---:|---:|---|");
        for g in &groups {
            let (last, delta, p95, spark) = trend_row(g);
            println!(
                "| {} | {} | {} | {last:.3} | {delta:+.3} | {p95:.0} | `{spark}` |",
                g.workload,
                g.system,
                g.records.len(),
            );
        }
        println!();
        println!("monitors: {checks} check(s), {violations} violation(s)");
        println!();
        if drift.is_empty() {
            println!("determinism drift: none");
        } else {
            println!("## determinism drift");
            println!();
            for d in &drift {
                println!(
                    "- **{} on {}** [{} seed {} config `{}`]: {} result digests ({}) across versions {}",
                    d.workload,
                    d.system,
                    d.preset,
                    d.seed,
                    digest_hex(d.config_digest),
                    d.result_digests.len(),
                    d.result_digests
                        .iter()
                        .map(|x| digest_hex(*x))
                        .collect::<Vec<_>>()
                        .join(", "),
                    d.versions.join(", "),
                );
            }
        }
        if let Some((path, table, regressions)) = &bench {
            println!();
            println!("## bench history `{path}` (first vs latest)");
            println!();
            println!("```");
            print!("{table}");
            println!("```");
            println!();
            println!("{regressions} regression(s) beyond the tolerance band");
        }
    } else {
        println!("run ledger {shown_path}: {} record(s)", records.len());
        if !groups.is_empty() {
            println!("experiment trends (oldest -> newest):");
            println!(
                "{:<10} {:<30} {:>5} {:>10} {:>8} {:>10}  trend",
                "workload", "system", "runs", "IPC last", "dIPC", "p95(ns)"
            );
            for g in &groups {
                let (last, delta, p95, spark) = trend_row(g);
                println!(
                    "{:<10} {:<30} {:>5} {last:>10.3} {delta:>+8.3} {p95:>10.0}  |{spark}|",
                    g.workload,
                    g.system,
                    g.records.len(),
                );
            }
        }
        println!("monitors: {checks} check(s), {violations} violation(s)");
        if drift.is_empty() {
            println!("determinism drift: none");
        } else {
            println!("determinism drift: {} flag(s)", drift.len());
            for d in &drift {
                println!(
                    "  {} on {} [{} seed {} config {}]: {} result digests across versions {}",
                    d.workload,
                    d.system,
                    d.preset,
                    d.seed,
                    digest_hex(d.config_digest),
                    d.result_digests.len(),
                    d.versions.join(", "),
                );
                for x in &d.result_digests {
                    println!("    {}", digest_hex(*x));
                }
            }
        }
        if let Some((path, table, regressions)) = &bench {
            println!(
                "bench history {path} (first vs latest, tolerance {:.0}%):",
                tolerance * 100.0
            );
            print!("{table}");
            println!("{regressions} regression(s) beyond the tolerance band");
        }
    }
    if violations > 0 || !drift.is_empty() {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// One run's worth of parsed trace lines: the `meta` header plus its
/// `event`/`hist`/`counters` lines. A multi-run file (from `compare` or
/// `sweep --trace-out`) concatenates sections.
#[derive(Default)]
struct TraceSection {
    meta: BTreeMap<String, JsonValue>,
    events: Vec<BTreeMap<String, JsonValue>>,
    hists: Vec<BTreeMap<String, JsonValue>>,
    counters: BTreeMap<String, JsonValue>,
}

fn num_of(obj: &BTreeMap<String, JsonValue>, key: &str) -> f64 {
    obj.get(key).and_then(JsonValue::as_num).unwrap_or(0.0)
}

fn str_of<'a>(obj: &'a BTreeMap<String, JsonValue>, key: &str) -> &'a str {
    obj.get(key).and_then(JsonValue::as_str).unwrap_or("?")
}

/// Parses a `--trace-out` JSONL file into sections, one per `meta` line.
fn parse_trace_file(path: &str) -> Result<Vec<TraceSection>, ArgError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let mut sections: Vec<TraceSection> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = parse_flat_object(line)
            .ok_or_else(|| ArgError(format!("{path}:{}: not a flat JSON object line", i + 1)))?;
        match obj.get("type").and_then(JsonValue::as_str) {
            Some("meta") => sections.push(TraceSection {
                meta: obj,
                ..TraceSection::default()
            }),
            Some(kind) => {
                let section = sections.last_mut().ok_or_else(|| {
                    ArgError(format!(
                        "{path}:{}: '{kind}' line before any meta line",
                        i + 1
                    ))
                })?;
                match kind {
                    "event" => section.events.push(obj),
                    "hist" => section.hists.push(obj),
                    "counters" => section.counters = obj,
                    other => {
                        return Err(ArgError(format!(
                            "{path}:{}: unknown line type '{other}'",
                            i + 1
                        )))
                    }
                }
            }
            None => {
                return Err(ArgError(format!(
                    "{path}:{}: line has no type field",
                    i + 1
                )));
            }
        }
    }
    if sections.is_empty() {
        return Err(ArgError(format!(
            "{path}: no meta line — not a starnuma trace"
        )));
    }
    Ok(sections)
}

/// A 32-column sparkline over histogram buckets (log2-ns, bucket i covers
/// `[2^(i-1), 2^i)` ns).
fn sparkline(buckets: &[f64]) -> String {
    const LEVELS: [char; 5] = [' ', '.', ':', '*', '#'];
    let max = buckets.iter().cloned().fold(0.0_f64, f64::max);
    buckets
        .iter()
        .map(|&b| {
            if b <= 0.0 || max <= 0.0 {
                LEVELS[0]
            } else {
                // Non-empty buckets always render at least a '.'.
                let idx = 1 + ((b / max) * (LEVELS.len() - 2) as f64).round() as usize;
                LEVELS[idx.min(LEVELS.len() - 1)]
            }
        })
        .collect()
}

fn render_section(section: &TraceSection, top: usize) {
    let m = &section.meta;
    println!(
        "== {} on {} [{} seed {} jobs {} v{}] — {} events ({} dropped)",
        str_of(m, "workload"),
        str_of(m, "system"),
        str_of(m, "preset"),
        num_of(m, "seed"),
        num_of(m, "jobs"),
        str_of(m, "version"),
        num_of(m, "events"),
        num_of(m, "dropped_events"),
    );

    // Migration-decision timeline: per phase, the checkpoint summary plus
    // aggregated policy events.
    let max_phase = section
        .events
        .iter()
        .map(|e| num_of(e, "phase") as u64)
        .max();
    if section.events.is_empty() {
        // Zero-event traces are legal (a run can complete without a single
        // journal event); say so instead of printing an empty timeline.
        println!("  (no events recorded)");
    }
    if let Some(max_phase) = max_phase {
        println!("migration timeline:");
        for phase in 0..=max_phase {
            let in_phase: Vec<_> = section
                .events
                .iter()
                .filter(|e| num_of(e, "phase") as u64 == phase)
                .collect();
            if in_phase.is_empty() {
                // A phase no event mentions has nothing to report; a
                // placeholder "0 regions -> 0 pages" row would just be
                // noise.
                continue;
            }
            let mut line = format!("  phase {phase}:");
            if let Some(cp) = in_phase
                .iter()
                .find(|e| str_of(e, "name") == "phase_checkpoint")
            {
                line += &format!(
                    " planned {} modeled {} (budget {})",
                    num_of(cp, "planned_moves"),
                    num_of(cp, "modeled_moves"),
                    num_of(cp, "budget_pages"),
                );
            }
            let migrated: Vec<_> = in_phase
                .iter()
                .filter(|e| str_of(e, "name") == "region_migrated")
                .collect();
            let pages: u64 = migrated.iter().map(|e| num_of(e, "pages") as u64).sum();
            line += &format!(" | {} regions -> {pages} pages", migrated.len());
            let evictions = in_phase
                .iter()
                .filter(|e| str_of(e, "name") == "pool_victim_evicted")
                .count();
            if evictions > 0 {
                line += &format!(" | {evictions} evictions");
            }
            let pressure = in_phase
                .iter()
                .filter(|e| str_of(e, "cat") == "pool_pressure" && str_of(e, "level") == "warn")
                .count();
            if pressure > 0 {
                line += &format!(" | {pressure} pool-pressure warnings");
            }
            if let Some(adapt) = in_phase
                .iter()
                .rfind(|e| str_of(e, "name") == "hi_threshold_adapted")
            {
                line += &format!(
                    " | hi {} -> {}",
                    num_of(adapt, "old_hi"),
                    num_of(adapt, "new_hi")
                );
            }
            if in_phase
                .iter()
                .any(|e| str_of(e, "name") == "migration_limit_reached")
            {
                line += " | LIMIT HIT";
            }
            println!("{line}");
        }
    }

    // Top-N migrated regions by pages moved.
    let mut per_region: BTreeMap<u64, (f64, usize, String)> = BTreeMap::new();
    for e in &section.events {
        if str_of(e, "name") != "region_migrated" {
            continue;
        }
        let entry = per_region
            .entry(num_of(e, "region") as u64)
            .or_insert((0.0, 0, String::new()));
        entry.0 += num_of(e, "pages");
        entry.1 += 1;
        entry.2 = str_of(e, "dest").to_string();
    }
    if !per_region.is_empty() {
        let mut ranked: Vec<_> = per_region.into_iter().collect();
        ranked.sort_by(|a, b| {
            b.1 .0
                .partial_cmp(&a.1 .0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        println!("top {} migrated regions (by pages):", top.min(ranked.len()));
        for (region, (pages, moves, dest)) in ranked.into_iter().take(top) {
            println!("  region {region:<8} {pages:>8} pages  last dest {dest:<10} ({moves} moves)");
        }
    }

    // Per-socket latency histograms (log2-ns buckets, 1 ns .. 2^31 ns).
    if !section.hists.is_empty() {
        println!("per-socket access-latency histograms (32 log2-ns buckets):");
        for h in &section.hists {
            let buckets = match h.get("buckets") {
                Some(JsonValue::Arr(b)) => b.clone(),
                _ => Vec::new(),
            };
            // An empty histogram has no p95; render `-` rather than a
            // `0 ns` that is indistinguishable from a real measurement.
            let p95 = match try_percentile_from_counts(&buckets, 0.95) {
                Some(p) => format!("{p:>7.0}"),
                None => format!("{:>7}", "-"),
            };
            println!(
                "  socket {:>3} {:<10} count {:>10} mean {:>7.0} ns p95 {p95} ns |{}|",
                num_of(h, "socket"),
                str_of(h, "class"),
                num_of(h, "count"),
                num_of(h, "mean_ns"),
                sparkline(&buckets),
            );
        }
    }

    if section.counters.len() > 1 {
        println!(
            "substrate counters: {} keys (see --trace-out JSONL)",
            section.counters.len() - 1
        );
    }
    println!();
}

/// The `args` payload for a Chrome event: every journal field except the
/// envelope (`type`/`seq`/`phase`/`cat`/`name`) and the `edge` pairing
/// marker, with `level` always first.
fn chrome_args(e: &BTreeMap<String, JsonValue>) -> Json {
    let mut event_args = vec![(
        "level".to_string(),
        Json::Str(str_of(e, "level").to_string()),
    )];
    for (k, v) in e {
        if matches!(
            k.as_str(),
            "type" | "seq" | "phase" | "level" | "cat" | "name" | "edge"
        ) {
            continue;
        }
        let value = match v {
            JsonValue::Num(n) => Json::Num(*n),
            JsonValue::Str(s) => Json::Str(s.clone()),
            JsonValue::Arr(a) => Json::Arr(a.iter().map(|n| Json::Num(*n)).collect()),
        };
        event_args.push((k.clone(), value));
    }
    Json::Obj(event_args)
}

/// Converts parsed event lines back into Chrome `trace_event` JSON,
/// pairing `phase_checkpoint` begin/end edge markers into one duration
/// (`"ph":"X"`) span per phase — the same pairing [`starnuma::obs`]'s own
/// exporter performs. Unpaired or edge-less events stay instants.
fn chrome_from_sections(sections: &[TraceSection]) -> String {
    let mut trace_events = Vec::new();
    for section in sections {
        let mut spans: BTreeMap<u64, (Option<usize>, Option<usize>)> = BTreeMap::new();
        for (i, e) in section.events.iter().enumerate() {
            if str_of(e, "name") != "phase_checkpoint" {
                continue;
            }
            let Some(edge) = e.get("edge").and_then(JsonValue::as_str) else {
                continue;
            };
            let entry = spans
                .entry(num_of(e, "phase") as u64)
                .or_insert((None, None));
            match edge {
                "begin" if entry.0.is_none() => entry.0 = Some(i),
                "end" if entry.1.is_none() => entry.1 = Some(i),
                _ => {}
            }
        }
        let mut paired: Vec<(u64, usize, usize)> = Vec::new();
        let mut consumed = vec![false; section.events.len()];
        for (phase, (begin, end)) in spans {
            if let (Some(bi), Some(ei)) = (begin, end) {
                consumed[bi] = true;
                consumed[ei] = true;
                paired.push((phase, bi, ei));
            }
        }
        for (i, e) in section.events.iter().enumerate() {
            if consumed[i] {
                continue;
            }
            trace_events.push(Json::Obj(vec![
                ("name".into(), Json::Str(str_of(e, "name").into())),
                ("cat".into(), Json::Str(str_of(e, "cat").into())),
                ("ph".into(), Json::Str("i".into())),
                ("ts".into(), Json::Num(num_of(e, "seq"))),
                ("pid".into(), Json::Num(0.0)),
                ("tid".into(), Json::Num(num_of(e, "phase"))),
                ("s".into(), Json::Str("t".into())),
                ("args".into(), chrome_args(e)),
            ]));
        }
        for (phase, bi, ei) in paired {
            let begin = &section.events[bi];
            let end = &section.events[ei];
            let dur = (num_of(end, "seq") - num_of(begin, "seq")).max(0.0);
            trace_events.push(Json::Obj(vec![
                ("name".into(), Json::Str(str_of(begin, "name").into())),
                ("cat".into(), Json::Str(str_of(begin, "cat").into())),
                ("ph".into(), Json::Str("X".into())),
                ("ts".into(), Json::Num(num_of(begin, "seq"))),
                ("dur".into(), Json::Num(dur)),
                ("pid".into(), Json::Num(0.0)),
                ("tid".into(), Json::Num(phase as f64)),
                ("args".into(), chrome_args(begin)),
            ]));
        }
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(trace_events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ])
    .render()
}

/// `starnuma inspect [<trace.jsonl>] [--top N] [--chrome PATH]
/// [--profile PATH]`: renders a human summary of a `--trace-out` file —
/// run identity, the per-phase migration-decision timeline, the
/// most-migrated regions, and per-socket access-latency histograms — and
/// can re-emit the journal as Chrome `trace_event` JSON for
/// `about://tracing` / Perfetto. `--profile` renders a saved
/// `profile.json` attribution tree (alone, or alongside a trace).
pub fn cmd_inspect(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["top", "chrome", "profile"])?;
    if let Some(profile_path) = args.get("profile") {
        let text = std::fs::read_to_string(profile_path)
            .map_err(|e| ArgError(format!("cannot read {profile_path}: {e}")))?;
        let saved = prof::ProfReport::from_json(&text)
            .ok_or_else(|| ArgError(format!("{profile_path}: not a starnuma profile.json")))?;
        println!("{profile_path}: `starnuma {}`", saved.command);
        print!("{}", saved.report.render_tree(saved.wall_ns));
        println!();
    }
    let path = match args.subcommand() {
        Some(path) => path,
        None if args.get("profile").is_some() => return Ok(()),
        None => {
            return Err(ArgError(
                "inspect needs a trace file: starnuma inspect <trace.jsonl>".into(),
            ))
        }
    };
    let top = args.get_u64("top", 10)? as usize;
    let sections = parse_trace_file(path)?;
    for section in &sections {
        render_section(section, top);
    }
    if let Some(out) = args.get("chrome") {
        write_out(out, &chrome_from_sections(&sections))?;
        println!("wrote Chrome trace_event JSON to {out}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn bench_diff_is_direction_aware() {
        let old = metrics(&[
            ("hot.minstr_per_sec", 100.0),
            ("prof.disabled_ns_per_scope", 2.0),
            ("misc.count", 10.0),
        ]);
        // Throughput down 30% and overhead up 50%: both regress at 20%.
        let new = metrics(&[
            ("hot.minstr_per_sec", 70.0),
            ("prof.disabled_ns_per_scope", 3.0),
            ("misc.count", 99.0),
        ]);
        let (table, regressions) = bench_diff_report(&old, &new, 0.2);
        assert_eq!(regressions, 2);
        assert!(table.contains("REGRESSION"));
        // The direction-less key is informational however far it moves.
        assert!(table.contains("misc.count"));
        assert!(table.contains("info"));
        // Generous tolerance clears both.
        let (_, regressions) = bench_diff_report(&old, &new, 0.6);
        assert_eq!(regressions, 0);
    }

    #[test]
    fn bench_diff_improvements_are_not_regressions() {
        let old = metrics(&[
            ("hot.minstr_per_sec", 100.0),
            ("prof.disabled_ns_per_scope", 2.0),
        ]);
        let new = metrics(&[
            ("hot.minstr_per_sec", 300.0),
            ("prof.disabled_ns_per_scope", 0.5),
        ]);
        let (_, regressions) = bench_diff_report(&old, &new, 0.05);
        assert_eq!(regressions, 0);
    }

    #[test]
    fn bench_diff_reports_added_and_removed_metrics() {
        let old = metrics(&[("gone.speedup", 2.0)]);
        let new = metrics(&[("fresh.speedup", 3.0)]);
        let (table, regressions) = bench_diff_report(&old, &new, 0.2);
        assert_eq!(regressions, 0);
        assert!(table.contains("(metric removed)"));
        assert!(table.contains("(new metric)"));
    }

    #[test]
    fn bench_metrics_load_merges_history_lines() {
        let dir = std::env::temp_dir().join("starnuma-cli-bench-load-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("history.jsonl");
        let path_s = path.to_str().expect("utf-8 path");
        std::fs::write(
            &path,
            "{\"bench\": \"hot\", \"schema_version\": 1, \"a.x_ns\": 5}\n\
             {\"bench\": \"hot\", \"schema_version\": 1, \"a.x_ns\": 7, \"b.per_sec\": 2}\n",
        )
        .expect("write history");
        let m = load_bench_metrics(path_s).expect("loads");
        // Later lines supersede earlier ones; identity keys are dropped.
        assert_eq!(m.get("a.x_ns"), Some(&7.0));
        assert_eq!(m.get("b.per_sec"), Some(&2.0));
        assert!(!m.contains_key("bench"));
        assert!(!m.contains_key("schema_version"));
        assert!(load_bench_metrics("/nonexistent/x").is_err());
        let _ = std::fs::remove_file(path);
    }
}
