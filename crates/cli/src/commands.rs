//! Implementation of the CLI commands.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use std::collections::BTreeMap;

use starnuma::report::{run_result_json, Json};
use starnuma::{
    geomean, AccessClass, CxlLatencyBreakdown, Experiment, JobPool, LatencyModel, RunResult,
    ScaleConfig, SystemKind, TraceGenerator, Workload,
};
use starnuma_migration::ReplicationConfig;
use starnuma_topology::SystemParams;
use starnuma_trace::{read_phase, write_phase, SharingHistogram};
use starnuma_types::{Location, SocketId};

use crate::args::{ArgError, Args};

/// Resolves a workload name (`bfs`, `BFS`, ...).
pub fn parse_workload(name: &str) -> Result<Workload, ArgError> {
    Workload::ALL
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            ArgError(format!(
                "unknown workload '{name}' (expected one of: {})",
                Workload::ALL.map(|w| w.name().to_lowercase()).join(", ")
            ))
        })
}

/// Resolves a system-kind name.
pub fn parse_system(name: &str) -> Result<SystemKind, ArgError> {
    let key = name.to_ascii_lowercase().replace(['-', '_'], "");
    let kind = match key.as_str() {
        "baseline" => SystemKind::Baseline,
        "baselinefirsttouch" | "firsttouch" => SystemKind::BaselineFirstTouch,
        "baselineisobw" | "isobw" => SystemKind::BaselineIsoBw,
        "baseline2xbw" | "2xbw" => SystemKind::Baseline2xBw,
        "baselinestatic" | "baselinestaticoracle" => SystemKind::BaselineStaticOracle,
        "starnuma" | "t16" => SystemKind::StarNuma,
        "starnumat0" | "t0" => SystemKind::StarNumaT0,
        "starnumahalfbw" | "halfbw" => SystemKind::StarNumaHalfBw,
        "starnumacxlswitch" | "cxlswitch" => SystemKind::StarNumaCxlSwitch,
        "starnumasmallpool" | "smallpool" => SystemKind::StarNumaSmallPool,
        "starnumastatic" | "starnumastaticoracle" => SystemKind::StarNumaStaticOracle,
        _ => {
            return Err(ArgError(format!(
                "unknown system '{name}' (try: baseline, starnuma, t0, isobw, \
                 2xbw, halfbw, cxlswitch, smallpool, baseline-static, \
                 starnuma-static, first-touch)"
            )))
        }
    };
    Ok(kind)
}

/// Resolves the worker count for multi-run commands and installs it as the
/// process-global [`JobPool`] setting: `--jobs N` wins, else `STARNUMA_JOBS`
/// (validated here, at harness entry — a typo is an error, not a silent
/// fallback), else the host's available parallelism.
pub fn configure_jobs(args: &Args) -> Result<(), ArgError> {
    let workers = match args.get("jobs") {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| ArgError(format!("--jobs expects a positive integer, got '{v}'")))?,
        None => JobPool::from_env()
            .map_err(|e| ArgError(e.to_string()))?
            .workers(),
    };
    starnuma::set_global_jobs(workers);
    Ok(())
}

/// Builds a [`ScaleConfig`] from `--scale/--phases/--instructions/--seed`.
pub fn parse_scale(args: &Args) -> Result<ScaleConfig, ArgError> {
    let mut scale = match args.get_or("scale", "default") {
        "quick" => ScaleConfig::quick(),
        "default" => ScaleConfig::default_scale(),
        "full" => ScaleConfig::full(),
        other => {
            return Err(ArgError(format!(
                "unknown scale '{other}' (quick|default|full)"
            )))
        }
    };
    scale.phases = args.get_u64("phases", scale.phases as u64)? as usize;
    scale.instructions_per_phase = args.get_u64("instructions", scale.instructions_per_phase)?;
    scale.seed = args.get_u64("seed", scale.seed)?;
    Ok(scale)
}

/// `starnuma run --workload W --system S [--replication FRAC] [--json]`
pub fn cmd_run(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "workload",
        "system",
        "scale",
        "phases",
        "instructions",
        "seed",
        "jobs",
        "json",
        "replication",
    ])?;
    configure_jobs(args)?;
    let workload = parse_workload(args.require("workload")?)?;
    let system = parse_system(args.get_or("system", "starnuma"))?;
    let scale = parse_scale(args)?;
    let result = match args.get("replication") {
        None => Experiment::new(workload, system, scale).run(),
        Some(frac) => {
            let frac: f64 = frac
                .parse()
                .map_err(|_| ArgError(format!("--replication expects a fraction, got '{frac}'")))?;
            if !(0.0..=1.0).contains(&frac) {
                return Err(ArgError("--replication must be in [0, 1]".into()));
            }
            let mut cfg = Experiment::new(workload, system, scale).run_config();
            cfg.replication = Some(ReplicationConfig::with_budget_frac(
                workload.profile().footprint_pages,
                frac,
            ));
            starnuma::Runner::new(workload.profile(), cfg).run()
        }
    };
    if args.switch("json") {
        println!("{}", run_result_json(workload, system, &result).render());
        return Ok(());
    }
    println!("{workload} on {system}");
    println!("  per-core IPC      {:.3}", result.ipc);
    println!(
        "  AMAT              {:.0} ns ({:.0} unloaded + {:.0} contention)",
        result.amat_ns, result.unloaded_amat_ns, result.contention_ns
    );
    println!("  observed MPKI     {:.1}", result.mpki);
    println!(
        "  migrations        {} pages ({:.0}% to pool)",
        result.pages_migrated,
        result.pool_migration_frac() * 100.0
    );
    println!("  access breakdown:");
    for (i, class) in AccessClass::ALL.iter().enumerate() {
        if result.class_fracs[i] > 0.0005 {
            println!(
                "    {:<10} {:>5.1}%  (mean {:.0} ns)",
                class.label(),
                result.class_fracs[i] * 100.0,
                result.class_mean_ns[i]
            );
        }
    }
    if let Some(reps) = result.replication {
        println!(
            "  replication       {} regions, peak {} pages, {} collapses",
            reps.regions_replicated, reps.peak_replica_pages, reps.collapses
        );
    }
    Ok(())
}

/// `starnuma compare --workload W [--systems a,b,...] [--json]`
pub fn cmd_compare(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "workload",
        "systems",
        "scale",
        "phases",
        "instructions",
        "seed",
        "jobs",
        "json",
    ])?;
    configure_jobs(args)?;
    let workload = parse_workload(args.require("workload")?)?;
    let systems: Vec<SystemKind> = args
        .get_or("systems", "baseline,starnuma,t0")
        .split(',')
        .map(parse_system)
        .collect::<Result<_, _>>()?;
    let scale = parse_scale(args)?;
    // Fan every distinct system (plus the baseline, which anchors the
    // speedup column) out on the job pool; results are keyed for the
    // requested row order below.
    let mut distinct = vec![SystemKind::Baseline];
    for s in &systems {
        if !distinct.contains(s) {
            distinct.push(*s);
        }
    }
    let computed: BTreeMap<SystemKind, RunResult> = JobPool::global()
        .run(distinct, |_, system| {
            (
                system,
                Experiment::new(workload, system, scale.clone()).run(),
            )
        })
        .into_iter()
        .collect();
    let baseline = computed[&SystemKind::Baseline].clone();
    let rows: Vec<(SystemKind, RunResult)> = systems
        .into_iter()
        .map(|s| (s, computed[&s].clone()))
        .collect();
    if args.switch("json") {
        let arr = Json::Arr(
            rows.iter()
                .map(|(s, r)| run_result_json(workload, *s, r))
                .collect(),
        );
        println!("{}", arr.render());
        return Ok(());
    }
    println!("{workload}: comparison against {}", SystemKind::Baseline);
    println!(
        "{:<30} {:>8} {:>9} {:>9} {:>8}",
        "system", "IPC", "AMAT(ns)", "cont.(ns)", "speedup"
    );
    for (system, r) in &rows {
        println!(
            "{:<30} {:>8.3} {:>9.0} {:>9.0} {:>7.2}x",
            system.label(),
            r.ipc,
            r.amat_ns,
            r.contention_ns,
            r.ipc / baseline.ipc
        );
    }
    Ok(())
}

/// `starnuma sweep --system S [--workloads a,b,...] [--json]`
pub fn cmd_sweep(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[
        "system",
        "workloads",
        "scale",
        "phases",
        "instructions",
        "seed",
        "jobs",
        "json",
    ])?;
    configure_jobs(args)?;
    let system = parse_system(args.get_or("system", "starnuma"))?;
    let workloads: Vec<Workload> = match args.get("workloads") {
        None => Workload::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(parse_workload)
            .collect::<Result<_, _>>()?,
    };
    let scale = parse_scale(args)?;
    // One job per workload; each job runs the system and its baseline.
    let rows: Vec<(&str, f64)> = JobPool::global().run(workloads, |_, w| {
        let (speedup, _, _) = starnuma::speedup_vs_baseline(w, system, &scale);
        (w.name(), speedup)
    });
    if args.switch("json") {
        let arr = Json::Arr(
            rows.iter()
                .map(|(name, s)| {
                    Json::Obj(vec![
                        ("workload".into(), Json::Str((*name).into())),
                        ("system".into(), Json::Str(system.label().into())),
                        ("speedup".into(), Json::Num(*s)),
                    ])
                })
                .collect(),
        );
        println!("{}", arr.render());
        return Ok(());
    }
    println!(
        "speedup of {system} over {} per workload:\n",
        SystemKind::Baseline
    );
    print!("{}", starnuma::chart::speedup_chart(&rows, 40));
    let speedups: Vec<f64> = rows.iter().map(|(_, s)| *s).collect();
    println!("{:<10} geomean {:.2}x", "", geomean(&speedups));
    Ok(())
}

/// `starnuma topology [--sockets N] [--full-scale] [--dot PATH]`
pub fn cmd_topology(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&["sockets", "full-scale", "dot"])?;
    let sockets = args.get_u64("sockets", 16)? as usize;
    let base = if args.switch("full-scale") {
        SystemParams::full_scale_starnuma()
    } else {
        SystemParams::scaled_starnuma()
    };
    let params = base
        .with_num_sockets(sockets)
        .map_err(|e| ArgError(e.to_string()))?;
    if let Some(path) = args.get("dot") {
        std::fs::write(path, starnuma_topology::to_dot(&params))
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        println!("wrote GraphViz topology to {path}");
        return Ok(());
    }
    let m = LatencyModel::new(params.clone());
    println!(
        "{} sockets in {} chassis, {} cores, pool: yes",
        params.num_sockets,
        params.num_chassis(),
        params.total_cores()
    );
    let s0 = SocketId::new(0);
    println!("unloaded latencies from socket 0:");
    println!("  local   {}", m.demand_access(s0, Location::Socket(s0)));
    println!(
        "  1-hop   {}",
        m.demand_access(s0, Location::Socket(SocketId::new(1)))
    );
    println!(
        "  2-hop   {}",
        m.demand_access(s0, Location::Socket(SocketId::new(4)))
    );
    println!("  pool    {}", m.demand_access(s0, Location::Pool));
    println!(
        "block transfers: 3-hop avg {}, 4-hop via pool {}",
        m.average_three_hop_transfer(),
        m.four_hop_pool_transfer()
    );
    let b = CxlLatencyBreakdown::paper();
    println!(
        "CXL breakdown: {} + {} + {} + {} + {} = {} penalty",
        b.cpu_port,
        b.mhd_port,
        b.retimer,
        b.flight,
        b.mhd_internal,
        b.total()
    );
    Ok(())
}

/// `starnuma workloads`
pub fn cmd_workloads(args: &Args) -> Result<(), ArgError> {
    args.expect_only(&[])?;
    println!(
        "{:<10} {:>7} {:>8} {:>5} {:>12} {:>8}",
        "workload", "MPKI", "IPC(1s)", "MLP", "footprint", "classes"
    );
    for w in Workload::ALL {
        let p = w.profile();
        println!(
            "{:<10} {:>7.1} {:>8.2} {:>5} {:>9} pg {:>8}",
            w.name(),
            p.mpki,
            p.ipc_single_socket,
            p.mlp,
            p.footprint_pages,
            p.classes.len()
        );
    }
    Ok(())
}

/// `starnuma trace gen|info ...`
pub fn cmd_trace(args: &Args) -> Result<(), ArgError> {
    match args.subcommand() {
        Some("gen") => {
            args.expect_only(&["workload", "out", "instructions", "seed", "sockets"])?;
            let workload = parse_workload(args.require("workload")?)?;
            let out = args.require("out")?;
            let instructions = args.get_u64("instructions", 100_000)?;
            let seed = args.get_u64("seed", 42)?;
            let sockets = args.get_u64("sockets", 16)? as usize;
            let mut gen = TraceGenerator::new(&workload.profile(), sockets, 4, seed);
            let phase = gen.generate_phase(instructions);
            let file =
                File::create(out).map_err(|e| ArgError(format!("cannot create {out}: {e}")))?;
            write_phase(BufWriter::new(file), &phase)
                .map_err(|e| ArgError(format!("write failed: {e}")))?;
            println!(
                "wrote {} accesses from {} cores to {out}",
                phase.total_accesses(),
                phase.per_core.len()
            );
            Ok(())
        }
        Some("info") => {
            args.expect_only(&["in"])?;
            let path = args.require("in")?;
            let file =
                File::open(path).map_err(|e| ArgError(format!("cannot open {path}: {e}")))?;
            let phase = read_phase(BufReader::new(file))
                .map_err(|e| ArgError(format!("read failed: {e}")))?;
            let h = SharingHistogram::from_trace(&phase, 4);
            println!(
                "{path}: {} cores, {} accesses, {} pages touched",
                phase.per_core.len(),
                phase.total_accesses(),
                h.touched_pages
            );
            println!("observed sharing bins (pages / accesses):");
            for (i, bin) in h.bins().iter().enumerate() {
                println!(
                    "  {:>5}: {:>5.1}% / {:>5.1}%",
                    SharingHistogram::LABELS[i],
                    bin.page_frac * 100.0,
                    bin.access_frac * 100.0
                );
            }
            Ok(())
        }
        other => Err(ArgError(format!(
            "trace needs a subcommand gen|info, got {other:?}"
        ))),
    }
}

/// `starnuma lint [--root <path>] [--format human|json] [--json]`: runs the
/// Pass 1 source lints (SN001–SN004) over a workspace tree and exits
/// non-zero when anything is found. Findings are not an `ArgError`: the
/// invocation was fine, so no usage dump — just the report and the code.
pub fn cmd_lint(args: &Args) -> Result<ExitCode, ArgError> {
    args.expect_only(&["root", "format", "json"])?;
    let root = std::path::PathBuf::from(args.get_or("root", "."));
    let json = args.switch("json")
        || match args.get_or("format", "human") {
            "human" => false,
            "json" => true,
            other => return Err(ArgError(format!("unknown format '{other}' (human|json)"))),
        };
    let findings = starnuma_audit::lint_workspace(&root)
        .map_err(|e| ArgError(format!("cannot scan {}: {e}", root.display())))?;
    if json {
        println!("{}", starnuma_audit::render_json(&findings));
    } else {
        println!("{}", starnuma_audit::render_human(&findings));
    }
    if findings.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}
