//! `starnuma` — command-line front end for the StarNUMA reproduction.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use starnuma_cli::{run, usage};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}
