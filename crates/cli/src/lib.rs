//! Command-line front end for the StarNUMA reproduction.
//!
//! ```text
//! starnuma run      --workload bfs --system starnuma [--json]
//! starnuma compare  --workload bfs [--systems baseline,starnuma,t0]
//! starnuma sweep    --system starnuma [--workloads bfs,tc]
//! starnuma topology [--sockets 32] [--full-scale]
//! starnuma workloads
//! starnuma trace gen  --workload bfs --out bfs.sntr [--instructions N]
//! starnuma trace info --in bfs.sntr
//! starnuma profile  <run|compare|sweep> ... [--profile-out profile.json]
//! starnuma bench-diff <old> <new> [--tolerance 0.2]
//! starnuma inspect  trace.jsonl [--top N] [--chrome out.json] [--profile p.json]
//! starnuma lint     [--root .] [--format human|json|sarif] [--baseline]
//!                   [--update-baseline] [--fix] [--fix-allow] [--no-cache]
//! ```
//!
//! All simulation commands accept `--scale quick|default|full`,
//! `--phases N`, `--instructions N`, `--seed N`, and `--jobs N` (worker
//! threads for independent runs; `STARNUMA_JOBS` sets the default), plus
//! the observability flags `--trace-out <path>` (structured JSONL event
//! journal + latency histograms), `--metrics-out <path>` (per-phase and
//! merged metrics JSON), and `--progress` (live run counts on stderr).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::process::ExitCode;

mod args;
mod commands;

pub use args::{ArgError, Args};

/// Dispatches one invocation and returns the process exit code to use.
/// Commands that ran but found problems (`lint` with findings) report it
/// through the code, not through an [`ArgError`].
///
/// # Errors
///
/// Returns [`ArgError`] for unknown commands, bad flags, or I/O failures
/// (trace files).
pub fn run(raw: Vec<String>) -> Result<ExitCode, ArgError> {
    if raw.is_empty() || raw[0] == "help" || raw.iter().any(|a| a == "--help") {
        println!("{}", usage());
        return Ok(ExitCode::SUCCESS);
    }
    // `bench-diff <old> <new>` takes two positionals, which the `Args`
    // grammar does not — dispatch it on the raw tokens.
    if raw[0] == "bench-diff" {
        return commands::cmd_bench_diff(&raw[1..]);
    }
    let args = Args::parse(raw)?;
    match args.command() {
        "run" => commands::cmd_run(&args),
        "profile" => commands::cmd_profile(&args),
        "compare" => commands::cmd_compare(&args),
        "sweep" => commands::cmd_sweep(&args),
        "report" => commands::cmd_report(&args),
        "topology" => commands::cmd_topology(&args).map(|()| ExitCode::SUCCESS),
        "workloads" => commands::cmd_workloads(&args).map(|()| ExitCode::SUCCESS),
        "trace" => commands::cmd_trace(&args).map(|()| ExitCode::SUCCESS),
        "inspect" => commands::cmd_inspect(&args).map(|()| ExitCode::SUCCESS),
        "lint" => commands::cmd_lint(&args),
        other => Err(ArgError(format!("unknown command '{other}'"))),
    }
}

/// The help text.
pub fn usage() -> &'static str {
    "starnuma — StarNUMA (MICRO 2024) reproduction CLI

commands:
  run       run one experiment
              --workload <name>        (required: sssp|bfs|cc|tc|masstree|tpcc|fmi|poa)
              --system <name>          (default starnuma; see `compare`)
              --replication <frac>     enable §V-F replication with the given
                                       per-socket capacity fraction
              --json                   machine-readable output
  compare   compare systems on one workload
              --workload <name>        (required)
              --systems a,b,c          (default baseline,starnuma,t0)
  sweep     one system across workloads
              --system <name>          (default starnuma)
              --workloads a,b,c        (default: all eight)
              --json                   machine-readable output
  topology  print the machine's latency structure
              --sockets <n>            (default 16; must be a multiple of 4)
              --full-scale             Table I instead of Table II parameters
              --dot <path>             write a GraphViz rendering instead
  workloads list the workload profiles
  trace gen  generate a trace file
              --workload <name> --out <path> [--instructions N] [--seed N]
  trace info inspect a trace file
              --in <path>
  profile   run a command under the deterministic self-profiler:
            starnuma profile <run|compare|sweep> <that command's flags>
            prints the top-down wall-time attribution tree (% wall,
            total, calls, ns/call); results stay bit-identical
              --profile-out <path>     attribution JSON (default profile.json)
              --folded-out <path>      folded stacks for flamegraph tooling
  report    cross-run trends from the run ledger: per-experiment IPC
            and p95 series with sparklines, monitor totals, and
            determinism-drift flags (same config digest + seed but a
            different result digest); exits non-zero on any monitor
            violation or drift flag
              --ledger <dir>           ledger directory (or STARNUMA_LEDGER)
              --bench-history <path>   also diff a BENCH_history.jsonl
                                       first-vs-latest (default: the file
                                       in the working directory, if any)
              --tolerance <frac>       bench regression band (default 0.2)
              --json | --markdown      machine-readable / markdown output
  bench-diff compare two bench-metric files (flat JSON object or
            BENCH_history.jsonl; later history lines supersede earlier):
            starnuma bench-diff <old> <new> [--tolerance FRAC]
            exits non-zero when a metric regresses beyond the band
            in its known-good direction (default tolerance 0.2)
  inspect   summarize a --trace-out JSONL file: run identity, the
            per-phase migration timeline, top migrated regions, and
            per-socket access-latency histograms (mean + p95)
              --top <n>                regions to list (default 10)
              --chrome <path>          also write Chrome trace_event JSON
                                       (open in about://tracing / Perfetto;
                                       checkpoint begin/end pairs render as
                                       duration spans)
              --profile <path>         render a profile.json attribution
                                       tree (trace file then optional)
  lint      run the SN001–SN012 static analyzer over a workspace tree
            (source lints, dataflow determinism lints, manifest drift)
              --root <path>            (default .)
              --format human|json|sarif (default human; --json is a
                                       shorthand for --format json)
              --sarif <path>           also write a SARIF 2.1.0 file
              --baseline               subtract ci/lint_baseline.json from
                                       the exit-code calculation
              --baseline-file <path>   use a different baseline file
              --update-baseline        rewrite the baseline from current
                                       findings and exit 0
              --fix                    apply safe rewrites (HashMap→DetMap,
                                       keyed sort_unstable→stable, missing
                                       crate-root attrs), then re-lint
              --fix-allow              afterwards, insert audit:allow
                                       markers for whatever remains
              --no-cache               skip target/audit-cache.json

common simulation flags:
  --scale quick|default|full   --phases N   --instructions N   --seed N
  --jobs N    worker threads for independent runs (default: STARNUMA_JOBS,
              else all cores; results are bit-identical at any worker count)

observability (run, compare, sweep):
  --trace-out <path>    structured JSONL: events + per-socket histograms
  --metrics-out <path>  per-phase + merged metrics JSON
  --progress            live `k/n runs complete` + ETA lines on stderr
  --ledger <dir>        append one schema-versioned record per run to
                        <dir>/runs.jsonl (or set STARNUMA_LEDGER);
                        read it back with `starnuma report`
  --strict-monitors     exit non-zero if any online invariant monitor
                        (pool occupancy, migration limit, histogram
                        totals, counter monotonicity) fires
  --inject-monitor-fault <name>  (run only) force the named monitor to
                        fire once, to test the monitoring path itself

systems: baseline, first-touch, isobw, 2xbw, baseline-static,
         starnuma (t16), t0, halfbw, cxlswitch, smallpool, starnuma-static"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_tokens(tokens: &[&str]) -> Result<ExitCode, ArgError> {
        run(tokens.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn help_paths_succeed() {
        assert!(run_tokens(&[]).is_ok());
        assert!(run_tokens(&["help"]).is_ok());
        assert!(run_tokens(&["run", "--help"]).is_ok());
    }

    #[test]
    fn unknown_command_fails() {
        let e = run_tokens(&["frobnicate"]).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
    }

    #[test]
    fn workloads_and_topology_commands_work() {
        assert!(run_tokens(&["workloads"]).is_ok());
        assert!(run_tokens(&["topology"]).is_ok());
        assert!(run_tokens(&["topology", "--sockets", "32", "--full-scale"]).is_ok());
        assert!(run_tokens(&["topology", "--sockets", "13"]).is_err());
    }

    #[test]
    fn run_command_validates_flags() {
        let e = run_tokens(&["run"]).unwrap_err();
        assert!(e.to_string().contains("--workload"));
        let e = run_tokens(&["run", "--workload", "nope"]).unwrap_err();
        assert!(e.to_string().contains("unknown workload"));
        let e = run_tokens(&["run", "--workload", "bfs", "--system", "nope"]).unwrap_err();
        assert!(e.to_string().contains("unknown system"));
        let e = run_tokens(&["run", "--workload", "bfs", "--scale", "huge"]).unwrap_err();
        assert!(e.to_string().contains("unknown scale"));
    }

    #[test]
    fn run_executes_a_tiny_experiment() {
        assert!(run_tokens(&[
            "run",
            "--workload",
            "poa",
            "--system",
            "starnuma",
            "--scale",
            "quick",
            "--phases",
            "1",
            "--instructions",
            "4000",
            "--json",
        ])
        .is_ok());
    }

    #[test]
    fn jobs_flag_is_validated() {
        assert!(run_tokens(&[
            "run",
            "--workload",
            "poa",
            "--scale",
            "quick",
            "--phases",
            "1",
            "--instructions",
            "2000",
            "--jobs",
            "2",
            "--json",
        ])
        .is_ok());
        let e = run_tokens(&["run", "--workload", "poa", "--jobs", "0"]).unwrap_err();
        assert!(e.to_string().contains("--jobs"));
        let e = run_tokens(&["run", "--workload", "poa", "--jobs", "many"]).unwrap_err();
        assert!(e.to_string().contains("--jobs"));
    }

    #[test]
    fn sweep_json_is_machine_readable() {
        assert!(run_tokens(&[
            "sweep",
            "--workloads",
            "poa",
            "--scale",
            "quick",
            "--phases",
            "1",
            "--instructions",
            "2000",
            "--jobs",
            "2",
            "--json",
        ])
        .is_ok());
    }

    #[test]
    fn trace_roundtrip_via_cli() {
        let dir = std::env::temp_dir().join("starnuma-cli-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("t.sntr");
        let path_s = path.to_str().expect("utf-8 path");
        assert!(run_tokens(&[
            "trace",
            "gen",
            "--workload",
            "tpcc",
            "--out",
            path_s,
            "--instructions",
            "3000",
        ])
        .is_ok());
        assert!(run_tokens(&["trace", "info", "--in", path_s]).is_ok());
        assert!(run_tokens(&["trace", "info", "--in", "/nonexistent/x"]).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn profile_wraps_a_run_and_roundtrips_through_inspect() {
        let dir = std::env::temp_dir().join("starnuma-cli-profile-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let out = dir.join("profile.json");
        let folded = dir.join("profile.folded");
        let out_s = out.to_str().expect("utf-8 path");
        let folded_s = folded.to_str().expect("utf-8 path");
        assert!(run_tokens(&[
            "profile",
            "run",
            "--workload",
            "bfs",
            "--scale",
            "quick",
            "--phases",
            "1",
            "--instructions",
            "4000",
            "--jobs",
            "1",
            "--profile-out",
            out_s,
            "--folded-out",
            folded_s,
        ])
        .is_ok());
        let saved = std::fs::read_to_string(&out).expect("profile.json written");
        assert!(saved.contains("\"schema_version\": 1"));
        assert!(saved.contains("timing"));
        let stacks = std::fs::read_to_string(&folded).expect("folded written");
        assert!(stacks.lines().all(|l| l.starts_with("starnuma")));
        assert!(run_tokens(&["inspect", "--profile", out_s]).is_ok());
        assert!(run_tokens(&["profile", "topology"]).is_err());
        assert!(run_tokens(&["profile"]).is_err());
        let _ = std::fs::remove_file(out);
        let _ = std::fs::remove_file(folded);
    }

    #[test]
    fn bench_diff_validates_inputs() {
        let dir = std::env::temp_dir().join("starnuma-cli-bench-diff-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let old = dir.join("old.json");
        let new = dir.join("new.jsonl");
        let old_s = old.to_str().expect("utf-8 path");
        let new_s = new.to_str().expect("utf-8 path");
        std::fs::write(
            &old,
            "{\"hot.minstr_per_sec\": 100.0, \"prof.ns_per_scope\": 2.0}\n",
        )
        .expect("write old");
        std::fs::write(
            &new,
            "{\"bench\": \"hot\", \"schema_version\": 1, \"hot.minstr_per_sec\": 95.0}\n\
             {\"bench\": \"prof\", \"schema_version\": 1, \"prof.ns_per_scope\": 2.1}\n",
        )
        .expect("write new");
        assert!(run_tokens(&["bench-diff", old_s, new_s, "--tolerance", "0.25"]).is_ok());
        assert!(run_tokens(&["bench-diff", old_s]).is_err());
        assert!(run_tokens(&["bench-diff", old_s, new_s, "--tolerance", "nope"]).is_err());
        assert!(run_tokens(&["bench-diff", old_s, new_s, "--frobnicate"]).is_err());
        assert!(run_tokens(&["bench-diff", old_s, "/nonexistent/x"]).is_err());
        let _ = std::fs::remove_file(old);
        let _ = std::fs::remove_file(new);
    }

    #[test]
    fn trace_requires_subcommand() {
        let e = run_tokens(&["trace", "--workload", "bfs"]).unwrap_err();
        assert!(e.to_string().contains("subcommand"));
    }
}
