//! Dependency-free command-line argument parsing.
//!
//! Grammar: `starnuma <command> [--flag value]... [--switch]...`.
//! Unknown flags are errors; every command documents its flags in
//! [`crate::usage`].

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: the command word plus `--flag value` pairs.
#[derive(Clone, Debug, Default)]
pub struct Args {
    command: String,
    subcommand: Option<String>,
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// A command-line parsing or validation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Flags that take no value.
const SWITCHES: &[&str] = &[
    "json",
    "full-scale",
    "help",
    "progress",
    "baseline",
    "update-baseline",
    "fix",
    "fix-allow",
    "no-cache",
    "strict-monitors",
    "markdown",
];

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when no command is given, a flag is missing its
    /// value, or a positional argument appears where none is expected.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut iter = raw.into_iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| ArgError("missing command; try `starnuma help`".into()))?;
        let mut args = Args {
            command,
            ..Args::default()
        };
        // `trace gen` / `trace info` style subcommand.
        if let Some(next) = iter.peek() {
            if !next.starts_with("--") {
                args.subcommand = iter.next();
            }
        }
        while let Some(token) = iter.next() {
            let Some(name) = token.strip_prefix("--") else {
                return Err(ArgError(format!(
                    "unexpected positional argument '{token}'"
                )));
            };
            if SWITCHES.contains(&name) {
                args.switches.push(name.to_string());
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| ArgError(format!("flag --{name} requires a value")))?;
            if args.flags.insert(name.to_string(), value).is_some() {
                return Err(ArgError(format!("flag --{name} given twice")));
            }
        }
        Ok(args)
    }

    /// The command word (`run`, `compare`, ...).
    pub fn command(&self) -> &str {
        &self.command
    }

    /// The optional subcommand (`trace gen` → `gen`).
    pub fn subcommand(&self) -> Option<&str> {
        self.subcommand.as_deref()
    }

    /// A string flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A string flag with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.get(name).unwrap_or(default)
    }

    /// A required flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if the flag is absent.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError(format!("missing required flag --{name}")))
    }

    /// An integer flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if the value does not parse.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name} expects an integer, got '{v}'"))),
        }
    }

    /// Whether a value-less switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Re-targets a wrapper invocation at its inner command:
    /// `profile run --workload bfs --profile-out p.json` dispatches as
    /// `run --workload bfs` once the wrapper's own flags are stripped.
    pub(crate) fn rewrap(&self, inner: &str, strip: &[&str]) -> Args {
        let mut rewrapped = self.clone();
        rewrapped.command = inner.to_string();
        rewrapped.subcommand = None;
        for name in strip {
            rewrapped.flags.remove(*name);
            rewrapped.switches.retain(|s| s != name);
        }
        rewrapped
    }

    /// Rejects any flags outside the allowed set (catches typos).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] naming the first unknown flag.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for name in self
            .flags
            .keys()
            .map(String::as_str)
            .chain(self.switches.iter().map(String::as_str))
        {
            if !allowed.contains(&name) {
                return Err(ArgError(format!(
                    "unknown flag --{name} for command '{}'",
                    self.command
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_flags_and_switches() {
        let a = parse(&["run", "--workload", "bfs", "--json", "--seed", "7"]).unwrap();
        assert_eq!(a.command(), "run");
        assert_eq!(a.get("workload"), Some("bfs"));
        assert_eq!(a.get_u64("seed", 0).unwrap(), 7);
        assert!(a.switch("json"));
        assert!(!a.switch("full-scale"));
    }

    #[test]
    fn parses_subcommand() {
        let a = parse(&["trace", "gen", "--workload", "tc"]).unwrap();
        assert_eq!(a.command(), "trace");
        assert_eq!(a.subcommand(), Some("gen"));
        assert_eq!(a.get("workload"), Some("tc"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = parse(&["run", "--workload"]).unwrap_err();
        assert!(e.to_string().contains("requires a value"));
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        let e = parse(&["run", "--seed", "1", "--seed", "2"]).unwrap_err();
        assert!(e.to_string().contains("twice"));
    }

    #[test]
    fn unexpected_positional_is_an_error() {
        let e = parse(&["run", "--seed", "1", "oops"]).unwrap_err();
        assert!(e.to_string().contains("positional"));
    }

    #[test]
    fn empty_is_an_error() {
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn expect_only_catches_typos() {
        let a = parse(&["run", "--workload", "bfs", "--sed", "1"]).unwrap();
        let e = a.expect_only(&["workload", "seed"]).unwrap_err();
        assert!(e.to_string().contains("--sed"));
        assert!(a.expect_only(&["workload", "sed"]).is_ok());
    }

    #[test]
    fn rewrap_retargets_and_strips_wrapper_flags() {
        let a = parse(&[
            "profile",
            "run",
            "--workload",
            "bfs",
            "--profile-out",
            "p.json",
        ])
        .unwrap();
        let inner = a.rewrap("run", &["profile-out", "folded-out"]);
        assert_eq!(inner.command(), "run");
        assert_eq!(inner.subcommand(), None);
        assert_eq!(inner.get("workload"), Some("bfs"));
        assert_eq!(inner.get("profile-out"), None);
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["topology"]).unwrap();
        assert_eq!(a.get_or("sockets", "16"), "16");
        assert_eq!(a.get_u64("sockets", 16).unwrap(), 16);
        assert!(a.require("sockets").is_err());
    }

    #[test]
    fn bad_integer_is_an_error() {
        let a = parse(&["run", "--seed", "abc"]).unwrap();
        assert!(a.get_u64("seed", 0).is_err());
    }
}
