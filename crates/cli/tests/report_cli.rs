//! The run ledger, the online monitors, and `starnuma report`,
//! exercised through the real binary so the exit-code and output
//! contracts are tested end to end. Fixture invocations run with the
//! fixture directory as the working directory and pass `--ledger .`,
//! so the paths the report prints are stable for byte-exact goldens.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn starnuma() -> Command {
    Command::new(env!("CARGO_BIN_EXE_starnuma"))
}

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/report")
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// `report --json` over the checked-in ledger is byte-identical across
/// invocations and matches the committed golden, and a clean ledger
/// exits zero.
#[test]
fn report_json_matches_golden_and_is_stable() {
    let run = || {
        starnuma()
            .current_dir(fixtures())
            .args(["report", "--ledger", ".", "--json"])
            .output()
            .expect("binary runs")
    };
    let first = run();
    let second = run();
    assert!(first.status.success(), "clean ledger must exit zero");
    assert_eq!(
        first.stdout, second.stdout,
        "report output must be byte-identical across invocations"
    );
    let golden = fs::read(fixtures().join("report.json.golden")).expect("golden present");
    assert_eq!(
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&golden),
        "report --json drifted from the committed golden"
    );
}

/// Two records with the same (config digest, seed) but different result
/// digests are determinism drift: flagged in the output, non-zero exit.
#[test]
fn report_flags_determinism_drift() {
    let out = starnuma()
        .current_dir(fixtures().join("drift"))
        .args(["report", "--ledger", "."])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "drift must fail the report");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("determinism drift: 1 flag(s)"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("0xdeadbeefdeadbeef"), "stdout: {stdout}");
}

/// A real run appends a parseable record per run; `report --json` over
/// the fresh ledger succeeds and counts them.
#[test]
fn run_appends_ledger_records_report_reads_back() {
    let dir = temp_dir("starnuma-report-cli-ledger");
    let dir_s = dir.to_str().expect("utf-8");
    for jobs in ["1", "2"] {
        let out = starnuma()
            .args([
                "run",
                "--workload",
                "poa",
                "--scale",
                "quick",
                "--phases",
                "1",
                "--instructions",
                "3000",
                "--jobs",
                jobs,
                "--ledger",
                dir_s,
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "run with --ledger must succeed");
    }
    let ledger = fs::read_to_string(dir.join("runs.jsonl")).expect("ledger written");
    assert_eq!(ledger.lines().count(), 2, "one record per run");
    let out = starnuma()
        .args(["report", "--ledger", dir_s, "--json"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "identical reruns must not be flagged as drift: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"records\":2"), "stdout: {stdout}");
    let _ = fs::remove_dir_all(&dir);
}

/// An injected monitor fault fires deterministically; `--strict-monitors`
/// turns it into a non-zero exit, and without the switch the run still
/// reports it on stderr but succeeds.
#[test]
fn strict_monitors_fails_on_injected_fault() {
    let base = [
        "run",
        "--workload",
        "bfs",
        "--scale",
        "quick",
        "--phases",
        "1",
        "--instructions",
        "3000",
        "--jobs",
        "1",
        "--inject-monitor-fault",
        "pool_occupancy",
    ];
    let strict = starnuma()
        .args(base)
        .arg("--strict-monitors")
        .output()
        .expect("binary runs");
    assert!(
        !strict.status.success(),
        "strict mode must fail on a violation"
    );
    let stderr = String::from_utf8_lossy(&strict.stderr);
    assert!(
        stderr.contains("monitor violation: pool_occupancy"),
        "stderr: {stderr}"
    );
    let lax = starnuma().args(base).output().expect("binary runs");
    assert!(
        lax.status.success(),
        "without --strict-monitors the run passes"
    );
    assert!(
        String::from_utf8_lossy(&lax.stderr).contains("monitor violation: pool_occupancy"),
        "the violation must still be reported on stderr"
    );
    let bogus = starnuma()
        .args([
            "run",
            "--workload",
            "bfs",
            "--inject-monitor-fault",
            "bogus",
        ])
        .output()
        .expect("binary runs");
    assert!(
        !bogus.status.success(),
        "unknown monitor names are rejected"
    );
}

/// `inspect` on a zero-event trace says so instead of rendering an empty
/// timeline, and phases no event mentions produce no placeholder rows.
#[test]
fn inspect_handles_sparse_and_empty_traces() {
    let empty = starnuma()
        .current_dir(fixtures())
        .args(["inspect", "empty_trace.jsonl"])
        .output()
        .expect("binary runs");
    assert!(empty.status.success());
    let stdout = String::from_utf8_lossy(&empty.stdout);
    assert!(stdout.contains("(no events recorded)"), "stdout: {stdout}");
    assert!(!stdout.contains("phase 0:"), "stdout: {stdout}");

    let late = starnuma()
        .current_dir(fixtures())
        .args(["inspect", "late_phase_trace.jsonl"])
        .output()
        .expect("binary runs");
    assert!(late.status.success());
    let stdout = String::from_utf8_lossy(&late.stdout);
    assert!(stdout.contains("phase 2:"), "stdout: {stdout}");
    assert!(
        !stdout.contains("phase 0:") && !stdout.contains("phase 1:"),
        "eventless phases must not render placeholder rows: {stdout}"
    );
}
