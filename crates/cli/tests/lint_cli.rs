//! The `starnuma lint` subcommand, exercised through the real binary so the
//! exit-code contract is tested end to end.

use std::path::{Path, PathBuf};
use std::process::Command;

fn starnuma() -> Command {
    Command::new(env!("CARGO_BIN_EXE_starnuma"))
}

fn dirty_fixture() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../audit/tests/fixture_ws")
}

#[test]
fn lint_exits_nonzero_on_the_dirty_fixture() {
    let out = starnuma()
        .args(["lint", "--root", dirty_fixture().to_str().expect("utf-8")])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "dirty tree must fail the lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SN001"), "stdout: {stdout}");
    assert!(stdout.contains("SN004"), "stdout: {stdout}");
}

#[test]
fn lint_json_format_emits_an_array() {
    let out = starnuma()
        .args([
            "lint",
            "--root",
            dirty_fixture().to_str().expect("utf-8"),
            "--format",
            "json",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('['), "stdout: {stdout}");
    assert!(stdout.contains("\"code\":\"SN001\""), "stdout: {stdout}");
}

#[test]
fn lint_exits_zero_on_the_workspace_itself() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = starnuma()
        .args(["lint", "--root", root.to_str().expect("utf-8")])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "workspace must stay lint-clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("no findings"));
}

#[test]
fn lint_rejects_unknown_format() {
    let out = starnuma()
        .args(["lint", "--format", "yaml"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown format"));
}
