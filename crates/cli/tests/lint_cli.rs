//! The `starnuma lint` subcommand, exercised through the real binary so
//! the exit-code, baseline, SARIF, and fix contracts are tested end to
//! end. Fixture runs pass `--no-cache` so tests never write into the
//! checked-in fixture tree.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn starnuma() -> Command {
    Command::new(env!("CARGO_BIN_EXE_starnuma"))
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn dirty_fixture() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../audit/tests/fixture_ws")
}

#[test]
fn lint_exits_nonzero_on_the_dirty_fixture() {
    let out = starnuma()
        .args([
            "lint",
            "--root",
            dirty_fixture().to_str().expect("utf-8"),
            "--no-cache",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "dirty tree must fail the lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SN001"), "stdout: {stdout}");
    assert!(stdout.contains("SN006"), "stdout: {stdout}");
    assert!(stdout.contains("SN012"), "stdout: {stdout}");
}

#[test]
fn lint_json_format_emits_a_versioned_report() {
    let out = starnuma()
        .args([
            "lint",
            "--root",
            dirty_fixture().to_str().expect("utf-8"),
            "--no-cache",
            "--format",
            "json",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.trim_start().starts_with("{\"schema_version\":1,"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("\"files_scanned\":"), "stdout: {stdout}");
    assert!(stdout.contains("\"findings\":[{"), "stdout: {stdout}");
    assert!(stdout.contains("\"code\":\"SN001\""), "stdout: {stdout}");
}

#[test]
fn lint_sarif_format_and_file_output_agree() {
    let dir = std::env::temp_dir().join("starnuma-lint-cli-sarif");
    fs::create_dir_all(&dir).expect("temp dir");
    let sarif_path = dir.join("lint.sarif");
    let out = starnuma()
        .args([
            "lint",
            "--root",
            dirty_fixture().to_str().expect("utf-8"),
            "--no-cache",
            "--format",
            "sarif",
            "--sarif",
            sarif_path.to_str().expect("utf-8"),
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout).trim().to_string();
    let written = fs::read_to_string(&sarif_path).expect("sarif file written");
    assert_eq!(stdout, written.trim(), "stdout and --sarif file must agree");
    assert!(written.contains("\"version\":\"2.1.0\""));
    assert!(written.contains("\"name\":\"starnuma-audit\""));
    assert!(written.contains("\"ruleId\":\"SN006\""));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_exits_zero_on_the_workspace_itself_with_the_baseline() {
    let root = workspace_root();
    let out = starnuma()
        .args([
            "lint",
            "--root",
            root.to_str().expect("utf-8"),
            "--no-cache",
            "--baseline",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "workspace must stay lint-clean beyond the baseline:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no findings"), "stdout: {stdout}");
    assert!(
        stdout.contains("suppressed by baseline"),
        "stdout: {stdout}"
    );
}

#[test]
fn update_baseline_is_a_no_op_on_the_workspace() {
    let root = workspace_root();
    let dir = std::env::temp_dir().join("starnuma-lint-cli-baseline");
    fs::create_dir_all(&dir).expect("temp dir");
    let fresh = dir.join("lint_baseline.json");
    let out = starnuma()
        .args([
            "lint",
            "--root",
            root.to_str().expect("utf-8"),
            "--no-cache",
            "--update-baseline",
            "--baseline-file",
            fresh.to_str().expect("utf-8"),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "update-baseline exits zero");
    let regenerated = fs::read_to_string(&fresh).expect("baseline written");
    let checked_in = fs::read_to_string(root.join("ci/lint_baseline.json"))
        .expect("ci/lint_baseline.json exists");
    assert_eq!(
        regenerated, checked_in,
        "regenerating the baseline must be a no-op; \
         run `starnuma lint --update-baseline` and commit the result"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_baseline_file_fails_loudly() {
    let out = starnuma()
        .args([
            "lint",
            "--root",
            dirty_fixture().to_str().expect("utf-8"),
            "--no-cache",
            "--baseline-file",
            "/nonexistent/lint_baseline.json",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot read baseline"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn fix_converges_on_a_copy_of_the_dirty_fixture() {
    let dir = std::env::temp_dir().join("starnuma-lint-cli-fix");
    fs::remove_dir_all(&dir).ok();
    copy_tree(&dirty_fixture(), &dir);

    // First pass: safe rewrites plus allow markers for the rest.
    let out = starnuma()
        .args([
            "lint",
            "--root",
            dir.to_str().expect("utf-8"),
            "--no-cache",
            "--fix",
            "--fix-allow",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "after --fix --fix-allow nothing may remain:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let root_lib = fs::read_to_string(dir.join("src/lib.rs")).expect("fixed file");
    assert!(root_lib.contains("DetMap"), "SN003 rewrite applied");
    let sim_lib = fs::read_to_string(dir.join("crates/sim/src/lib.rs")).expect("fixed file");
    assert!(sim_lib.contains(".sort_by_key("), "SN011 rewrite applied");

    // Second pass must report nothing and rewrite nothing.
    let again = starnuma()
        .args([
            "lint",
            "--root",
            dir.to_str().expect("utf-8"),
            "--no-cache",
            "--fix",
            "--fix-allow",
        ])
        .output()
        .expect("binary runs");
    assert!(again.status.success());
    assert!(
        String::from_utf8_lossy(&again.stdout).contains("no findings"),
        "second --fix run must be clean: {}",
        String::from_utf8_lossy(&again.stdout)
    );
    assert!(
        String::from_utf8_lossy(&again.stderr).is_empty(),
        "second --fix run must not rewrite: {}",
        String::from_utf8_lossy(&again.stderr)
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_rejects_unknown_format() {
    let out = starnuma()
        .args(["lint", "--format", "yaml"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown format"));
}

fn copy_tree(from: &Path, to: &Path) {
    fs::create_dir_all(to).expect("create dir");
    for entry in fs::read_dir(from).expect("read dir").filter_map(Result::ok) {
        let src = entry.path();
        let dst = to.join(entry.file_name());
        if src.is_dir() {
            copy_tree(&src, &dst);
        } else {
            fs::copy(&src, &dst).expect("copy file");
        }
    }
}
