//! Shared helpers for the table/figure regeneration harness.
//!
//! Every table and figure of the paper's evaluation has a `harness = false`
//! bench target in `benches/`; running `cargo bench` regenerates all of
//! them. `STARNUMA_SCALE=quick|default|full` trades fidelity for runtime.
//!
//! Absolute numbers are not expected to match the paper (the substrate is a
//! from-scratch simulator driven by synthetic traces, not ChampSim over Pin
//! traces of the real applications); the *shape* — who wins, by roughly what
//! factor, where crossovers fall — is the reproduction target. Each bench
//! prints the paper's reference values alongside the measured ones;
//! `EXPERIMENTS.md` records a full paper-vs-measured comparison.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};

use starnuma::{Experiment, JobPool, RunResult, ScaleConfig, SystemKind, Workload};

/// Prints the standard bench banner.
pub fn banner(artifact: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{artifact}");
    println!("paper reference: {paper_ref}");
    let scale = scale();
    println!(
        "scale: {} phases x {} instructions/core (STARNUMA_SCALE to change)",
        scale.phases, scale.instructions_per_phase
    );
    println!(
        "jobs: {} worker threads (STARNUMA_JOBS to change)",
        pool().workers()
    );
    println!("================================================================");
}

/// The harness scale (from `STARNUMA_SCALE`, default `default`).
///
/// This is a harness entry point: a misspelt `STARNUMA_SCALE` aborts the
/// process with the offending value instead of silently running (and
/// mislabelling) the default scale.
pub fn scale() -> ScaleConfig {
    match ScaleConfig::from_env() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// The harness job pool (from `STARNUMA_JOBS`, default: all cores).
///
/// Like [`scale`], validates the environment at entry: garbage in
/// `STARNUMA_JOBS` aborts with the offending value.
pub fn pool() -> JobPool {
    match JobPool::from_env() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// A memoizing experiment runner: one bench process never runs the same
/// (workload, system) pair twice.
#[derive(Default)]
pub struct Lab {
    cache: BTreeMap<(Workload, SystemKind), RunResult>,
}

impl Lab {
    /// Creates an empty lab.
    pub fn new() -> Self {
        Lab::default()
    }

    /// Runs (or returns the cached result of) one experiment at the harness
    /// scale.
    pub fn run(&mut self, workload: Workload, system: SystemKind) -> &RunResult {
        self.cache
            .entry((workload, system))
            .or_insert_with(|| Experiment::new(workload, system, scale()).run())
    }

    /// Speedup of `system` over the §V-A baseline for `workload`.
    pub fn speedup(&mut self, workload: Workload, system: SystemKind) -> f64 {
        let base = self.run(workload, SystemKind::Baseline).ipc;
        let sys = self.run(workload, system).ipc;
        if base > 0.0 {
            sys / base
        } else {
            0.0
        }
    }

    /// Runs every not-yet-cached `(workload, system)` pair in parallel on
    /// the harness [`pool`] and caches the results, so the subsequent
    /// [`Lab::run`]/[`Lab::speedup`] calls that format the table are pure
    /// cache hits. Results are bit-identical to sequential execution, so
    /// prefetching never changes a figure — only how fast it regenerates.
    pub fn prefetch(&mut self, pairs: &[(Workload, SystemKind)]) {
        let mut queued = BTreeSet::new();
        let missing: Vec<(Workload, SystemKind)> = pairs
            .iter()
            .copied()
            .filter(|key| !self.cache.contains_key(key) && queued.insert(*key))
            .collect();
        let scale = scale();
        let results = pool().run(missing.clone(), |_, (w, s)| {
            Experiment::new(w, s, scale.clone()).run()
        });
        for (key, r) in missing.into_iter().zip(results) {
            self.cache.insert(key, r);
        }
    }

    /// [`Lab::prefetch`] over the cross product `workloads × systems`.
    pub fn prefetch_grid(&mut self, workloads: &[Workload], systems: &[SystemKind]) {
        let pairs: Vec<(Workload, SystemKind)> = workloads
            .iter()
            .flat_map(|w| systems.iter().map(move |s| (*w, *s)))
            .collect();
        self.prefetch(&pairs);
    }
}

/// Appends one schema-versioned, **flat** JSON entry to the bench history
/// file (`BENCH_history.jsonl` at the workspace root, overridable via
/// `STARNUMA_BENCH_HISTORY`). Each line is a flat object of dotted keys —
/// exactly the shape `starnuma bench-diff` parses — so the one-off
/// `BENCH_hotpath.json` snapshot becomes a tracked time series.
pub fn append_history(bench: &str, smoke: bool, metrics: &[(String, f64)]) {
    use std::io::Write as _;
    let path = std::env::var("STARNUMA_BENCH_HISTORY")
        .unwrap_or_else(|_| format!("{}/../../BENCH_history.jsonl", env!("CARGO_MANIFEST_DIR")));
    let mut line = format!(
        "{{\"schema_version\":1,\"bench\":\"{bench}\",\"smoke\":{},\"version\":\"{}\"",
        u8::from(smoke),
        env!("CARGO_PKG_VERSION"),
    );
    for (key, value) in metrics {
        let value = if value.is_finite() { *value } else { 0.0 };
        line.push_str(&format!(",\"{key}\":{value}"));
    }
    line.push_str("}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    match written {
        Ok(()) => println!("appended {bench} history entry to {path}"),
        Err(e) => eprintln!("failed to append bench history {path}: {e}"),
    }
}

/// Formats a speedup cell like `1.54x`.
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.2}x")
}

/// Prints one row of a workload-major table.
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<10}");
    for c in cells {
        print!(" {c:>10}");
    }
    println!();
}

/// Prints a header row.
pub fn print_header(first: &str, columns: &[&str]) {
    print!("{first:<10}");
    for c in columns {
        print!(" {c:>10}");
    }
    println!();
}
