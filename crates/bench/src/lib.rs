//! Shared helpers for the table/figure regeneration harness.
//!
//! Every table and figure of the paper's evaluation has a `harness = false`
//! bench target in `benches/`; running `cargo bench` regenerates all of
//! them. `STARNUMA_SCALE=quick|default|full` trades fidelity for runtime.
//!
//! Absolute numbers are not expected to match the paper (the substrate is a
//! from-scratch simulator driven by synthetic traces, not ChampSim over Pin
//! traces of the real applications); the *shape* — who wins, by roughly what
//! factor, where crossovers fall — is the reproduction target. Each bench
//! prints the paper's reference values alongside the measured ones;
//! `EXPERIMENTS.md` records a full paper-vs-measured comparison.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;

use starnuma::{Experiment, RunResult, ScaleConfig, SystemKind, Workload};

/// Prints the standard bench banner.
pub fn banner(artifact: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{artifact}");
    println!("paper reference: {paper_ref}");
    let scale = scale();
    println!(
        "scale: {} phases x {} instructions/core (STARNUMA_SCALE to change)",
        scale.phases, scale.instructions_per_phase
    );
    println!("================================================================");
}

/// The harness scale (from `STARNUMA_SCALE`, default `default`).
pub fn scale() -> ScaleConfig {
    ScaleConfig::from_env()
}

/// A memoizing experiment runner: one bench process never runs the same
/// (workload, system) pair twice.
#[derive(Default)]
pub struct Lab {
    cache: BTreeMap<(Workload, SystemKind), RunResult>,
}

impl Lab {
    /// Creates an empty lab.
    pub fn new() -> Self {
        Lab::default()
    }

    /// Runs (or returns the cached result of) one experiment at the harness
    /// scale.
    pub fn run(&mut self, workload: Workload, system: SystemKind) -> &RunResult {
        self.cache
            .entry((workload, system))
            .or_insert_with(|| Experiment::new(workload, system, scale()).run())
    }

    /// Speedup of `system` over the §V-A baseline for `workload`.
    pub fn speedup(&mut self, workload: Workload, system: SystemKind) -> f64 {
        let base = self.run(workload, SystemKind::Baseline).ipc;
        let sys = self.run(workload, system).ipc;
        if base > 0.0 {
            sys / base
        } else {
            0.0
        }
    }
}

/// Formats a speedup cell like `1.54x`.
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.2}x")
}

/// Prints one row of a workload-major table.
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<10}");
    for c in cells {
        print!(" {c:>10}");
    }
    println!();
}

/// Prints a header row.
pub fn print_header(first: &str, columns: &[&str]) {
    print!("{first:<10}");
    for c in columns {
        print!(" {c:>10}");
    }
    println!();
}
