//! Ablation study (extension beyond the paper): which ingredient of
//! Algorithm 1's selection actually earns the speedup — hotness ranking,
//! sharing-degree gating, or just "using the pool at all"?
//!
//! All ablations run with *perfect* region-level tracking, so differences
//! are attributable purely to the selection criterion; the full Algorithm 1
//! (T16) runs on the real TLB-annex tracking stack.

use starnuma::{geomean, Experiment, MigrationMode, Runner, SystemKind, Workload};
use starnuma_bench::{banner, fmt_speedup, print_header, print_row, scale};
use starnuma_migration::AblationPolicy;

fn speedup_with(w: Workload, mode: MigrationMode) -> f64 {
    let s = scale();
    let base = Experiment::new(w, SystemKind::Baseline, s.clone()).run();
    let mut cfg = Experiment::new(w, SystemKind::StarNuma, s).run_config();
    cfg.migration = mode;
    let r = Runner::new(w.profile(), cfg).run();
    r.ipc / base.ipc
}

fn main() {
    banner(
        "Ablation — what part of Algorithm 1's selection matters?",
        "extension: DESIGN.md §5 (not in the paper); compares hotness-only, \
         sharing-only, and random pool fill against full Algorithm 1 (T16)",
    );
    let workloads = [
        Workload::Bfs,
        Workload::Tc,
        Workload::Masstree,
        Workload::Tpcc,
    ];
    let policies: [(&str, MigrationMode); 4] = [
        ("T16 (full)", MigrationMode::Threshold { t0: false }),
        (
            "hotness-only",
            MigrationMode::Ablation(AblationPolicy::HotnessOnly),
        ),
        (
            "sharing-only",
            MigrationMode::Ablation(AblationPolicy::SharingOnly { min_sharers: 8 }),
        ),
        (
            "random-fill",
            MigrationMode::Ablation(AblationPolicy::RandomPool),
        ),
    ];

    println!();
    let cols: Vec<&str> = policies.iter().map(|(n, _)| *n).collect();
    print_header("wkld", &cols);
    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for w in workloads {
        let mut cells = Vec::new();
        for (i, (_, mode)) in policies.iter().enumerate() {
            let s = speedup_with(w, *mode);
            per_policy[i].push(s);
            cells.push(fmt_speedup(s));
        }
        print_row(w.name(), &cells);
    }
    let geo: Vec<f64> = per_policy.iter().map(|v| geomean(v)).collect();
    print_row(
        "geomean",
        &geo.iter().map(|g| fmt_speedup(*g)).collect::<Vec<_>>(),
    );

    println!("\ninterpretation:");
    println!("- random fill quantifies the raw value of pool bandwidth/latency;");
    println!("- hotness-only over-pools hot *private* data (wasting capacity");
    println!("  on pages a socket could keep local);");
    println!("- sharing-only cannot prioritize under capacity pressure;");
    println!("- full Algorithm 1 needs both signals, as the paper argues.");
    assert!(
        geo[0] >= geo[3] * 0.95,
        "the full policy must not lose to random fill"
    );
}
