//! Fig. 3: the CXL memory-pool access latency breakdown.

use starnuma::{CxlLatencyBreakdown, SystemParams};
use starnuma_bench::banner;

fn main() {
    banner(
        "Fig. 3 — CXL memory pool access latency breakdown",
        "§III-B: ports 25+25 ns, retimer 20 ns, flight 10 ns, MHD internal \
         20 ns → 100 ns penalty, 180 ns end-to-end",
    );
    let b = CxlLatencyBreakdown::paper();
    let mem_base = SystemParams::full_scale_starnuma().mem_base;
    println!();
    println!("{:<36} {:>8}", "component (roundtrip)", "latency");
    println!(
        "{:<36} {:>8}",
        "CPU-side CXL port",
        format!("{}", b.cpu_port)
    );
    println!(
        "{:<36} {:>8}",
        "MHD-side CXL port",
        format!("{}", b.mhd_port)
    );
    println!("{:<36} {:>8}", "retimer", format!("{}", b.retimer));
    println!(
        "{:<36} {:>8}",
        "link flight (both directions)",
        format!("{}", b.flight)
    );
    println!(
        "{:<36} {:>8}",
        "MHD NoC + arbitration + directory",
        format!("{}", b.mhd_internal)
    );
    println!(
        "{:<36} {:>8}",
        "= pool access penalty",
        format!("{}", b.total())
    );
    println!(
        "{:<36} {:>8}",
        "+ on-processor time and DRAM",
        format!("{mem_base}")
    );
    println!(
        "{:<36} {:>8}",
        "= end-to-end unloaded pool access",
        format!("{}", b.end_to_end(mem_base))
    );
    assert_eq!(b.total().raw(), 100.0);
    assert_eq!(b.end_to_end(mem_base).raw(), 180.0);
    println!("\nmatches the paper exactly (these are modeled constants).");
}
