//! Observability overhead (extension): the tentpole contract is that a
//! *disabled* `ObsSink` costs one predictable branch per record — cheap
//! enough to leave the instrumentation compiled into every hot path — and
//! that an *enabled* sink does not perturb a fig08-style run beyond noise.
//!
//! Two measurements:
//!
//! 1. **Micro**: a tight loop over `record_access` (and the closure-deferred
//!    `event` call) against an identical loop without the sink, reporting
//!    the per-record cost in nanoseconds for disabled and enabled sinks.
//! 2. **Macro**: a full StarNUMA run with and without observation; the
//!    `RunResult`s must be bit-identical (the sink only *reads* the
//!    simulation) and the slowdown is printed for eyeballing against
//!    run-to-run noise.

use std::hint::black_box;
use std::time::Instant;

use starnuma::obs::{EventCategory, EventLevel, FieldValue, ObsSink};
use starnuma::{Experiment, SystemKind, Workload};
use starnuma_bench::banner;
use starnuma_sim::access_class_labels;

const RECORDS: u64 = 20_000_000;

fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64(), r)
}

/// The workload the sink observes: a cheap, optimizer-resistant latency
/// stream. Identical across the baseline and instrumented loops so the
/// difference is attributable to the sink alone.
fn record_loop(sink: &mut ObsSink) -> f64 {
    let mut acc = 0.0;
    for i in 0..RECORDS {
        let ns = black_box(80.0 + (i & 0x3FF) as f64);
        sink.record_access((i % 16) as usize, (i % 6) as usize, ns);
        if i % 1024 == 0 {
            sink.event(
                EventLevel::Debug,
                EventCategory::Progress,
                "bench_tick",
                || vec![("i", FieldValue::U64(i))],
            );
        }
        acc += ns;
    }
    acc
}

fn main() {
    banner(
        "Observability overhead — disabled sink vs baseline vs enabled",
        "extension: DESIGN.md §8 contract (disabled = one branch per record)",
    );

    // Micro: per-record cost.
    let (t_base, base_acc) = timed(|| {
        let mut acc = 0.0;
        for i in 0..RECORDS {
            acc += black_box(80.0 + (i & 0x3FF) as f64);
        }
        acc
    });
    let mut disabled = ObsSink::disabled();
    let (t_disabled, dis_acc) = timed(|| record_loop(&mut disabled));
    let mut enabled = ObsSink::enabled(16, access_class_labels(), 65_536);
    enabled.begin_phase(0);
    let (t_enabled, en_acc) = timed(|| record_loop(&mut enabled));
    enabled.end_phase();
    let report = enabled.finish();
    assert_eq!(base_acc, dis_acc);
    assert_eq!(base_acc, en_acc);
    assert_eq!(report.metrics.merged().sockets.len(), 16);

    let per = 1e9 / RECORDS as f64;
    println!();
    println!("micro ({RECORDS} records):");
    println!("  bare loop         {:>8.2} ns/record", t_base * per);
    println!(
        "  disabled sink     {:>8.2} ns/record  (+{:.2} ns)",
        t_disabled * per,
        (t_disabled - t_base) * per
    );
    println!(
        "  enabled sink      {:>8.2} ns/record  (+{:.2} ns)",
        t_enabled * per,
        (t_enabled - t_base) * per
    );

    // Macro: a fig08-style run, observed and not. Bit-identical results
    // are the hard requirement; the slowdown is informational.
    let scale = starnuma::ScaleConfig::quick();
    let phases = scale.phases;
    let experiment = Experiment::new(Workload::Bfs, SystemKind::StarNuma, scale);
    let (t_plain, plain) = timed(|| experiment.run());
    let (t_obs, (observed, obs_report)) = timed(|| experiment.run_observed());
    assert_eq!(plain, observed, "observation changed the simulation result");
    // The run above had the online invariant monitors armed (they are part
    // of every observed run): they must have checked every phase barrier,
    // found nothing, and — per the assert_eq above — perturbed nothing.
    assert_eq!(
        obs_report.monitor.checks, phases as u64,
        "monitors must run once per phase barrier"
    );
    assert!(
        obs_report.monitor.is_clean(),
        "healthy run tripped a monitor: {:?}",
        obs_report.monitor.violations
    );
    println!();
    println!("macro (BFS on StarNUMA, quick scale):");
    println!("  unobserved run    {:>8.1} ms", t_plain * 1e3);
    println!(
        "  observed run      {:>8.1} ms  ({} events, {} histogram records)",
        t_obs * 1e3,
        obs_report.events.len(),
        obs_report
            .metrics
            .merged()
            .sockets
            .iter()
            .map(|s| s.total_count())
            .sum::<u64>()
    );
    println!();
    println!("disabled-sink overhead must vanish into the run-to-run noise of");
    println!("the fig08 harness; re-run a few times before reading tea leaves.");
}
