//! Fig. 12: sensitivity to memory-pool capacity — a chassis-sized pool
//! (1/5 of the footprint) vs a single-socket-sized pool (1/17).

use starnuma::{geomean, SystemKind, Workload};
use starnuma_bench::{banner, fmt_speedup, print_header, print_row, Lab};

fn main() {
    banner(
        "Fig. 12 — impact of memory pool capacity",
        "§V-E: shrinking the pool 4x (20% → 1/17 of the footprint) only \
         drops the average from 1.54x to 1.48x; FMI is the most affected \
         (1.22x → 1.05x)",
    );
    let mut lab = Lab::new();
    lab.prefetch_grid(
        &Workload::ALL,
        &[
            SystemKind::Baseline,
            SystemKind::StarNuma,
            SystemKind::StarNumaSmallPool,
        ],
    );
    println!();
    print_header("wkld", &["pool 1/5", "pool 1/17"]);
    let mut big = Vec::new();
    let mut small = Vec::new();
    for w in Workload::ALL {
        let b = lab.speedup(w, SystemKind::StarNuma);
        let s = lab.speedup(w, SystemKind::StarNumaSmallPool);
        big.push(b);
        small.push(s);
        print_row(w.name(), &[fmt_speedup(b), fmt_speedup(s)]);
    }
    let gb = geomean(&big);
    let gs = geomean(&small);
    print_row("geomean", &[fmt_speedup(gb), fmt_speedup(gs)]);
    println!("\npaper: 1.54x → 1.48x — 'most workloads are rather insensitive");
    println!("to the pool size': a high fraction of remote accesses targets a");
    println!("small fraction of pages, whose hottest still fit in the pool.");
    assert!(gs <= gb + 0.02, "a smaller pool cannot help on average");
    assert!(
        gs > gb * 0.8,
        "a 4x smaller pool must not collapse the benefit (got {gs:.2} vs {gb:.2})"
    );
}
