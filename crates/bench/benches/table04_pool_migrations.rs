//! Table IV: fraction of migrated pages that StarNUMA moves to the pool.

use starnuma::{SystemKind, Workload};
use starnuma_bench::{banner, print_header, print_row, Lab};

fn main() {
    banner(
        "Table IV — fraction of migrations to the pool",
        "§V-A: SSSP 80%, BFS 100%, CC 99%, TC 80%, Masstree 100%, TPCC 93%, \
         FMI 47%, POA 0% (no migrations at all)",
    );
    let paper = [
        (Workload::Sssp, "80%"),
        (Workload::Bfs, "100%"),
        (Workload::Cc, "99%"),
        (Workload::Tc, "80%"),
        (Workload::Masstree, "100%"),
        (Workload::Tpcc, "93%"),
        (Workload::Fmi, "47%"),
        (Workload::Poa, "0%"),
    ];
    let mut lab = Lab::new();
    println!();
    print_header("wkld", &["migrated", "to-pool", "fraction", "paper"]);
    for (w, paper_frac) in paper {
        let r = lab.run(w, SystemKind::StarNuma).clone();
        print_row(
            w.name(),
            &[
                format!("{}", r.pages_migrated),
                format!("{}", r.pages_to_pool),
                format!("{:.0}%", r.pool_migration_frac() * 100.0),
                paper_frac.to_string(),
            ],
        );
        if w == Workload::Poa {
            assert_eq!(r.pages_to_pool, 0, "POA never touches the pool");
        }
    }
    println!("\nnote: at scaled-down phase lengths, per-phase sharer observation");
    println!("is noisier than the paper's billion-instruction phases, so more");
    println!("of the hot-but-narrow regions qualify for socket-to-socket moves;");
    println!("the shape (pool dominates for widely shared workloads, FMI lowest,");
    println!("POA zero) is preserved. See EXPERIMENTS.md.");
}
