//! Fig. 14: robustness of the evaluation methodology — alternative
//! simulation configurations must agree qualitatively.
//!
//! * SC1: the default scale;
//! * SC2: 3× more detailed instructions per phase;
//! * SC3: doubled system scale (8-core sockets, 2× memory/interconnect
//!   bandwidth, traces regenerated for 128 threads).
//!
//! As an extension, the paper's *mixed-modality* socket model (§IV-B: one
//! detailed socket, 15 light IPC-regulated injectors) is compared against
//! the default all-detailed model.

use starnuma::{Experiment, Modality, Runner, ScaleConfig, ScalePreset, SystemKind, Workload};
use starnuma_bench::{banner, fmt_speedup, print_header, print_row, scale};
use starnuma_types::SocketId;

fn speedup_at(w: Workload, s: &ScaleConfig) -> f64 {
    let base = Experiment::new(w, SystemKind::Baseline, s.clone()).run();
    let star = Experiment::new(w, SystemKind::StarNuma, s.clone()).run();
    star.ipc / base.ipc
}

fn speedup_mixed(w: Workload, s: &ScaleConfig) -> f64 {
    let run = |kind: SystemKind| {
        let mut cfg = Experiment::new(w, kind, s.clone()).run_config();
        cfg.modality = Modality::Mixed {
            detailed_socket: SocketId::new(0),
        };
        Runner::new(w.profile(), cfg).run()
    };
    let base = run(SystemKind::Baseline);
    let star = run(SystemKind::StarNuma);
    star.ipc / base.ipc
}

fn main() {
    banner(
        "Fig. 14 — alternative simulation configurations",
        "§V-G: SC2 (3x instructions) and SC3 (2x system scale) agree with \
         SC1 within a few percent; BFS 1.7x → 2.0x/1.8x",
    );
    let workloads = [Workload::Bfs, Workload::Tc, Workload::Fmi];
    let sc1 = scale();
    let sc2 = scale().with_preset(ScalePreset::Sc2);
    let sc3 = scale().with_preset(ScalePreset::Sc3);

    println!();
    print_header("wkld", &["SC1", "SC2", "SC3", "SC1-mixed"]);
    for w in workloads {
        let s1 = speedup_at(w, &sc1);
        let s2 = speedup_at(w, &sc2);
        let s3 = speedup_at(w, &sc3);
        let sm = speedup_mixed(w, &sc1);
        print_row(
            w.name(),
            &[
                fmt_speedup(s1),
                fmt_speedup(s2),
                fmt_speedup(s3),
                fmt_speedup(sm),
            ],
        );
        assert!(
            s2 > 1.0 && s3 > 1.0,
            "every configuration must agree that StarNUMA wins on {w} (s2={s2:.2}, s3={s3:.2})"
        );
    }
    println!("\npaper: 'even larger and costlier simulation configurations ...");
    println!("confirm StarNUMA's potential, yielding similar or better results.'");
    println!("SC1-mixed is this reproduction's §IV-B light-socket methodology.");
}
