//! Fig. 8 — the paper's main results, all three panels:
//!
//! * (a) StarNUMA IPC normalized to the baseline, for `T_16` and `T_0`;
//! * (b) AMAT decomposed into unloaded latency and contention delay;
//! * (c) memory-access breakdown by type (local / 1-hop / 2-hop / pool /
//!   block transfers).

use starnuma::chart::speedup_chart;
use starnuma::{geomean, AccessClass, SystemKind, Workload};
use starnuma_bench::{banner, fmt_speedup, print_header, print_row, Lab};

fn main() {
    banner(
        "Fig. 8 — speedup, AMAT, and access breakdown (main results)",
        "§V-A: T16 cuts AMAT by 48% on average → 1.54x speedup (up to \
         2.17x); the simpler T0 still reaches 1.35x",
    );
    let mut lab = Lab::new();
    lab.prefetch_grid(
        &Workload::ALL,
        &[
            SystemKind::Baseline,
            SystemKind::StarNuma,
            SystemKind::StarNumaT0,
        ],
    );

    // ---- (a) speedups ----
    println!("\n(a) IPC normalized to baseline\n");
    print_header("wkld", &["T16", "T0"]);
    let mut t16 = Vec::new();
    let mut t0 = Vec::new();
    for w in Workload::ALL {
        let s16 = lab.speedup(w, SystemKind::StarNuma);
        let s0 = lab.speedup(w, SystemKind::StarNumaT0);
        t16.push(s16);
        t0.push(s0);
        print_row(w.name(), &[fmt_speedup(s16), fmt_speedup(s0)]);
    }
    let g16 = geomean(&t16);
    let g0 = geomean(&t0);
    print_row("geomean", &[fmt_speedup(g16), fmt_speedup(g0)]);
    println!();
    let rows: Vec<(&str, f64)> = Workload::ALL
        .iter()
        .zip(&t16)
        .map(|(w, s)| (w.name(), *s))
        .collect();
    println!("{}", speedup_chart(&rows, 40));
    println!("\npaper: geomean 1.54x (T16), 1.35x (T0); max 2.17x");
    println!(
        "measured max: {:.2}x",
        t16.iter().fold(0.0f64, |a, &b| a.max(b))
    );

    // ---- (b) AMAT decomposition ----
    println!("\n(b) AMAT (ns): unloaded + contention = total\n");
    print_header(
        "wkld",
        &[
            "base-unl",
            "base-cont",
            "base-tot",
            "star-unl",
            "star-cont",
            "star-tot",
        ],
    );
    let mut amat_reductions = Vec::new();
    for w in Workload::ALL {
        let b = lab.run(w, SystemKind::Baseline).clone();
        let s = lab.run(w, SystemKind::StarNuma).clone();
        if b.amat_ns > 0.0 {
            amat_reductions.push(1.0 - s.amat_ns / b.amat_ns);
        }
        print_row(
            w.name(),
            &[
                format!("{:.0}", b.unloaded_amat_ns),
                format!("{:.0}", b.contention_ns),
                format!("{:.0}", b.amat_ns),
                format!("{:.0}", s.unloaded_amat_ns),
                format!("{:.0}", s.contention_ns),
                format!("{:.0}", s.amat_ns),
            ],
        );
    }
    let mean_cut = amat_reductions.iter().sum::<f64>() / amat_reductions.len() as f64;
    println!(
        "\nmean AMAT reduction: {:.0}%   (paper: 48%)",
        mean_cut * 100.0
    );

    // ---- (c) access breakdown ----
    println!("\n(c) memory access breakdown (%)\n");
    let cols: Vec<&str> = AccessClass::ALL.iter().map(|c| c.label()).collect();
    for (label, kind) in [
        ("baseline", SystemKind::Baseline),
        ("StarNUMA", SystemKind::StarNuma),
    ] {
        println!("{label}:");
        print_header("wkld", &cols);
        for w in Workload::ALL {
            let r = lab.run(w, kind).clone();
            let cells: Vec<String> = r
                .class_fracs
                .iter()
                .map(|f| format!("{:.1}", f * 100.0))
                .collect();
            print_row(w.name(), &cells);
        }
        println!();
    }
    println!("shape check: StarNUMA converts 2-hop accesses into pool accesses;");
    println!("block transfers shift from BT_Socket to the faster BT_Pool path.");
    assert!(g16 > 1.2, "StarNUMA must deliver a clear average win");
    assert!(g16 >= g0 * 0.98, "T16 should match or beat T0 on average");
}
