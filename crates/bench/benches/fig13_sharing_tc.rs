//! Fig. 13: access-pattern characteristics for TC — the read-only,
//! widely-shared end of the spectrum (vs BFS's read-write sharing in
//! Fig. 2), framing the §V-F replication-vs-pooling discussion.

use starnuma::{SharingHistogram, TraceGenerator, Workload};
use starnuma_bench::{banner, print_header, print_row, scale};

fn main() {
    banner(
        "Fig. 13 — TC access-pattern characteristics",
        "§V-F: 60% of the dataset is touched by all 16 sockets, 80% by 8+; \
         the widely shared pages are read-only (replication-friendly but \
         capacity-hungry)",
    );
    let s = scale();
    let mut gen = TraceGenerator::new(&Workload::Tc.profile(), 16, 4, s.seed);
    let trace = gen.generate_phase(s.instructions_per_phase * s.phases as u64);
    let h = SharingHistogram::from_trace_with_truth(&trace, |p| gen.page_sharers(p).len() as u32);

    println!("\n(a) page sharing degree + (b) accesses per bin\n");
    print_header("sharers", &["pages", "accesses", "rw-share"]);
    for (i, bin) in h.bins().iter().enumerate() {
        print_row(
            SharingHistogram::LABELS[i],
            &[
                format!("{:.0}%", bin.page_frac * 100.0),
                format!("{:.0}%", bin.access_frac * 100.0),
                format!("{:.0}%", bin.rw_access_frac * 100.0),
            ],
        );
    }
    let by16 = h.bins()[4].page_frac;
    let by8plus = h.bins()[3].page_frac + h.bins()[4].page_frac;
    println!(
        "\npages shared by all 16 sockets: {:.0}%  (paper: 60%)",
        by16 * 100.0
    );
    println!(
        "pages shared by 8+ sockets:     {:.0}%  (paper: 80%)",
        by8plus * 100.0
    );
    println!(
        "R/W share of 16-sharer accesses: {:.0}%  (paper: ~0, read-only)",
        h.bins()[4].rw_access_frac * 100.0
    );
    assert!(by16 > 0.5);
    assert!(h.bins()[4].rw_access_frac < 0.05);
    println!("\nimplication (§V-F): replicating TC's shared pages would be");
    println!("coherence-free but waste 60%+ of every socket's memory; the");
    println!("pool hosts one shared copy instead.");
}
