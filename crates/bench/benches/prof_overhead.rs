//! Profiler overhead: the tentpole contract is that a *disabled*
//! `ProfScope` costs one relaxed atomic load per scope — cheap enough to
//! leave the instrumentation compiled into every simulation hot path —
//! and that an *enabled* profiler never perturbs a simulation result
//! (it only reads the wall clock, never feeds it back).
//!
//! Mirrors `obs_overhead.rs`:
//!
//! 1. **Micro**: a tight loop entering/dropping a `ProfScope` against an
//!    identical loop without it, reporting ns/scope disabled and enabled.
//!    The disabled cost is asserted against a budget (default 5 ns/scope,
//!    generous for shared CI runners; `STARNUMA_PROF_SCOPE_BUDGET_NS`
//!    overrides — the design target is ~2 ns on quiet hardware).
//! 2. **Macro**: a full StarNUMA run profiled and unprofiled; the
//!    `RunResult`s must be bit-identical.
//!
//! Appends `disabled_ns_per_scope` / `enabled_ns_per_scope` to
//! `BENCH_history.jsonl` so `starnuma bench-diff` tracks the trajectory.

use std::hint::black_box;
use std::time::Instant;

use starnuma::prof::{self, ProfScope, Site};
use starnuma::{Experiment, ScaleConfig, SystemKind, Workload};
use starnuma_bench::{append_history, banner};

fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64(), r)
}

/// The optimizer-resistant work both loops share, so the difference is
/// attributable to the scope guard alone.
fn body(i: u64) -> u64 {
    black_box(i.wrapping_mul(2_654_435_761) ^ (i >> 7))
}

fn main() {
    banner(
        "Profiler overhead — disabled ProfScope vs baseline vs enabled",
        "extension: DESIGN.md §10 contract (disabled = one atomic load per scope)",
    );
    let smoke = std::env::var("STARNUMA_BENCH_SMOKE").is_ok();
    let scopes: u64 = if smoke { 2_000_000 } else { 20_000_000 };

    // Micro: per-scope cost.
    prof::reset();
    prof::set_enabled(false);
    let (t_base, base_acc) = timed(|| {
        let mut acc = 0u64;
        for i in 0..scopes {
            acc = acc.wrapping_add(body(i));
        }
        acc
    });
    let (t_disabled, dis_acc) = timed(|| {
        let mut acc = 0u64;
        for i in 0..scopes {
            let _s = ProfScope::enter(Site::Llc);
            acc = acc.wrapping_add(body(i));
        }
        acc
    });
    prof::set_enabled(true);
    let enabled_scopes = scopes / 20;
    let (t_enabled, en_acc) = timed(|| {
        let mut acc = 0u64;
        for i in 0..enabled_scopes {
            let _s = ProfScope::enter(Site::Llc);
            acc = acc.wrapping_add(body(i));
        }
        acc
    });
    prof::set_enabled(false);
    let report = prof::take_report();
    assert_eq!(base_acc, dis_acc, "scope guard changed the computation");
    let _ = en_acc;
    let recorded: u64 = report.merged_edges().iter().map(|e| e.calls).sum();
    assert_eq!(recorded, enabled_scopes, "enabled scopes must all record");

    let per = 1e9 / scopes as f64;
    let per_en = 1e9 / enabled_scopes as f64;
    let disabled_ns = (t_disabled - t_base) * per;
    let enabled_ns = t_enabled * per_en - t_base * per;
    println!();
    println!("micro ({scopes} scopes):");
    println!("  bare loop         {:>8.2} ns/iter", t_base * per);
    println!(
        "  disabled scope    {:>8.2} ns/iter  (+{disabled_ns:.2} ns/scope)",
        t_disabled * per
    );
    println!(
        "  enabled scope     {:>8.2} ns/iter  (+{enabled_ns:.2} ns/scope, {enabled_scopes} scopes)",
        t_enabled * per_en
    );

    let budget: f64 = std::env::var("STARNUMA_PROF_SCOPE_BUDGET_NS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    assert!(
        disabled_ns <= budget,
        "disabled ProfScope costs {disabled_ns:.2} ns/scope, budget {budget:.2} \
         (target ~2 ns on quiet hardware; STARNUMA_PROF_SCOPE_BUDGET_NS overrides)"
    );
    println!("  disabled-scope budget: {disabled_ns:.2} <= {budget:.2} ns/scope  OK");

    // Macro: a quick-scale run, profiled and not. Bit-identical results
    // are the hard requirement; the slowdown is informational.
    let mut scale = ScaleConfig::quick();
    if smoke {
        scale.phases = 1;
        scale.instructions_per_phase = 5_000;
        scale.warmup_instructions = 0;
    }
    let experiment = Experiment::new(Workload::Bfs, SystemKind::StarNuma, scale);
    let (t_plain, plain) = timed(|| experiment.run());
    prof::reset();
    prof::set_enabled(true);
    let (t_prof, profiled) = timed(|| experiment.run());
    prof::set_enabled(false);
    let run_report = prof::take_report();
    assert_eq!(plain, profiled, "profiling changed the simulation result");
    assert!(!run_report.is_empty(), "profiled run recorded no scopes");
    println!();
    println!("macro (BFS on StarNUMA):");
    println!("  unprofiled run    {:>8.1} ms", t_plain * 1e3);
    println!(
        "  profiled run      {:>8.1} ms  ({} sites attributed)",
        t_prof * 1e3,
        run_report
            .merged_edges()
            .iter()
            .filter(|e| e.parent.is_none())
            .count()
    );

    append_history(
        "prof_overhead",
        smoke,
        &[
            (
                "prof.disabled_ns_per_scope".to_string(),
                disabled_ns.max(0.0),
            ),
            ("prof.enabled_ns_per_scope".to_string(), enabled_ns.max(0.0)),
        ],
    );
}
