//! Criterion micro-benchmarks of the simulator's hot paths: the components
//! every simulated memory access flows through.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use starnuma_cache::{CacheConfig, SetAssocCache, Tlb, TlbConfig};
use starnuma_coherence::Directory;
use starnuma_mem::{DramTimings, FifoServer, MemoryModule};
use starnuma_topology::{Network, SystemParams};
use starnuma_trace::{TraceGenerator, Workload};
use starnuma_types::{BlockAddr, Cycles, GbPerSec, Location, PageId, SocketId};

fn bench_llc(c: &mut Criterion) {
    let mut cache = SetAssocCache::new(CacheConfig::scaled_llc());
    let mut rng = SmallRng::seed_from_u64(1);
    c.bench_function("llc_access", |b| {
        b.iter(|| {
            let block = BlockAddr::new(rng.gen_range(0..2_000_000));
            black_box(cache.access(block, rng.gen_bool(0.3)))
        })
    });
}

fn bench_tlb(c: &mut Criterion) {
    let mut tlb = Tlb::new(TlbConfig {
        entries: 64,
        counter_bits: 16,
    });
    let mut rng = SmallRng::seed_from_u64(2);
    c.bench_function("tlb_record_llc_miss", |b| {
        b.iter(|| {
            let page = PageId::new(rng.gen_range(0..32_768));
            black_box(tlb.record_llc_miss(page))
        })
    });
}

fn bench_directory(c: &mut Criterion) {
    let mut dir = Directory::new(16);
    let mut rng = SmallRng::seed_from_u64(3);
    c.bench_function("directory_access", |b| {
        b.iter(|| {
            let block = BlockAddr::new(rng.gen_range(0..1_000_000));
            let socket = SocketId::new(rng.gen_range(0..16));
            black_box(dir.access(block, socket, rng.gen_bool(0.3), Location::Pool))
        })
    });
}

fn bench_fifo_server(c: &mut Criterion) {
    let mut server = FifoServer::new(GbPerSec::new(3.0));
    let mut t = 0u64;
    c.bench_function("fifo_server_enqueue", |b| {
        b.iter(|| {
            t += 40;
            black_box(server.enqueue(Cycles::new(t), 72))
        })
    });
}

fn bench_dram(c: &mut Criterion) {
    let mut mem = MemoryModule::new(2, GbPerSec::new(50.0), DramTimings::ddr5_4800());
    let mut rng = SmallRng::seed_from_u64(4);
    let mut t = 0u64;
    c.bench_function("dram_module_access", |b| {
        b.iter(|| {
            t += 20;
            black_box(mem.access(Cycles::new(t), BlockAddr::new(rng.gen_range(0..2_000_000))))
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let net = Network::new(&SystemParams::scaled_starnuma());
    let mut rng = SmallRng::seed_from_u64(5);
    c.bench_function("network_route", |b| {
        b.iter(|| {
            let s = SocketId::new(rng.gen_range(0..16));
            let target = if rng.gen_bool(0.3) {
                Location::Pool
            } else {
                Location::Socket(SocketId::new(rng.gen_range(0..16)))
            };
            black_box(net.route(s, target))
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let profile = Workload::Bfs.profile();
    c.bench_function("trace_generate_1k_instr_per_core", |b| {
        let mut gen = TraceGenerator::new(&profile, 16, 4, 6);
        b.iter(|| black_box(gen.generate_phase(1_000)))
    });
}

criterion_group!(
    benches,
    bench_llc,
    bench_tlb,
    bench_directory,
    bench_fifo_server,
    bench_dram,
    bench_routing,
    bench_trace_generation
);
criterion_main!(benches);
