//! Micro-benchmarks of the simulator's hot paths: the components every
//! simulated memory access flows through. Timed with a plain wall-clock
//! harness (the bench crate is the one place wall time is allowed —
//! simulation crates are lint-clean of it per SN002).

use std::hint::black_box;
use std::time::Instant;

use starnuma_cache::{CacheConfig, SetAssocCache, Tlb, TlbConfig};
use starnuma_coherence::Directory;
use starnuma_mem::{DramTimings, FifoServer, MemoryModule};
use starnuma_topology::{Network, SystemParams};
use starnuma_trace::{TraceGenerator, Workload};
use starnuma_types::{BlockAddr, Cycles, GbPerSec, Location, PageId, SimRng, SocketId};

/// Runs `f` for `iters` iterations and prints mean ns/op.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    // Short warm-up so cold caches don't dominate small iteration counts.
    for _ in 0..iters / 10 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let ns_per_op = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<36} {iters:>10} iters {ns_per_op:>12.1} ns/op");
}

fn bench_llc(iters: u64) {
    let mut cache = SetAssocCache::new(CacheConfig::scaled_llc());
    let mut rng = SimRng::seed_from_u64(1);
    bench("llc_access", iters, || {
        let block = BlockAddr::new(rng.gen_range(0u64..2_000_000));
        black_box(cache.access(block, rng.gen_bool(0.3)));
    });
}

fn bench_tlb(iters: u64) {
    let mut tlb = Tlb::new(TlbConfig {
        entries: 64,
        counter_bits: 16,
    });
    let mut rng = SimRng::seed_from_u64(2);
    bench("tlb_record_llc_miss", iters, || {
        let page = PageId::new(rng.gen_range(0u64..32_768));
        black_box(tlb.record_llc_miss(page));
    });
}

fn bench_directory(iters: u64) {
    let mut dir = Directory::new(16);
    let mut rng = SimRng::seed_from_u64(3);
    bench("directory_access", iters, || {
        let block = BlockAddr::new(rng.gen_range(0u64..1_000_000));
        let socket = SocketId::new(rng.gen_range(0u16..16));
        black_box(dir.access(block, socket, rng.gen_bool(0.3), Location::Pool));
    });
}

fn bench_fifo_server(iters: u64) {
    let mut server = FifoServer::new(GbPerSec::new(3.0));
    let mut t = 0u64;
    bench("fifo_server_enqueue", iters, || {
        t += 40;
        black_box(server.enqueue(Cycles::new(t), 72));
    });
}

fn bench_dram(iters: u64) {
    let mut mem = MemoryModule::new(2, GbPerSec::new(50.0), DramTimings::ddr5_4800());
    let mut rng = SimRng::seed_from_u64(4);
    let mut t = 0u64;
    bench("dram_module_access", iters, || {
        t += 20;
        black_box(mem.access(
            Cycles::new(t),
            BlockAddr::new(rng.gen_range(0u64..2_000_000)),
        ));
    });
}

fn bench_routing(iters: u64) {
    let net = Network::new(&SystemParams::scaled_starnuma());
    let mut rng = SimRng::seed_from_u64(5);
    bench("network_route", iters, || {
        let s = SocketId::new(rng.gen_range(0u16..16));
        let target = if rng.gen_bool(0.3) {
            Location::Pool
        } else {
            Location::Socket(SocketId::new(rng.gen_range(0u16..16)))
        };
        black_box(net.route(s, target));
    });
}

fn bench_trace_generation(iters: u64) {
    let profile = Workload::Bfs.profile();
    let mut gen = TraceGenerator::new(&profile, 16, 4, 6);
    bench("trace_generate_1k_instr_per_core", iters, || {
        black_box(gen.generate_phase(1_000));
    });
}

fn main() {
    println!("micro-benchmarks (mean over fixed iteration counts)\n");
    bench_llc(200_000);
    bench_tlb(200_000);
    bench_directory(200_000);
    bench_fifo_server(200_000);
    bench_dram(200_000);
    bench_routing(200_000);
    bench_trace_generation(50);
}
