//! Fig. 9: oracular *static* initial placement (no runtime migration) on
//! both architectures, normalized to the baseline with dynamic migration.
//!
//! The paper's two takeaways: (i) static-oracle StarNUMA slightly beats
//! dynamic StarNUMA (no migration overheads; sharing patterns are stable);
//! (ii) the static-oracle *baseline* gains nothing over the dynamic
//! baseline — a NUMA machine without a pool architecturally lacks a good
//! home for vagabond pages, no matter how clever placement is.

use starnuma::{geomean, SystemKind, Workload};
use starnuma_bench::{banner, fmt_speedup, print_header, print_row, Lab};

fn main() {
    banner(
        "Fig. 9 — oracular static placement vs dynamic migration",
        "§V-B: static baseline ≈ 1.0x (no gain without a pool); static \
         StarNUMA ≥ dynamic StarNUMA",
    );
    let mut lab = Lab::new();
    lab.prefetch_grid(
        &Workload::ALL,
        &[
            SystemKind::Baseline,
            SystemKind::BaselineStaticOracle,
            SystemKind::StarNuma,
            SystemKind::StarNumaStaticOracle,
        ],
    );
    println!();
    print_header("wkld", &["base-static", "star-dyn", "star-static"]);
    let mut base_static = Vec::new();
    let mut star_dyn = Vec::new();
    let mut star_static = Vec::new();
    for w in Workload::ALL {
        let bs = lab.speedup(w, SystemKind::BaselineStaticOracle);
        let sd = lab.speedup(w, SystemKind::StarNuma);
        let ss = lab.speedup(w, SystemKind::StarNumaStaticOracle);
        base_static.push(bs);
        star_dyn.push(sd);
        star_static.push(ss);
        print_row(
            w.name(),
            &[fmt_speedup(bs), fmt_speedup(sd), fmt_speedup(ss)],
        );
    }
    let g = [
        geomean(&base_static),
        geomean(&star_dyn),
        geomean(&star_static),
    ];
    print_row(
        "geomean",
        &[fmt_speedup(g[0]), fmt_speedup(g[1]), fmt_speedup(g[2])],
    );
    println!(
        "\nkey observation: static-oracle baseline geomean {:.2}x — even \
         perfect a-priori placement",
        g[0]
    );
    println!("cannot fix vagabond pages without a pool (paper: 'baseline NUMA");
    println!("systems architecturally lack a good location for vagabond pages').");
    assert!(
        g[0] < g[1],
        "a pool-less static oracle must not reach StarNUMA"
    );
}
