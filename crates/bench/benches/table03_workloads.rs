//! Table III: workload summary — per-core IPC and LLC MPKI on the baseline
//! 16-socket system, with the single-socket IPC for reference.
//!
//! The single-socket IPC is a *model input* (it calibrates each workload's
//! base CPI); the 16-socket IPC and MPKI are *measured* by simulation, so
//! this table doubles as the core-model calibration check: the 2–10×
//! single-vs-16-socket IPC gap of the paper must reappear.

use starnuma::{SystemKind, Workload};
use starnuma_bench::{banner, print_header, print_row, Lab};

fn main() {
    banner(
        "Table III — workload summary",
        "IPC (single-socket in parentheses) and LLC MPKI per workload; the \
         IPC gap illustrates the NUMA penalty",
    );
    let paper: &[(Workload, f64, f64, f64)] = &[
        (Workload::Sssp, 0.06, 0.56, 73.0),
        (Workload::Bfs, 0.10, 0.69, 32.0),
        (Workload::Cc, 0.14, 0.78, 17.0),
        (Workload::Tc, 0.40, 1.70, 3.2),
        (Workload::Masstree, 0.18, 0.89, 15.0),
        (Workload::Tpcc, 0.41, 1.12, 4.8),
        (Workload::Fmi, 0.61, 1.45, 2.6),
        (Workload::Poa, 0.68, 0.68, 33.0),
    ];
    let mut lab = Lab::new();
    println!();
    print_header(
        "wkld",
        &[
            "IPC(16s)",
            "IPC(1s)",
            "MPKI",
            "paperIPC",
            "paper1s",
            "paperMPKI",
        ],
    );
    let mut degradations = Vec::new();
    for &(w, p_ipc, p_single, p_mpki) in paper {
        let r = lab.run(w, SystemKind::Baseline).clone();
        let single = w.profile().ipc_single_socket;
        degradations.push((w, single / r.ipc));
        print_row(
            w.name(),
            &[
                format!("{:.2}", r.ipc),
                format!("({single:.2})"),
                format!("{:.1}", r.mpki),
                format!("{p_ipc:.2}"),
                format!("({p_single:.2})"),
                format!("{p_mpki:.1}"),
            ],
        );
    }
    println!("\nNUMA degradation (single-socket IPC / 16-socket IPC):");
    for (w, d) in &degradations {
        println!("  {:<10} {:.1}x", w.name(), d);
    }
    let max = degradations.iter().map(|(_, d)| *d).fold(0.0f64, f64::max);
    assert!(max > 2.0, "the paper's 2-10x NUMA gap must reappear");
    println!(
        "\npaper: \"The 2-10x IPC gap ... illustrates the performance impact of NUMA effects.\""
    );
}
