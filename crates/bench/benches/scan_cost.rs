//! §III-D4: the metadata-region scan cost of Algorithm 1 — the only
//! migration-mechanism overhead left in software.

use starnuma_bench::banner;
use starnuma_migration::scan_cost_cycles;
use starnuma_types::Nanos;

fn main() {
    banner(
        "§III-D4 — Algorithm 1 metadata scan cost",
        "full-scale system: 16 TB / 512 KiB regions = 32 M tracker entries; \
         profiled scan runtime 64–320 M cycles, within the ≥1 B-cycle \
         migration period",
    );
    println!();
    println!(
        "{:<44} {:>14} {:>12}",
        "configuration", "entries", "scan cycles"
    );
    let cases = [
        ("full-scale, local metadata (80 ns)", 32_000_000u64, 80.0),
        ("full-scale, 1-hop metadata (130 ns)", 32_000_000, 130.0),
        ("full-scale, 2-hop metadata (360 ns)", 32_000_000, 360.0),
        ("scaled run (256 regions, local)", 256, 80.0),
    ];
    for (label, entries, lat) in cases {
        let c = scan_cost_cycles(entries, Nanos::new(lat));
        println!("{label:<44} {entries:>14} {:>12}", c.raw());
    }
    let best = scan_cost_cycles(32_000_000, Nanos::new(80.0));
    let worst = scan_cost_cycles(32_000_000, Nanos::new(360.0));
    assert_eq!(best.raw(), 64_000_000);
    assert_eq!(worst.raw(), 320_000_000);
    assert!(worst.raw() < 1_000_000_000);
    println!("\npaper range 64–320 M cycles reproduced; even the worst case");
    println!("fits comfortably in the one-second migration period, so one");
    println!("dedicated core (0.2% of 448) suffices.");
}
