//! §V-F: page replication versus memory pooling.
//!
//! The paper's argument, quantified: replication of read-only widely shared
//! pages works for TC-style workloads (but eats one copy of 60 %+ of the
//! dataset per socket), fails for BFS-style read-write sharing (constant
//! software-coherence collapses), and *composes* with the pool.

use starnuma::{Experiment, MigrationMode, Runner, SystemKind, Workload};
use starnuma_bench::{banner, fmt_speedup, print_header, print_row, scale};
use starnuma_migration::ReplicationConfig;

struct Outcome {
    speedup: f64,
    replica_pages: u64,
    collapses: u64,
}

fn run_with_replication(w: Workload, pool: bool) -> Outcome {
    let s = scale();
    let base = Experiment::new(w, SystemKind::Baseline, s.clone()).run();
    let kind = if pool {
        SystemKind::StarNuma
    } else {
        SystemKind::Baseline
    };
    let mut cfg = Experiment::new(w, kind, s).run_config();
    if !pool {
        // Replication-only: no other dynamic migration, as §V-F isolates it.
        cfg.migration = MigrationMode::FirstTouchOnly;
    }
    cfg.replication = Some(ReplicationConfig::with_budget_frac(
        w.profile().footprint_pages,
        0.25,
    ));
    let r = Runner::new(w.profile(), cfg).run();
    let reps = r.replication.expect("replication was enabled");
    Outcome {
        speedup: r.ipc / base.ipc,
        replica_pages: reps.peak_replica_pages,
        collapses: reps.collapses,
    }
}

fn main() {
    banner(
        "§V-F — page replication versus memory pooling",
        "read-only shared data (TC) is replication-friendly but capacity-\
         hungry; read-write shared data (BFS) collapses replicas constantly; \
         replication and pooling are complementary",
    );
    let mut lab = starnuma_bench::Lab::new();
    println!();
    print_header(
        "wkld",
        &["pool", "repl-only", "pool+repl", "replicaMB", "collapses"],
    );
    for w in [Workload::Tc, Workload::Bfs, Workload::Masstree] {
        let pool = lab.speedup(w, SystemKind::StarNuma);
        let repl = run_with_replication(w, false);
        let both = run_with_replication(w, true);
        print_row(
            w.name(),
            &[
                fmt_speedup(pool),
                fmt_speedup(repl.speedup),
                fmt_speedup(both.speedup),
                format!("{}", repl.replica_pages * 4096 / (1 << 20)),
                format!("{}", repl.collapses),
            ],
        );
        if w == Workload::Tc {
            assert!(
                repl.speedup > 1.02,
                "read-only TC must benefit from replication"
            );
        }
    }
    println!("\nreading the table:");
    println!("- TC (read-only sharing): replication alone already helps, at");
    println!("  the cost of the listed replica capacity per run;");
    println!("- BFS/Masstree (read-write sharing): frequent collapses limit");
    println!("  replication, while the pool keeps its full benefit;");
    println!("- pool+repl composes, as the paper suggests ('page replication");
    println!("  and STARNUMA can be jointly leveraged as complementary').");
}
