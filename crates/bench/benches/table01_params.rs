//! Table I / Table II: system parameters of the full-scale machine and the
//! scaled-down simulation configuration.

use starnuma::SystemParams;
use starnuma_bench::banner;

fn print_params(title: &str, p: &SystemParams) {
    println!("\n--- {title} ---");
    println!("{:<38} {}", "sockets", p.num_sockets);
    println!("{:<38} {}", "cores per socket", p.cores_per_socket);
    println!("{:<38} {}", "total cores", p.total_cores());
    println!("{:<38} {}", "chassis", p.num_chassis());
    println!("{:<38} {}", "UPI link bandwidth (per direction)", p.upi_bw);
    println!(
        "{:<38} {}",
        "NUMALink bandwidth (per direction)", p.numalink_bw
    );
    println!(
        "{:<38} {}",
        "NUMALinks per chassis pair", p.numalinks_per_chassis_pair
    );
    println!("{:<38} {}", "socket memory bandwidth", p.socket_mem_bw);
    println!("{:<38} {}", "local access latency", p.mem_base);
    println!(
        "{:<38} {}",
        "1-hop access latency",
        p.mem_base + p.upi_one_way * 2.0
    );
    println!(
        "{:<38} {}",
        "2-hop access latency",
        p.mem_base + p.inter_chassis_one_way * 2.0
    );
    if p.has_pool {
        println!(
            "{:<38} {}",
            "CXL bandwidth per socket (effective)", p.cxl_bw
        );
        println!("{:<38} {}", "pool memory bandwidth", p.pool_mem_bw);
        println!(
            "{:<38} {}",
            "pool access latency",
            p.mem_base + p.cxl_one_way * 2.0
        );
    }
}

fn main() {
    banner(
        "Table I + Table II — system parameters",
        "Table I: full-scale 16-socket HPE Superdome Flex-style machine; \
         Table II: scaled-down (4-core sockets) simulation parameters",
    );
    print_params(
        "Table I: full-scale StarNUMA",
        &SystemParams::full_scale_starnuma(),
    );
    print_params(
        "Table II: scaled-down StarNUMA (simulated)",
        &SystemParams::scaled_starnuma(),
    );

    let full = SystemParams::full_scale_starnuma();
    assert_eq!(full.total_cores(), 448);
    assert_eq!(
        (full.mem_base + full.inter_chassis_one_way * 2.0).raw(),
        360.0
    );
    let scaled = SystemParams::scaled_starnuma();
    assert_eq!(scaled.total_cores(), 64);
    assert_eq!(scaled.upi_bw.raw(), 3.0);
    println!("\nall Table I/II values verified against the paper.");
}
