//! 32-socket scaling study (extension): §V-C argues StarNUMA can scale to
//! 32 sockets and beyond by adding a CXL switch (+90 ns roundtrip). This
//! bench builds the 8-chassis, 32-socket machine and measures whether the
//! pool still pays off at the higher pool latency.

use starnuma::{Experiment, MigrationMode, Runner, ScaleConfig, SystemKind, Workload};
use starnuma_bench::{banner, fmt_speedup, print_header, print_row, scale};
use starnuma_topology::SystemParams;

fn run32(w: Workload, starnuma: bool, scale: &ScaleConfig) -> starnuma::RunResult {
    let kind = if starnuma {
        SystemKind::StarNuma
    } else {
        SystemKind::Baseline
    };
    let mut cfg = Experiment::new(w, kind, scale.clone()).run_config();
    cfg.params = if starnuma {
        // 32 sockets need a CXL switch in front of the MHD (§V-C).
        SystemParams::scaled_starnuma()
            .with_num_sockets(32)
            .expect("32 sockets is a valid configuration")
            .with_cxl_switch()
    } else {
        SystemParams::scaled_baseline()
            .with_num_sockets(32)
            .expect("32 sockets is a valid configuration")
    };
    if !starnuma {
        cfg.migration = MigrationMode::OracleDynamic;
    }
    Runner::new(w.profile(), cfg).run()
}

fn main() {
    banner(
        "32-socket scaling (extension)",
        "§V-C: with a CXL switch the pool access costs 270 ns — the latency \
         edge over 2-hop shrinks to 25%, but the bandwidth benefit remains",
    );
    let s = scale();
    let workloads = [Workload::Bfs, Workload::Tc, Workload::Masstree];
    println!();
    print_header(
        "wkld",
        &["16s spdup", "32s spdup", "32s 2-hop%", "32s pool%"],
    );
    for w in workloads {
        let base16 = Experiment::new(w, SystemKind::Baseline, s.clone()).run();
        let star16 = Experiment::new(w, SystemKind::StarNuma, s.clone()).run();
        let base32 = run32(w, false, &s);
        let star32 = run32(w, true, &s);
        print_row(
            w.name(),
            &[
                fmt_speedup(star16.ipc / base16.ipc),
                fmt_speedup(star32.ipc / base32.ipc),
                format!(
                    "{:.0}%",
                    star32.class_frac(starnuma::AccessClass::TwoHop) * 100.0
                ),
                format!(
                    "{:.0}%",
                    star32.class_frac(starnuma::AccessClass::Pool) * 100.0
                ),
            ],
        );
        assert!(
            star32.ipc > base32.ipc * 0.98,
            "{w}: the pool must not hurt at 32 sockets"
        );
    }
    println!("\nAt 32 sockets the inter-chassis fraction grows (more chassis,");
    println!("less intra-chassis containment) while a pool access costs 270 ns:");
    println!("bandwidth-bound workloads gain MORE from the pool (worse vagabond");
    println!("problem), while latency-bound ones compress toward 1x — §V-C's");
    println!("point that the latency edge shrinks but the bandwidth edge stays.");
}
