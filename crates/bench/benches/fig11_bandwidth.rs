//! Fig. 11: bandwidth-provisioning study — is StarNUMA's win just added
//! bandwidth? (§V-D: no — boosting a conventional system's links is
//! *neither necessary nor sufficient*.)

use starnuma::{geomean, SystemKind, Workload};
use starnuma_bench::{banner, fmt_speedup, print_header, print_row, Lab};

fn main() {
    banner(
        "Fig. 11 — link bandwidth provisioning",
        "§V-D: Baseline ISO-BW 1.14x; StarNUMA beats even the impractical \
         Baseline 2xBW by 12% on average; StarNUMA Half-BW still beats \
         ISO-BW by 11%",
    );
    let systems = [
        SystemKind::BaselineIsoBw,
        SystemKind::Baseline2xBw,
        SystemKind::StarNumaHalfBw,
        SystemKind::StarNuma,
    ];
    let mut lab = Lab::new();
    let mut grid = systems.to_vec();
    grid.push(SystemKind::Baseline);
    lab.prefetch_grid(&Workload::ALL, &grid);
    println!();
    print_header("wkld", &["ISO-BW", "2xBW", "star-half", "StarNUMA"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];
    for w in Workload::ALL {
        let mut cells = Vec::new();
        for (i, k) in systems.iter().enumerate() {
            let s = lab.speedup(w, *k);
            cols[i].push(s);
            cells.push(fmt_speedup(s));
        }
        print_row(w.name(), &cells);
    }
    let geo: Vec<f64> = cols.iter().map(|c| geomean(c)).collect();
    print_row(
        "geomean",
        &geo.iter().map(|g| fmt_speedup(*g)).collect::<Vec<_>>(),
    );
    println!("\npaper geomeans: ISO-BW 1.14x; StarNUMA > 2xBW by 12%;");
    println!("Half-BW > ISO-BW by 11%. Bandwidth-bound BFS is the one");
    println!("workload where 2xBW can edge out StarNUMA (uniform link use).");
    assert!(
        geo[3] > geo[0],
        "full StarNUMA must beat the ISO-BW baseline"
    );
    assert!(
        geo[3] > geo[1] * 0.95,
        "StarNUMA should at least match the 2x-overprovisioned baseline"
    );
}
