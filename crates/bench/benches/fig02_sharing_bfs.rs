//! Fig. 2: page-sharing-degree and access distributions for BFS on a
//! 16-socket system — the observation that motivates StarNUMA: few widely
//! shared (vagabond) pages draw most memory accesses.

use starnuma::{SharingHistogram, TraceGenerator, Workload};
use starnuma_bench::{banner, print_header, print_row, scale};

fn main() {
    banner(
        "Fig. 2 — BFS access-pattern characteristics",
        "§II-B: 17% private pages; >8-sharer pages draw 68% of accesses; \
         16-sharer pages are 2% of pages but 36% of accesses, mostly R/W",
    );
    let s = scale();
    let mut gen = TraceGenerator::new(&Workload::Bfs.profile(), 16, 4, s.seed);
    // One long observation window (ground-truth sharer sets compensate for
    // the scaled-down trace length; see stats module docs).
    let trace = gen.generate_phase(s.instructions_per_phase * s.phases as u64);
    let h = SharingHistogram::from_trace_with_truth(&trace, |p| gen.page_sharers(p).len() as u32);

    println!("\n(a) distribution of page sharing degree + (b) accesses per bin\n");
    print_header(
        "sharers",
        &["pages", "accesses", "rw-share", "paper(a)", "paper(b)"],
    );
    let paper_pages = ["17%", "61%", "15%", "5%", "2%"];
    let paper_accesses = ["8%", "14%", "10%", "32%", "36%"];
    for (i, bin) in h.bins().iter().enumerate() {
        print_row(
            SharingHistogram::LABELS[i],
            &[
                format!("{:.0}%", bin.page_frac * 100.0),
                format!("{:.0}%", bin.access_frac * 100.0),
                format!("{:.0}%", bin.rw_access_frac * 100.0),
                paper_pages[i].to_string(),
                paper_accesses[i].to_string(),
            ],
        );
    }
    println!(
        "\n>8-sharer access share: {:.0}%   (paper: 68%)",
        h.wide_access_frac() * 100.0
    );
    println!(
        "private page share:     {:.0}%   (paper: 17%)",
        h.private_page_frac() * 100.0
    );
    assert!(h.wide_access_frac() > 0.5, "vagabond concentration present");
}
