//! Lint cost: cold (empty cache) vs warm (fully cached) workspace scans.
//!
//! The incremental cache keys per-file findings and facts by content
//! digest, so a warm re-lint should skip every source pass and pay only
//! for file reads, the dataflow pass, and the manifest pass. This bench
//! records both ends (`lint_cold_ms` / `lint_warm_ms`) in
//! `BENCH_history.jsonl` so `starnuma bench-diff` can flag regressions —
//! the `_ms` suffix marks lower-is-better.
//!
//! Wall clock is allowed here (bench crate; SN002 exempts it).

use std::path::Path;
use std::time::Instant;

use starnuma_audit::{lint_workspace_with, LintOptions};

fn main() {
    starnuma_bench::banner("lint_cost", "analyzer infrastructure (no paper figure)");
    let smoke = std::env::var("STARNUMA_BENCH_SMOKE").is_ok();
    let reps: usize = if smoke { 1 } else { 3 };

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cache_dir = std::env::temp_dir().join("starnuma-bench-lint-cost");
    std::fs::create_dir_all(&cache_dir).expect("temp dir");
    let cache_path = cache_dir.join("audit-cache.json");
    let opts = LintOptions {
        cache_path: Some(cache_path.clone()),
    };

    // Best-of-N so a stray page-cache miss doesn't pollute the history.
    let mut cold_ms = f64::INFINITY;
    let mut warm_ms = f64::INFINITY;
    let mut files = 0usize;
    for _ in 0..reps {
        std::fs::remove_file(&cache_path).ok();
        let start = Instant::now();
        let cold = lint_workspace_with(&root, &opts).expect("workspace lints");
        cold_ms = cold_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(cold.cache_hits, 0, "cold run must rebuild everything");
        files = cold.files_scanned;

        let start = Instant::now();
        let warm = lint_workspace_with(&root, &opts).expect("workspace lints");
        warm_ms = warm_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            warm.cache_hits, warm.files_scanned,
            "warm run must be fully cached"
        );
        assert_eq!(
            cold.findings, warm.findings,
            "cache must not change findings"
        );
    }
    std::fs::remove_dir_all(&cache_dir).ok();

    println!("files scanned            {files:>10}");
    println!("lint cold                {cold_ms:>10.1} ms");
    println!("lint warm                {warm_ms:>10.1} ms");
    println!(
        "warm speedup             {:>10.1}x",
        if warm_ms > 0.0 {
            cold_ms / warm_ms
        } else {
            0.0
        }
    );

    starnuma_bench::append_history(
        "lint",
        smoke,
        &[
            ("lint_cold_ms".to_string(), cold_ms),
            ("lint_warm_ms".to_string(), warm_ms),
            ("lint_files".to_string(), files as f64),
        ],
    );
}
