//! Break-even pool latency (extension): the paper samples 100 ns and
//! 190 ns pool penalties (Fig. 10); this bench traces the whole curve and
//! finds where StarNUMA's benefit vanishes.
//!
//! First-order prediction: once the pool is as slow as a 2-hop access
//! (one-way 140 ns → 360 ns end-to-end) the *latency* benefit is gone, and
//! only the bandwidth benefit remains — so the break-even point should sit
//! at or beyond 140 ns one-way for bandwidth-bound workloads, and near it
//! for latency-bound ones.

use starnuma::sweep::{break_even, sweep_cxl_latency};
use starnuma::Workload;
use starnuma_bench::{banner, print_header, print_row, scale};

fn main() {
    banner(
        "Break-even pool latency sweep (extension)",
        "Fig. 10 sampled 100/190 ns penalties; this traces speedup vs one-way \
         CXL latency (50 ns = paper default, 140 ns = 2-hop parity)",
    );
    let s = scale();
    let lat = [50.0, 95.0, 140.0, 185.0, 230.0];
    let workloads = [Workload::Tc, Workload::Bfs];
    println!();
    let cols: Vec<String> = lat.iter().map(|l| format!("{l:.0}ns")).collect();
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    print_header("wkld", &col_refs);
    for w in workloads {
        let pts = sweep_cxl_latency(w, &s, &lat);
        let cells: Vec<String> = pts.iter().map(|p| format!("{:.2}x", p.speedup)).collect();
        print_row(w.name(), &cells);
        match break_even(&pts) {
            Some(x) => println!(
                "  -> {} breaks even at ~{x:.0} ns one-way ({:.0} ns end-to-end)",
                w.name(),
                80.0 + 2.0 * x
            ),
            None => println!(
                "  -> {} never breaks even in this range (bandwidth benefit persists)",
                w.name()
            ),
        }
        assert!(
            pts[0].speedup >= pts.last().expect("nonempty").speedup * 0.95,
            "speedup must not rise with pool latency"
        );
    }
    println!("\nconfirms the paper's framing: latency-bound workloads (TC) live");
    println!("or die by the pool's latency edge; bandwidth-bound ones (BFS)");
    println!("keep part of the win from the extra CXL bandwidth alone.");
}
