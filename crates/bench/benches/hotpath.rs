//! Hot-path throughput baseline: the numbers `BENCH_hotpath.json` records
//! so later PRs have a trajectory to regress against.
//!
//! Three sections:
//!
//! 1. **Index microbenches** — `DetMap` vs the `BTreeMap` it replaced, fed
//!    bit-identical SimRng key streams shaped like each hot path
//!    (directory entry-or-default churn, TLB lookup/replace, in-flight
//!    insert/probe, replica-mask membership). These prove the PR-5 swap
//!    actually bought throughput.
//! 2. **Substrate benches** — accesses/sec through the real components
//!    (`Directory::access`, `Tlb::record_llc_miss`, LLC, DRAM), which now
//!    run on `DetMap` internally.
//! 3. **End-to-end** — full `Experiment` phases, in simulated instructions
//!    per wall second.
//!
//! Wall clock is allowed here (bench crate; SN002 exempts it). Output goes
//! to `BENCH_hotpath.json` at the workspace root, or `$STARNUMA_BENCH_OUT`.
//! `STARNUMA_BENCH_SMOKE=1` shrinks iteration counts ~20× for CI.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

use starnuma::report::Json;
use starnuma::{Experiment, ScaleConfig, SystemKind, Workload};
use starnuma_cache::{CacheConfig, SetAssocCache, Tlb, TlbConfig};
use starnuma_coherence::Directory;
use starnuma_mem::{DramTimings, MemoryModule};
use starnuma_types::{BlockAddr, Cycles, DetMap, GbPerSec, Location, PageId, SimRng, SocketId};

/// Times `iters` calls of `f` (after a 1/10 warm-up) and returns ns/op.
fn time_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn ops_per_sec(ns_per_op: f64) -> f64 {
    if ns_per_op > 0.0 {
        1e9 / ns_per_op
    } else {
        0.0
    }
}

fn substrate_entry(name: &str, iters: u64, ns_per_op: f64) -> (String, Json) {
    println!("{name:<34} {iters:>9} iters {ns_per_op:>10.1} ns/op");
    (
        name.to_string(),
        Json::Obj(vec![
            ("iters".to_string(), Json::Num(iters as f64)),
            ("ns_per_op".to_string(), Json::Num(ns_per_op)),
            ("ops_per_sec".to_string(), Json::Num(ops_per_sec(ns_per_op))),
        ]),
    )
}

/// One DetMap-vs-BTreeMap comparison: both maps replay the identical
/// RNG-driven op stream; the JSON records both sides and the speedup.
fn index_entry(name: &str, iters: u64, det_ns: f64, btree_ns: f64) -> (String, Json) {
    let speedup = if det_ns > 0.0 { btree_ns / det_ns } else { 0.0 };
    println!(
        "{name:<34} {iters:>9} iters {det_ns:>10.1} ns/op  (btreemap {btree_ns:.1}, {speedup:.2}x)"
    );
    (
        name.to_string(),
        Json::Obj(vec![
            ("iters".to_string(), Json::Num(iters as f64)),
            ("detmap_ns_per_op".to_string(), Json::Num(det_ns)),
            ("btreemap_ns_per_op".to_string(), Json::Num(btree_ns)),
            (
                "detmap_ops_per_sec".to_string(),
                Json::Num(ops_per_sec(det_ns)),
            ),
            ("speedup".to_string(), Json::Num(speedup)),
        ]),
    )
}

/// Directory-shaped stream: entry-or-default on a working set of blocks
/// with occasional eviction, like `Directory::access`/`evict`.
fn index_directory_pattern(iters: u64) -> (String, Json) {
    let det_ns = {
        let mut m: DetMap<BlockAddr, u32> = DetMap::new();
        let mut rng = SimRng::seed_from_u64(11);
        time_ns(iters, || {
            let b = BlockAddr::new(rng.gen_range(0u64..200_000));
            *m.entry_or_insert_with(b, || 0) += 1;
            if rng.gen_bool(0.05) {
                let victim = BlockAddr::new(rng.gen_range(0u64..200_000));
                black_box(m.remove(&victim));
            }
        })
    };
    let btree_ns = {
        let mut m: BTreeMap<BlockAddr, u32> = BTreeMap::new();
        let mut rng = SimRng::seed_from_u64(11);
        time_ns(iters, || {
            let b = BlockAddr::new(rng.gen_range(0u64..200_000));
            *m.entry(b).or_default() += 1;
            if rng.gen_bool(0.05) {
                let victim = BlockAddr::new(rng.gen_range(0u64..200_000));
                black_box(m.remove(&victim));
            }
        })
    };
    index_entry("index_directory_pattern", iters, det_ns, btree_ns)
}

/// TLB-shaped stream: hit-mostly lookups over a small resident set with
/// insert+remove on each miss, like `Tlb::record_llc_miss`.
fn index_tlb_pattern(iters: u64) -> (String, Json) {
    let det_ns = {
        let mut m: DetMap<PageId, usize> = DetMap::new();
        let mut rng = SimRng::seed_from_u64(12);
        time_ns(iters, || {
            let p = PageId::new(rng.gen_range(0u64..4_096));
            if !m.contains_key(&p) {
                let victim = PageId::new(rng.gen_range(0u64..4_096));
                black_box(m.remove(&victim));
                m.insert(p, p.pfn() as usize);
            }
        })
    };
    let btree_ns = {
        let mut m: BTreeMap<PageId, usize> = BTreeMap::new();
        let mut rng = SimRng::seed_from_u64(12);
        time_ns(iters, || {
            let p = PageId::new(rng.gen_range(0u64..4_096));
            if !m.contains_key(&p) {
                let victim = PageId::new(rng.gen_range(0u64..4_096));
                black_box(m.remove(&victim));
                m.insert(p, p.pfn() as usize);
            }
        })
    };
    index_entry("index_tlb_pattern", iters, det_ns, btree_ns)
}

/// In-flight-shaped stream: short-lived insert + repeated probe, like the
/// timing sim's migration window.
fn index_inflight_pattern(iters: u64) -> (String, Json) {
    let det_ns = {
        let mut m: DetMap<PageId, u64> = DetMap::new();
        let mut rng = SimRng::seed_from_u64(13);
        time_ns(iters, || {
            if rng.gen_bool(0.1) {
                m.insert(PageId::new(rng.gen_range(0u64..10_000)), 7);
                if m.len() > 512 {
                    m.clear();
                }
            }
            black_box(m.get(&PageId::new(rng.gen_range(0u64..10_000))));
        })
    };
    let btree_ns = {
        let mut m: BTreeMap<PageId, u64> = BTreeMap::new();
        let mut rng = SimRng::seed_from_u64(13);
        time_ns(iters, || {
            if rng.gen_bool(0.1) {
                m.insert(PageId::new(rng.gen_range(0u64..10_000)), 7);
                if m.len() > 512 {
                    m.clear();
                }
            }
            black_box(m.get(&PageId::new(rng.gen_range(0u64..10_000))));
        })
    };
    index_entry("index_inflight_pattern", iters, det_ns, btree_ns)
}

fn bench_end_to_end(smoke: bool) -> Json {
    let mut scale = ScaleConfig::quick();
    if smoke {
        scale.phases = 1;
        scale.instructions_per_phase = 5_000;
        scale.warmup_instructions = 0;
    }
    let mut runs = Vec::new();
    for workload in [Workload::Bfs, Workload::Tpcc] {
        let exp = Experiment::new(workload, SystemKind::StarNuma, scale.clone());
        let start = Instant::now();
        black_box(exp.run());
        let secs = start.elapsed().as_secs_f64();
        let core_instr =
            (scale.phases as u64 * scale.instructions_per_phase + scale.warmup_instructions) as f64;
        let minstr_per_sec = if secs > 0.0 {
            core_instr / secs / 1e6
        } else {
            0.0
        };
        println!(
            "end_to_end_{:<24} {core_instr:>9} instr/core {:>9.2} Minstr/s/core",
            workload.name(),
            minstr_per_sec
        );
        runs.push(Json::Obj(vec![
            (
                "workload".to_string(),
                Json::Str(workload.name().to_string()),
            ),
            ("core_instructions".to_string(), Json::Num(core_instr)),
            ("wall_seconds".to_string(), Json::Num(secs)),
            (
                "minstr_per_sec_per_core".to_string(),
                Json::Num(minstr_per_sec),
            ),
        ]));
    }
    Json::Arr(runs)
}

fn main() {
    let smoke = std::env::var("STARNUMA_BENCH_SMOKE").is_ok();
    let iters: u64 = if smoke { 10_000 } else { 200_000 };
    println!(
        "hot-path baseline ({} mode)\n",
        if smoke { "smoke" } else { "full" }
    );

    let index = vec![
        index_directory_pattern(iters),
        index_tlb_pattern(iters),
        index_inflight_pattern(iters),
    ];

    let mut substrates = Vec::new();
    {
        let mut dir = Directory::new(16);
        let mut rng = SimRng::seed_from_u64(3);
        let ns = time_ns(iters, || {
            let block = BlockAddr::new(rng.gen_range(0u64..1_000_000));
            let socket = SocketId::new(rng.gen_range(0u16..16));
            black_box(dir.access(block, socket, rng.gen_bool(0.3), Location::Pool));
        });
        substrates.push(substrate_entry("directory_access", iters, ns));
    }
    {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 64,
            counter_bits: 16,
        });
        let mut rng = SimRng::seed_from_u64(2);
        let ns = time_ns(iters, || {
            black_box(tlb.record_llc_miss(PageId::new(rng.gen_range(0u64..32_768))));
        });
        substrates.push(substrate_entry("tlb_record_llc_miss", iters, ns));
    }
    {
        let mut cache = SetAssocCache::new(CacheConfig::scaled_llc());
        let mut rng = SimRng::seed_from_u64(1);
        let ns = time_ns(iters, || {
            let block = BlockAddr::new(rng.gen_range(0u64..2_000_000));
            black_box(cache.access(block, rng.gen_bool(0.3)));
        });
        substrates.push(substrate_entry("llc_access", iters, ns));
    }
    {
        let mut mem = MemoryModule::new(2, GbPerSec::new(50.0), DramTimings::ddr5_4800());
        let mut rng = SimRng::seed_from_u64(4);
        let mut t = 0u64;
        let ns = time_ns(iters, || {
            t += 20;
            black_box(mem.access(
                Cycles::new(t),
                BlockAddr::new(rng.gen_range(0u64..2_000_000)),
            ));
        });
        substrates.push(substrate_entry("dram_module_access", iters, ns));
    }

    println!();
    let end_to_end = bench_end_to_end(smoke);

    let doc = Json::Obj(vec![
        (
            "meta".to_string(),
            Json::Obj(vec![
                ("bench".to_string(), Json::Str("hotpath".to_string())),
                ("smoke".to_string(), Json::Bool(smoke)),
                (
                    "version".to_string(),
                    Json::Str(env!("CARGO_PKG_VERSION").to_string()),
                ),
            ]),
        ),
        ("index".to_string(), Json::Obj(index)),
        ("substrates".to_string(), Json::Obj(substrates)),
        ("end_to_end".to_string(), end_to_end),
    ]);

    let out_path = std::env::var("STARNUMA_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_hotpath.json", env!("CARGO_MANIFEST_DIR")));
    match std::fs::write(&out_path, doc.render() + "\n") {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    // Trajectory: the same numbers, flattened to dotted keys, appended to
    // the schema-versioned history file that `starnuma bench-diff` reads.
    let mut flat = Vec::new();
    flatten("", &doc, &mut flat);
    flat.retain(|(k, _)| !k.starts_with("meta."));
    starnuma_bench::append_history("hotpath", smoke, &flat);
}

/// Flattens every numeric leaf of a JSON document into `prefix.key` pairs
/// (array elements use their index), producing the flat shape bench
/// history entries require.
fn flatten(prefix: &str, j: &Json, out: &mut Vec<(String, f64)>) {
    let join = |key: &str| {
        if prefix.is_empty() {
            key.to_string()
        } else {
            format!("{prefix}.{key}")
        }
    };
    match j {
        Json::Num(n) => out.push((prefix.to_string(), *n)),
        Json::Obj(fields) => {
            for (k, v) in fields {
                flatten(&join(k), v, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(&join(&i.to_string()), v, out);
            }
        }
        _ => {}
    }
}
