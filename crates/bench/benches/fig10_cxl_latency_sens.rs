//! Fig. 10: sensitivity to the memory-pool access latency — the default
//! 100 ns CXL penalty vs 190 ns (an intermediate CXL switch, 270 ns
//! end-to-end pool access).

use starnuma::{geomean, SystemKind, Workload};
use starnuma_bench::{banner, fmt_speedup, print_header, print_row, Lab};

fn main() {
    banner(
        "Fig. 10 — impact of memory pool latency",
        "§V-C: average speedup drops 1.54x → 1.34x with a 190 ns penalty; \
         latency-bound TC is hit hardest (1.63x → 1.11x)",
    );
    let mut lab = Lab::new();
    lab.prefetch_grid(
        &Workload::ALL,
        &[
            SystemKind::Baseline,
            SystemKind::StarNuma,
            SystemKind::StarNumaCxlSwitch,
        ],
    );
    println!();
    print_header("wkld", &["100ns pen.", "190ns pen."]);
    let mut fast = Vec::new();
    let mut slow = Vec::new();
    let mut tc_drop = (0.0, 0.0);
    for w in Workload::ALL {
        let s_fast = lab.speedup(w, SystemKind::StarNuma);
        let s_slow = lab.speedup(w, SystemKind::StarNumaCxlSwitch);
        if w == Workload::Tc {
            tc_drop = (s_fast, s_slow);
        }
        fast.push(s_fast);
        slow.push(s_slow);
        print_row(w.name(), &[fmt_speedup(s_fast), fmt_speedup(s_slow)]);
    }
    let gf = geomean(&fast);
    let gs = geomean(&slow);
    print_row("geomean", &[fmt_speedup(gf), fmt_speedup(gs)]);
    println!("\npaper: 1.54x → 1.34x; TC 1.63x → 1.11x");
    println!(
        "measured: {:.2}x → {:.2}x; TC {:.2}x → {:.2}x",
        gf, gs, tc_drop.0, tc_drop.1
    );
    assert!(gs < gf, "higher pool latency must reduce the average win");
    assert!(
        tc_drop.1 < tc_drop.0,
        "TC is latency-sensitive and must lose speedup"
    );
}
