//! Fig. 4: the two coherence-triggered block-transfer patterns — 3-hop
//! socket-home vs 4-hop via the pool — and the counter-intuitive result
//! that the 4-hop pool path is faster on average.

use starnuma::{LatencyModel, SystemParams};
use starnuma_bench::banner;
use starnuma_types::SocketId;

fn main() {
    banner(
        "Fig. 4 — 3-hop vs 4-hop coherence block transfers",
        "§III-C: average 3-hop R→H→O→R is 333 ns; 4-hop via the pool \
         (two CXL roundtrips) is 200 ns",
    );
    let m = LatencyModel::new(SystemParams::full_scale_starnuma());

    // Exhaustive average over all (R, H, O) socket combinations.
    let avg3 = m.average_three_hop_transfer();
    let hop4 = m.four_hop_pool_transfer();
    println!();
    println!(
        "{:<46} {:>8}",
        "3-hop socket-home transfer (avg over R,H,O)",
        format!("{avg3}")
    );
    println!(
        "{:<46} {:>8}",
        "4-hop transfer via the pool",
        format!("{hop4}")
    );
    println!(
        "{:<46} {:>8}",
        "BT_Socket accounting value (+80 ns mem+dir)",
        format!("{}", m.bt_socket_accounting())
    );
    println!(
        "{:<46} {:>8}",
        "BT_Pool accounting value (+80 ns mem+dir)",
        format!("{}", m.bt_pool_accounting())
    );

    // A few concrete R/H/O instances.
    println!("\nconcrete unloaded examples (network legs only):");
    let cases = [
        ("all same chassis (R=S0,H=S1,O=S2)", (0u16, 1u16, 2u16)),
        ("home remote chassis (R=S0,H=S4,O=S1)", (0, 4, 1)),
        ("three chassis (R=S0,H=S4,O=S8)", (0, 4, 8)),
    ];
    for (label, (r, h, o)) in cases {
        println!(
            "  {:<40} {:>8}",
            label,
            format!(
                "{}",
                m.three_hop_transfer(SocketId::new(r), SocketId::new(h), SocketId::new(o))
            )
        );
    }
    assert!((avg3.raw() - 333.0).abs() < 5.0);
    assert_eq!(hop4.raw(), 200.0);
    assert!(hop4 < avg3, "the pool path wins on average");
    println!("\npaper values reproduced: 333 ns (±model rounding) and 200 ns.");
}
