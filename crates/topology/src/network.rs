//! The directed-link database and routing.
//!
//! Every physical channel of Fig. 1 is represented as a *directed link* with
//! its own per-direction bandwidth, so the simulator can model each direction
//! as an independent FIFO server and capture queuing delays:
//!
//! * intra-chassis, per ordered socket pair: one direct UPI link;
//! * per socket: an uplink and a downlink UPI connection to the chassis'
//!   FLEX ASIC complex (used by inter-chassis traffic);
//! * per ordered chassis pair: the aggregated NUMALinks (two FLEX ASICs per
//!   chassis give four NUMALinks per chassis pair);
//! * per socket (StarNUMA only): a CXL uplink and downlink to the pool.

use core::fmt;
use std::collections::BTreeMap;

use starnuma_types::{ChassisId, Diagnostic, Location, Nanos, SocketId, StarNumaError};

use crate::latency::LatencyModel;
use crate::params::SystemParams;

/// Index of one directed link in a [`Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(u32);

impl LinkId {
    /// Returns the raw index (dense, `0..Network::link_count()`).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// The physical technology of a link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LinkKind {
    /// An intra-chassis UPI link (socket↔socket or socket↔FLEX ASIC).
    Upi,
    /// An inter-chassis NUMALink bundle between two FLEX ASIC complexes.
    NumaLink,
    /// A CXL link between a socket and the memory pool's MHD.
    Cxl,
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkKind::Upi => f.write_str("UPI"),
            LinkKind::NumaLink => f.write_str("NUMALink"),
            LinkKind::Cxl => f.write_str("CXL"),
        }
    }
}

/// Classification of a demand memory access by its target distance, matching
/// the access-type breakdown of Fig. 8c.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessClass {
    /// Local DRAM of the requesting socket (80 ns unloaded).
    Local,
    /// DRAM of another socket in the same chassis (130 ns unloaded).
    OneHop,
    /// DRAM of a socket in a different chassis (360 ns unloaded).
    TwoHop,
    /// The CXL memory pool (180 ns unloaded).
    Pool,
    /// Coherence-triggered 3-hop socket-to-socket block transfer (§III-C).
    BtSocket,
    /// Coherence-triggered 4-hop block transfer via the pool (§III-C).
    BtPool,
}

impl AccessClass {
    /// All classes, in Fig. 8c presentation order.
    pub const ALL: [AccessClass; 6] = [
        AccessClass::Local,
        AccessClass::OneHop,
        AccessClass::TwoHop,
        AccessClass::Pool,
        AccessClass::BtSocket,
        AccessClass::BtPool,
    ];

    /// This class's position in [`AccessClass::ALL`] (stats array index).
    pub const fn index(self) -> usize {
        match self {
            AccessClass::Local => 0,
            AccessClass::OneHop => 1,
            AccessClass::TwoHop => 2,
            AccessClass::Pool => 3,
            AccessClass::BtSocket => 4,
            AccessClass::BtPool => 5,
        }
    }

    /// Short label used in harness output.
    pub fn label(self) -> &'static str {
        match self {
            AccessClass::Local => "Local",
            AccessClass::OneHop => "1-hop",
            AccessClass::TwoHop => "2-hop",
            AccessClass::Pool => "Pool",
            AccessClass::BtSocket => "BT_Socket",
            AccessClass::BtPool => "BT_Pool",
        }
    }
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The sequence of links traversed by a demand access, with its unloaded
/// latency and classification.
#[derive(Clone, PartialEq, Debug)]
pub struct Route {
    /// Links traversed by the request (requester → memory).
    pub request: Vec<LinkId>,
    /// Links traversed by the response (memory → requester).
    pub response: Vec<LinkId>,
    /// End-to-end unloaded latency (includes `mem_base`).
    pub unloaded_total: Nanos,
    /// Access classification for statistics.
    pub class: AccessClass,
}

/// The link database and router for one system configuration.
///
/// # Examples
///
/// ```
/// use starnuma_topology::{Network, SystemParams};
/// use starnuma_types::{Location, SocketId};
///
/// let net = Network::new(&SystemParams::scaled_starnuma());
/// let r = net.route(SocketId::new(0), Location::Socket(SocketId::new(5)));
/// assert_eq!(r.request.len(), 3); // UPI uplink, NUMALink, UPI downlink
/// assert_eq!(r.unloaded_total.raw(), 360.0);
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    latency: LatencyModel,
    kinds: Vec<LinkKind>,
    bandwidths: Vec<f64>,
    upi_direct: BTreeMap<(SocketId, SocketId), LinkId>,
    upi_uplink: Vec<LinkId>,
    upi_downlink: Vec<LinkId>,
    numalink: BTreeMap<(ChassisId, ChassisId), LinkId>,
    cxl_up: Vec<LinkId>,
    cxl_down: Vec<LinkId>,
}

impl Network {
    /// Builds the link database for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`SystemParams::diagnostics`]; use
    /// [`Network::try_new`] to get the findings instead.
    pub fn new(params: &SystemParams) -> Self {
        // audit:allow(SN001) — documented panicking convenience wrapper.
        Self::try_new(params).expect("invalid system parameters")
    }

    /// Builds the link database after running the Pass 2 model checks.
    ///
    /// # Errors
    ///
    /// Returns [`StarNumaError::InvalidModel`] carrying every error-severity
    /// [`SystemParams::diagnostics`] finding.
    pub fn try_new(params: &SystemParams) -> Result<Self, StarNumaError> {
        let errors: Vec<_> = params
            .diagnostics()
            .into_iter()
            .filter(Diagnostic::is_error)
            .collect();
        if !errors.is_empty() {
            return Err(StarNumaError::InvalidModel(errors));
        }
        let mut net = Network {
            latency: LatencyModel::new(params.clone()),
            kinds: Vec::new(),
            bandwidths: Vec::new(),
            upi_direct: BTreeMap::new(),
            upi_uplink: Vec::new(),
            upi_downlink: Vec::new(),
            numalink: BTreeMap::new(),
            cxl_up: Vec::new(),
            cxl_down: Vec::new(),
        };
        let n = params.num_sockets;
        // Direct intra-chassis UPI links (each direction its own server).
        for s in SocketId::all(n) {
            for t in SocketId::all(n) {
                if s != t && s.same_chassis(t) {
                    let id = net.push(LinkKind::Upi, params.upi_bw.raw());
                    net.upi_direct.insert((s, t), id);
                }
            }
        }
        // Socket ↔ FLEX ASIC UPI connections.
        for _s in SocketId::all(n) {
            let up = net.push(LinkKind::Upi, params.upi_bw.raw());
            net.upi_uplink.push(up);
        }
        for _s in SocketId::all(n) {
            let down = net.push(LinkKind::Upi, params.upi_bw.raw());
            net.upi_downlink.push(down);
        }
        // Aggregated NUMALinks per ordered chassis pair.
        let numalink_bw = params.numalink_bw.raw() * params.numalinks_per_chassis_pair as f64;
        let chassis = params.num_chassis() as u8;
        for c in 0..chassis {
            for d in 0..chassis {
                if c != d {
                    let id = net.push(LinkKind::NumaLink, numalink_bw);
                    net.numalink
                        .insert((ChassisId::new(c), ChassisId::new(d)), id);
                }
            }
        }
        // CXL star links (StarNUMA only).
        if params.has_pool {
            for _s in SocketId::all(n) {
                let id = net.push(LinkKind::Cxl, params.cxl_bw.raw());
                net.cxl_up.push(id);
            }
            for _s in SocketId::all(n) {
                let id = net.push(LinkKind::Cxl, params.cxl_bw.raw());
                net.cxl_down.push(id);
            }
        }
        Ok(net)
    }

    fn push(&mut self, kind: LinkKind, bw: f64) -> LinkId {
        let id = LinkId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.bandwidths.push(bw);
        id
    }

    /// Returns the system parameters this network was built from.
    pub fn params(&self) -> &SystemParams {
        self.latency.params()
    }

    /// Returns the latency model for this network.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Total number of directed links.
    pub fn link_count(&self) -> usize {
        self.kinds.len()
    }

    /// The technology of a link.
    pub fn link_kind(&self, id: LinkId) -> LinkKind {
        self.kinds[id.index()]
    }

    /// Per-direction bandwidth of a link in GB/s.
    pub fn link_bandwidth_gbps(&self, id: LinkId) -> f64 {
        self.bandwidths[id.index()]
    }

    /// Iterates over all link ids, in dense index order
    /// (`LinkId::index()` runs `0..link_count()`).
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.kinds.len() as u32).map(LinkId)
    }

    /// The links traversed by one one-way message from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if a pool endpoint is used on a configuration without a pool.
    pub fn leg(&self, src: Location, dst: Location) -> Vec<LinkId> {
        match (src, dst) {
            (Location::Pool, Location::Pool) => Vec::new(),
            (Location::Socket(s), Location::Pool) => {
                assert!(
                    !self.cxl_up.is_empty(),
                    "no memory pool in this configuration"
                );
                vec![self.cxl_up[s.index() as usize]]
            }
            (Location::Pool, Location::Socket(s)) => {
                assert!(
                    !self.cxl_down.is_empty(),
                    "no memory pool in this configuration"
                );
                vec![self.cxl_down[s.index() as usize]]
            }
            (Location::Socket(s), Location::Socket(t)) => {
                if s == t {
                    Vec::new()
                } else if s.same_chassis(t) {
                    vec![self.upi_direct[&(s, t)]]
                } else {
                    vec![
                        self.upi_uplink[s.index() as usize],
                        self.numalink[&(s.chassis(), t.chassis())],
                        self.upi_downlink[t.index() as usize],
                    ]
                }
            }
        }
    }

    /// Classifies a demand access from `requester` to memory at `target`.
    pub fn classify(&self, requester: SocketId, target: Location) -> AccessClass {
        match target {
            Location::Pool => AccessClass::Pool,
            Location::Socket(t) => {
                if requester == t {
                    AccessClass::Local
                } else if requester.same_chassis(t) {
                    AccessClass::OneHop
                } else {
                    AccessClass::TwoHop
                }
            }
        }
    }

    /// Computes the full route of a demand access from `requester` to memory
    /// at `target`.
    pub fn route(&self, requester: SocketId, target: Location) -> Route {
        let src = Location::Socket(requester);
        Route {
            request: self.leg(src, target),
            response: self.leg(target, src),
            unloaded_total: self.latency.demand_access(requester, target),
            class: self.classify(requester, target),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn starnuma_net() -> Network {
        Network::new(&SystemParams::scaled_starnuma())
    }

    #[test]
    fn link_counts_16_socket() {
        let net = starnuma_net();
        // Per chassis: 4×3 = 12 directed intra-chassis UPI; ×4 chassis = 48.
        // Uplinks 16 + downlinks 16 = 32 socket↔ASIC links.
        // NUMALink: 4×3 = 12 ordered chassis pairs.
        // CXL: 16 up + 16 down = 32.
        assert_eq!(net.link_count(), 48 + 32 + 12 + 32);
        let baseline = Network::new(&SystemParams::scaled_baseline());
        assert_eq!(baseline.link_count(), 48 + 32 + 12);
    }

    #[test]
    fn local_leg_is_empty() {
        let net = starnuma_net();
        let s = Location::Socket(SocketId::new(3));
        assert!(net.leg(s, s).is_empty());
        assert!(net.leg(Location::Pool, Location::Pool).is_empty());
    }

    #[test]
    fn intra_chassis_leg_is_one_upi() {
        let net = starnuma_net();
        let leg = net.leg(
            Location::Socket(SocketId::new(0)),
            Location::Socket(SocketId::new(2)),
        );
        assert_eq!(leg.len(), 1);
        assert_eq!(net.link_kind(leg[0]), LinkKind::Upi);
    }

    #[test]
    fn inter_chassis_leg_is_three_links() {
        let net = starnuma_net();
        let leg = net.leg(
            Location::Socket(SocketId::new(1)),
            Location::Socket(SocketId::new(9)),
        );
        assert_eq!(leg.len(), 3);
        assert_eq!(net.link_kind(leg[0]), LinkKind::Upi);
        assert_eq!(net.link_kind(leg[1]), LinkKind::NumaLink);
        assert_eq!(net.link_kind(leg[2]), LinkKind::Upi);
    }

    #[test]
    fn pool_leg_is_one_cxl() {
        let net = starnuma_net();
        let up = net.leg(Location::Socket(SocketId::new(7)), Location::Pool);
        let down = net.leg(Location::Pool, Location::Socket(SocketId::new(7)));
        assert_eq!(up.len(), 1);
        assert_eq!(down.len(), 1);
        assert_ne!(up[0], down[0], "directions are independent servers");
        assert_eq!(net.link_kind(up[0]), LinkKind::Cxl);
    }

    #[test]
    #[should_panic(expected = "no memory pool")]
    fn baseline_rejects_pool_routes() {
        let net = Network::new(&SystemParams::scaled_baseline());
        let _ = net.leg(Location::Socket(SocketId::new(0)), Location::Pool);
    }

    #[test]
    fn route_classification() {
        let net = starnuma_net();
        let s0 = SocketId::new(0);
        assert_eq!(net.classify(s0, Location::Socket(s0)), AccessClass::Local);
        assert_eq!(
            net.classify(s0, Location::Socket(SocketId::new(3))),
            AccessClass::OneHop
        );
        assert_eq!(
            net.classify(s0, Location::Socket(SocketId::new(12))),
            AccessClass::TwoHop
        );
        assert_eq!(net.classify(s0, Location::Pool), AccessClass::Pool);
    }

    #[test]
    fn route_latency_matches_model() {
        let net = starnuma_net();
        let r = net.route(SocketId::new(0), Location::Socket(SocketId::new(8)));
        assert_eq!(r.unloaded_total.raw(), 360.0);
        assert_eq!(r.request.len(), 3);
        assert_eq!(r.response.len(), 3);
        let p = net.route(SocketId::new(0), Location::Pool);
        assert_eq!(p.unloaded_total.raw(), 180.0);
        assert_eq!(p.class, AccessClass::Pool);
    }

    #[test]
    fn numalink_bandwidth_is_aggregated() {
        let net = starnuma_net();
        let leg = net.leg(
            Location::Socket(SocketId::new(0)),
            Location::Socket(SocketId::new(15)),
        );
        // Scaled NUMALink: 3 GB/s × 4 links per chassis pair = 12 GB/s.
        assert_eq!(net.link_bandwidth_gbps(leg[1]), 12.0);
        assert_eq!(net.link_bandwidth_gbps(leg[0]), 3.0);
    }

    #[test]
    fn distinct_directions_distinct_links() {
        let net = starnuma_net();
        let ab = net.leg(
            Location::Socket(SocketId::new(0)),
            Location::Socket(SocketId::new(1)),
        );
        let ba = net.leg(
            Location::Socket(SocketId::new(1)),
            Location::Socket(SocketId::new(0)),
        );
        assert_ne!(ab[0], ba[0]);
    }

    #[test]
    fn thirty_two_socket_network_builds() {
        let params = SystemParams::scaled_starnuma()
            .with_num_sockets(32)
            .unwrap();
        let net = Network::new(&params);
        let r = net.route(SocketId::new(0), Location::Socket(SocketId::new(31)));
        assert_eq!(r.class, AccessClass::TwoHop);
        assert_eq!(r.unloaded_total.raw(), 360.0);
        // 8 chassis: 8×12 intra + 2×32 asic + 8×7 numalink + 2×32 cxl.
        assert_eq!(net.link_count(), 96 + 64 + 56 + 64);
    }

    #[test]
    fn access_class_labels() {
        for c in AccessClass::ALL {
            assert!(!c.label().is_empty());
        }
        assert_eq!(AccessClass::Pool.to_string(), "Pool");
    }
}
