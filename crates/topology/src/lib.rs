//! Interconnect topology of the baseline 16-socket system and StarNUMA.
//!
//! Models the HPE Superdome FLEX-style hierarchy of the paper (§II-A):
//! four-socket chassis with all-to-all intra-chassis UPI links, FLEX ASICs
//! bridging chassis over all-to-all NUMALinks, and — for StarNUMA (§III) —
//! a CXL-attached memory pool connected to every socket in a star.
//!
//! The crate provides:
//!
//! * [`SystemParams`]: the full-scale (Table I) and scaled-down (Table II)
//!   parameter sets, plus the §V-C/§V-D/§V-E sensitivity variants;
//! * [`Network`]: the directed-link database and routing (which links a
//!   request and its response traverse);
//! * [`latency`]: the analytic unloaded-latency model that reproduces every
//!   latency figure in the paper (80/130/360/180 ns accesses; 333/413 ns
//!   3-hop and 200/280 ns 4-hop block transfers; the Fig. 3 CXL breakdown).
//!
//! # Examples
//!
//! ```
//! use starnuma_topology::{Network, SystemParams};
//! use starnuma_types::{Location, SocketId};
//!
//! let params = SystemParams::scaled_starnuma();
//! let net = Network::new(&params);
//! let route = net.route(SocketId::new(0), Location::Pool);
//! assert_eq!(route.unloaded_total.raw(), 180.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dot;
pub mod latency;
mod network;
mod params;

pub use dot::to_dot;
pub use latency::{CxlLatencyBreakdown, LatencyModel};
pub use network::{AccessClass, LinkId, LinkKind, Network, Route};
pub use params::{BandwidthVariant, ScalePreset, SystemParams};
