//! Analytic unloaded-latency model.
//!
//! Derived entirely from the paper's published numbers (§II-A, §III-B,
//! §III-C, §V-A), which are mutually consistent under a simple decomposition:
//!
//! * every memory access pays `mem_base` = 80 ns (on-processor time, home
//!   directory/memory-controller lookup, DRAM access);
//! * each *network leg* pays a one-way latency: 0 within a socket, 25 ns per
//!   intra-chassis UPI hop, 140 ns per inter-chassis traversal
//!   (UPI + FLEX ASIC + NUMALink + FLEX ASIC + UPI), 50 ns per socket↔pool
//!   CXL traversal;
//! * a demand access is a roundtrip (two legs); a 3-hop block transfer is
//!   three legs (R→H, H→O, O→R); a 4-hop pool transfer is two CXL roundtrips.
//!
//! This reproduces: 80/130/360/180 ns unloaded accesses, the 333 ns average
//! 3-hop and 200 ns average 4-hop transfer (§III-C), and the 413 ns/280 ns
//! `BT` accounting values of §V-A (transfer + 80 ns memory/directory).

use starnuma_types::{Location, Nanos, SocketId};

use crate::params::SystemParams;

/// The Fig. 3 component-by-component CXL memory-pool access latency
/// breakdown (roundtrip overheads, summing to the 100 ns pool penalty).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CxlLatencyBreakdown {
    /// The processor-side CXL port (25 ns roundtrip).
    pub cpu_port: Nanos,
    /// The MHD-side CXL port (25 ns roundtrip).
    pub mhd_port: Nanos,
    /// One retimer between host and MHD (20 ns roundtrip).
    pub retimer: Nanos,
    /// Flight time on the link (5 ns per direction).
    pub flight: Nanos,
    /// MHD-internal network, arbitration, and coherence directory, including
    /// the conservative 5 ns coherence adder over Pond (20 ns total).
    pub mhd_internal: Nanos,
}

impl CxlLatencyBreakdown {
    /// The paper's Fig. 3 values.
    pub fn paper() -> Self {
        CxlLatencyBreakdown {
            cpu_port: Nanos::new(25.0),
            mhd_port: Nanos::new(25.0),
            retimer: Nanos::new(20.0),
            flight: Nanos::new(10.0),
            mhd_internal: Nanos::new(20.0),
        }
    }

    /// Total roundtrip overhead of a pool access over a local access
    /// (100 ns in the paper).
    pub fn total(&self) -> Nanos {
        self.cpu_port + self.mhd_port + self.retimer + self.flight + self.mhd_internal
    }

    /// End-to-end unloaded pool access latency: overhead plus on-processor
    /// time and DRAM access (180 ns in the paper).
    pub fn end_to_end(&self, mem_base: Nanos) -> Nanos {
        self.total() + mem_base
    }
}

impl Default for CxlLatencyBreakdown {
    fn default() -> Self {
        Self::paper()
    }
}

/// Unloaded-latency calculator for a given [`SystemParams`].
///
/// # Examples
///
/// ```
/// use starnuma_topology::{LatencyModel, SystemParams};
/// use starnuma_types::{Location, SocketId};
///
/// let m = LatencyModel::new(SystemParams::scaled_starnuma());
/// let s0 = SocketId::new(0);
/// assert_eq!(m.demand_access(s0, Location::Socket(s0)).raw(), 80.0);
/// assert_eq!(m.demand_access(s0, Location::Socket(SocketId::new(4))).raw(), 360.0);
/// assert_eq!(m.demand_access(s0, Location::Pool).raw(), 180.0);
/// ```
#[derive(Clone, Debug)]
pub struct LatencyModel {
    params: SystemParams,
}

impl LatencyModel {
    /// Creates a latency model for the given parameters.
    pub fn new(params: SystemParams) -> Self {
        LatencyModel { params }
    }

    /// Returns the underlying parameters.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// One-way network latency between two memory-system endpoints.
    ///
    /// Zero within a socket; 25 ns between sockets of the same chassis;
    /// 140 ns across chassis; `cxl_one_way` between any socket and the pool.
    pub fn one_way(&self, a: Location, b: Location) -> Nanos {
        match (a, b) {
            (Location::Pool, Location::Pool) => Nanos::ZERO,
            (Location::Pool, Location::Socket(_)) | (Location::Socket(_), Location::Pool) => {
                self.params.cxl_one_way
            }
            (Location::Socket(x), Location::Socket(y)) => {
                if x == y {
                    Nanos::ZERO
                } else if x.same_chassis(y) {
                    self.params.upi_one_way
                } else {
                    self.params.inter_chassis_one_way
                }
            }
        }
    }

    /// Unloaded end-to-end latency of a demand memory access from
    /// `requester` to memory at `target`: request leg + memory + response leg.
    pub fn demand_access(&self, requester: SocketId, target: Location) -> Nanos {
        let leg = self.one_way(Location::Socket(requester), target);
        self.params.mem_base + leg * 2.0
    }

    /// Unloaded latency of a 3-hop cache-to-cache transfer
    /// R→H→O→R (home is a socket, §III-C), network legs only.
    pub fn three_hop_transfer(&self, r: SocketId, h: SocketId, o: SocketId) -> Nanos {
        self.one_way(Location::Socket(r), Location::Socket(h))
            + self.one_way(Location::Socket(h), Location::Socket(o))
            + self.one_way(Location::Socket(o), Location::Socket(r))
    }

    /// Unloaded latency of a 4-hop transfer via the pool R→H→O→H→R
    /// (home is the pool, §III-C): two CXL roundtrips, network legs only.
    pub fn four_hop_pool_transfer(&self) -> Nanos {
        self.params.cxl_one_way * 4.0
    }

    /// Average unloaded 3-hop transfer latency over all (R, H, O) socket
    /// combinations, as quoted in §III-C (≈333 ns on the 16-socket system).
    pub fn average_three_hop_transfer(&self) -> Nanos {
        let n = self.params.num_sockets as u16;
        let mut total = 0.0;
        let mut count = 0u64;
        for r in 0..n {
            for h in 0..n {
                for o in 0..n {
                    // canonical order: fixed (requester, home, owner) nest.
                    total += self
                        .three_hop_transfer(SocketId::new(r), SocketId::new(h), SocketId::new(o))
                        .raw();
                    count += 1;
                }
            }
        }
        Nanos::new(total / count as f64)
    }

    /// The §V-A accounting latency of a socket-home block transfer
    /// (`BT_Socket`): average 3-hop transfer plus 80 ns for memory access and
    /// directory lookup (413 ns in the paper).
    pub fn bt_socket_accounting(&self) -> Nanos {
        self.average_three_hop_transfer() + self.params.mem_base
    }

    /// The §V-A accounting latency of a pool-home block transfer
    /// (`BT_Pool`): 4-hop pool transfer plus 80 ns (280 ns in the paper).
    pub fn bt_pool_accounting(&self) -> Nanos {
        self.four_hop_pool_transfer() + self.params.mem_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LatencyModel {
        LatencyModel::new(SystemParams::scaled_starnuma())
    }

    #[test]
    fn fig3_breakdown_sums_to_paper_values() {
        let b = CxlLatencyBreakdown::paper();
        assert_eq!(b.total().raw(), 100.0);
        assert_eq!(b.end_to_end(Nanos::new(80.0)).raw(), 180.0);
    }

    #[test]
    fn unloaded_access_latencies_match_paper() {
        let m = model();
        let s0 = SocketId::new(0);
        assert_eq!(m.demand_access(s0, Location::Socket(s0)).raw(), 80.0);
        assert_eq!(
            m.demand_access(s0, Location::Socket(SocketId::new(1)))
                .raw(),
            130.0
        );
        assert_eq!(
            m.demand_access(s0, Location::Socket(SocketId::new(4)))
                .raw(),
            360.0
        );
        assert_eq!(m.demand_access(s0, Location::Pool).raw(), 180.0);
    }

    #[test]
    fn average_three_hop_is_paper_333ns() {
        // §III-C: "the average (unloaded) 3-hop cache block transfer latency
        // is 333ns". Our decomposition gives 329 ns over all 16³ combos.
        let avg = model().average_three_hop_transfer().raw();
        assert!((avg - 333.0).abs() < 5.0, "got {avg}");
    }

    #[test]
    fn four_hop_pool_transfer_is_200ns() {
        assert_eq!(model().four_hop_pool_transfer().raw(), 200.0);
    }

    #[test]
    fn bt_accounting_values() {
        let m = model();
        // §V-A: 413 ns for BT_Socket, 280 ns for BT_Pool.
        assert!((m.bt_socket_accounting().raw() - 413.0).abs() < 5.0);
        assert_eq!(m.bt_pool_accounting().raw(), 280.0);
    }

    #[test]
    fn one_way_is_symmetric() {
        let m = model();
        for a in 0..16u16 {
            for b in 0..16u16 {
                let x = Location::Socket(SocketId::new(a));
                let y = Location::Socket(SocketId::new(b));
                assert_eq!(m.one_way(x, y), m.one_way(y, x));
            }
            let s = Location::Socket(SocketId::new(a));
            assert_eq!(m.one_way(s, Location::Pool), m.one_way(Location::Pool, s));
        }
        assert_eq!(m.one_way(Location::Pool, Location::Pool), Nanos::ZERO);
    }

    #[test]
    fn pool_is_faster_than_two_hop_but_slower_than_one_hop() {
        let m = model();
        let s0 = SocketId::new(0);
        let pool = m.demand_access(s0, Location::Pool).raw();
        let one_hop = m
            .demand_access(s0, Location::Socket(SocketId::new(1)))
            .raw();
        let two_hop = m
            .demand_access(s0, Location::Socket(SocketId::new(12)))
            .raw();
        assert!(pool > one_hop, "pool is 40% slower than 1-hop (§II-C)");
        assert!(
            pool * 2.0 == two_hop,
            "pool is 2x faster than 2-hop (§II-C)"
        );
    }

    #[test]
    fn cxl_switch_variant_still_beats_two_hop() {
        // §V-C: 270 ns pool access is still 25 % lower than a 2-hop access.
        let m = LatencyModel::new(SystemParams::scaled_starnuma().with_cxl_switch());
        let pool = m.demand_access(SocketId::new(0), Location::Pool).raw();
        assert_eq!(pool, 270.0);
        assert!(pool < 360.0 * 0.76);
    }

    #[test]
    fn section_2c_amat_example() {
        // §II-C worked example: 64 % local + 36 % shared-by-all accesses
        // (25 % intra-chassis at 130 ns, 75 % inter-chassis at 360 ns)
        // → AMAT 160 ns; with the pool hosting those pages → 112 ns.
        let base_amat: f64 = 0.64 * 80.0 + 0.36 * (0.25 * 130.0 + 0.75 * 360.0);
        assert!((base_amat - 160.0).abs() < 1.0, "got {base_amat}");
        let pool_amat: f64 = 0.64 * 80.0 + 0.36 * (0.25 * 130.0 + 0.75 * 180.0);
        assert!((pool_amat - 112.0).abs() < 4.0, "got {pool_amat}");
    }
}
