//! System parameter sets: Table I (full scale), Table II (scaled down for
//! simulation), and the sensitivity-study variants of §V-C, §V-D, and §V-G.

use starnuma_types::{ConfigError, Diagnostic, GbPerSec, Nanos, SOCKETS_PER_CHASSIS};

/// Bandwidth-provisioning variants studied in §V-D of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BandwidthVariant {
    /// The default provisioning of Table I / Table II.
    #[default]
    Default,
    /// *Baseline ISO-BW*: coherent-link bandwidth raised by the aggregate
    /// amount StarNUMA's 16 CXL links would add (UPI 20.8→26.4 GB/s,
    /// NUMALink 13→17 GB/s at full scale; same ratios when scaled down).
    BaselineIsoBw,
    /// *Baseline 2×BW*: every coherent link doubled.
    Baseline2xBw,
    /// *StarNUMA Half-BW*: CXL links scaled from x8 down to x4.
    StarNumaHalfBw,
}

impl BandwidthVariant {
    /// Multiplier applied to UPI link bandwidth.
    pub fn upi_factor(self) -> f64 {
        match self {
            BandwidthVariant::Default | BandwidthVariant::StarNumaHalfBw => 1.0,
            BandwidthVariant::BaselineIsoBw => 26.4 / 20.8,
            BandwidthVariant::Baseline2xBw => 2.0,
        }
    }

    /// Multiplier applied to NUMALink bandwidth.
    pub fn numalink_factor(self) -> f64 {
        match self {
            BandwidthVariant::Default | BandwidthVariant::StarNumaHalfBw => 1.0,
            BandwidthVariant::BaselineIsoBw => 17.0 / 13.0,
            BandwidthVariant::Baseline2xBw => 2.0,
        }
    }

    /// Multiplier applied to CXL link bandwidth.
    pub fn cxl_factor(self) -> f64 {
        match self {
            BandwidthVariant::StarNumaHalfBw => 0.5,
            _ => 1.0,
        }
    }
}

/// Simulation-scale presets used in the §V-G methodology study.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ScalePreset {
    /// SC1: 4 cores per socket, Table II bandwidths (the default).
    #[default]
    Sc1,
    /// SC2: SC1 hardware, 3× more detailed instructions simulated per phase.
    Sc2,
    /// SC3: doubled system scale — 8 cores per socket, 2× memory and
    /// interconnect bandwidth.
    Sc3,
}

/// Complete hardware parameter set for one simulated system.
///
/// Construct with [`SystemParams::full_scale_baseline`],
/// [`SystemParams::scaled_baseline`], [`SystemParams::scaled_starnuma`], or
/// the builder-style `with_*` methods for sensitivity variants.
#[derive(Clone, PartialEq, Debug)]
pub struct SystemParams {
    /// Number of CPU sockets (16 by default; 32 for the §V-C scale-out).
    pub num_sockets: usize,
    /// Cores per socket (28 full scale, 4 scaled down).
    pub cores_per_socket: usize,
    /// Whether the CXL memory pool exists (StarNUMA) or not (baseline).
    pub has_pool: bool,

    // --- Unloaded latency components (see `latency` module). ---
    /// On-processor time plus local DRAM access: the end-to-end latency of a
    /// local memory access (80 ns).
    pub mem_base: Nanos,
    /// One-way latency of one intra-chassis UPI hop (25 ns; 50 ns roundtrip
    /// penalty per §II-A).
    pub upi_one_way: Nanos,
    /// One-way latency of an inter-chassis traversal: UPI to the FLEX ASIC,
    /// NUMALink, UPI from the remote ASIC (140 ns; 280 ns roundtrip penalty).
    pub inter_chassis_one_way: Nanos,
    /// One-way latency of a socket↔pool CXL traversal (50 ns; 100 ns
    /// roundtrip penalty per Fig. 3; 95 ns one-way with a CXL switch, §V-C).
    pub cxl_one_way: Nanos,

    // --- Per-direction link bandwidths. ---
    /// Bandwidth of one UPI link, per direction.
    pub upi_bw: GbPerSec,
    /// Bandwidth of one NUMALink, per direction.
    pub numalink_bw: GbPerSec,
    /// Number of NUMALinks between each chassis pair (2 FLEX ASICs per
    /// chassis, all-to-all: 4 links per chassis pair).
    pub numalinks_per_chassis_pair: usize,
    /// Effective bandwidth of one socket's CXL link to the pool, per
    /// direction (only meaningful when `has_pool`).
    pub cxl_bw: GbPerSec,

    // --- Memory bandwidth (aggregate across channels). ---
    /// Aggregate local-DRAM bandwidth per socket.
    pub socket_mem_bw: GbPerSec,
    /// Aggregate DRAM bandwidth of the memory pool's MHD.
    pub pool_mem_bw: GbPerSec,
}

/// Effective per-channel DDR5-4800 bandwidth. The raw channel peak is
/// 38.4 GB/s; sustained efficiency on mixed read/write streams is ~65 %.
const DDR5_CHANNEL_EFFECTIVE: f64 = 25.0;

impl SystemParams {
    /// The full-scale baseline 16-socket system of Table I (no pool).
    pub fn full_scale_baseline() -> Self {
        SystemParams {
            num_sockets: 16,
            cores_per_socket: 28,
            has_pool: false,
            mem_base: Nanos::new(80.0),
            upi_one_way: Nanos::new(25.0),
            inter_chassis_one_way: Nanos::new(140.0),
            cxl_one_way: Nanos::new(50.0),
            upi_bw: GbPerSec::new(20.8),
            numalink_bw: GbPerSec::new(13.0),
            numalinks_per_chassis_pair: 4,
            cxl_bw: GbPerSec::new(40.0),
            socket_mem_bw: GbPerSec::new(6.0 * DDR5_CHANNEL_EFFECTIVE),
            pool_mem_bw: GbPerSec::new(16.0 * DDR5_CHANNEL_EFFECTIVE),
        }
    }

    /// The full-scale StarNUMA system of Table I (pool attached).
    pub fn full_scale_starnuma() -> Self {
        SystemParams {
            has_pool: true,
            ..Self::full_scale_baseline()
        }
    }

    /// The scaled-down baseline system of Table II: 4 cores per socket,
    /// one DDR5 channel per socket, 3 GB/s coherent links.
    pub fn scaled_baseline() -> Self {
        SystemParams {
            num_sockets: 16,
            cores_per_socket: 4,
            has_pool: false,
            mem_base: Nanos::new(80.0),
            upi_one_way: Nanos::new(25.0),
            inter_chassis_one_way: Nanos::new(140.0),
            cxl_one_way: Nanos::new(50.0),
            upi_bw: GbPerSec::new(3.0),
            numalink_bw: GbPerSec::new(3.0),
            numalinks_per_chassis_pair: 4,
            cxl_bw: GbPerSec::new(6.0),
            socket_mem_bw: GbPerSec::new(DDR5_CHANNEL_EFFECTIVE),
            pool_mem_bw: GbPerSec::new(2.0 * DDR5_CHANNEL_EFFECTIVE),
        }
    }

    /// The scaled-down StarNUMA system of Table II: the scaled baseline plus
    /// a pool with two DDR5 channels and a 6 GB/s-per-direction CXL link from
    /// each socket.
    pub fn scaled_starnuma() -> Self {
        SystemParams {
            has_pool: true,
            ..Self::scaled_baseline()
        }
    }

    /// Applies a §V-D bandwidth-provisioning variant.
    pub fn with_bandwidth_variant(mut self, variant: BandwidthVariant) -> Self {
        self.upi_bw = self.upi_bw.scale(variant.upi_factor());
        self.numalink_bw = self.numalink_bw.scale(variant.numalink_factor());
        self.cxl_bw = self.cxl_bw.scale(variant.cxl_factor());
        self
    }

    /// Applies the §V-C elevated CXL latency (an intermediate CXL switch
    /// adds 90 ns roundtrip: the pool-access penalty grows from 100 ns to
    /// 190 ns, i.e. 270 ns end-to-end unloaded).
    pub fn with_cxl_switch(mut self) -> Self {
        self.cxl_one_way += Nanos::new(45.0);
        self
    }

    /// Overrides the one-way CXL latency (sensitivity studies).
    pub fn with_cxl_one_way(mut self, one_way: Nanos) -> Self {
        self.cxl_one_way = one_way;
        self
    }

    /// Applies the SC3 doubled-scale preset of §V-G: 8 cores per socket and
    /// 2× memory and interconnect bandwidth. (SC1/SC2 leave hardware
    /// parameters unchanged; SC2 only lengthens the simulated windows.)
    pub fn with_scale_preset(mut self, preset: ScalePreset) -> Self {
        if preset == ScalePreset::Sc3 {
            self.cores_per_socket *= 2;
            self.upi_bw = self.upi_bw.scale(2.0);
            self.numalink_bw = self.numalink_bw.scale(2.0);
            self.cxl_bw = self.cxl_bw.scale(2.0);
            self.socket_mem_bw = self.socket_mem_bw.scale(2.0);
            self.pool_mem_bw = self.pool_mem_bw.scale(2.0);
        }
        self
    }

    /// Expands the system to `n` sockets (must be a multiple of four).
    /// Used by the §V-C 32-socket discussion.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `n` is zero or not a multiple of four.
    pub fn with_num_sockets(mut self, n: usize) -> Result<Self, ConfigError> {
        if n == 0 || !n.is_multiple_of(SOCKETS_PER_CHASSIS) {
            return Err(ConfigError::new(format!(
                "socket count must be a positive multiple of {SOCKETS_PER_CHASSIS}, got {n}"
            )));
        }
        self.num_sockets = n;
        Ok(self)
    }

    /// Number of chassis in the system.
    pub fn num_chassis(&self) -> usize {
        self.num_sockets / SOCKETS_PER_CHASSIS
    }

    /// Total core count of the system.
    pub fn total_cores(&self) -> usize {
        self.num_sockets * self.cores_per_socket
    }

    /// Pre-run physical-consistency checks (audit Pass 2).
    ///
    /// Returns *every* problem as a structured [`Diagnostic`] instead of
    /// stopping at the first: `SN101` for non-physical scalar parameters
    /// (counts, latencies, bandwidths) and `SN104` for a topology whose
    /// chassis cannot reach each other.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if self.num_sockets == 0 || !self.num_sockets.is_multiple_of(SOCKETS_PER_CHASSIS) {
            out.push(Diagnostic::error(
                "SN101",
                "SystemParams.num_sockets",
                format!(
                    "socket count must be a positive multiple of {SOCKETS_PER_CHASSIS}, got {}",
                    self.num_sockets
                ),
                "the glueless mesh is built from whole 4-socket chassis; use with_num_sockets",
            ));
        }
        if self.cores_per_socket == 0 {
            out.push(Diagnostic::error(
                "SN101",
                "SystemParams.cores_per_socket",
                "cores_per_socket must be positive",
                "Table I uses 28 cores per socket, Table II uses 4",
            ));
        }
        let latencies: [(&str, Nanos); 4] = [
            ("mem_base", self.mem_base),
            ("upi_one_way", self.upi_one_way),
            ("inter_chassis_one_way", self.inter_chassis_one_way),
            ("cxl_one_way", self.cxl_one_way),
        ];
        for (field, lat) in latencies {
            if !lat.raw().is_finite() || lat.raw() <= 0.0 {
                out.push(Diagnostic::error(
                    "SN101",
                    format!("SystemParams.{field}"),
                    format!(
                        "latency must be a positive finite time, got {} ns",
                        lat.raw()
                    ),
                    "see Table I/II and Fig. 3 for the paper's latency components",
                ));
            }
        }
        let mut bandwidths: Vec<(&str, GbPerSec)> = vec![
            ("upi_bw", self.upi_bw),
            ("numalink_bw", self.numalink_bw),
            ("socket_mem_bw", self.socket_mem_bw),
        ];
        if self.has_pool {
            bandwidths.push(("cxl_bw", self.cxl_bw));
            bandwidths.push(("pool_mem_bw", self.pool_mem_bw));
        }
        for (field, bw) in bandwidths {
            if !bw.raw().is_finite() || bw.raw() <= 0.0 {
                out.push(Diagnostic::error(
                    "SN101",
                    format!("SystemParams.{field}"),
                    format!(
                        "bandwidth must be a positive finite rate, got {} GB/s",
                        bw.raw()
                    ),
                    "see Table I/II for the paper's per-direction link bandwidths",
                ));
            }
        }
        if self.num_chassis() > 1 && self.numalinks_per_chassis_pair == 0 {
            out.push(Diagnostic::error(
                "SN104",
                "SystemParams.numalinks_per_chassis_pair",
                format!(
                    "{} chassis but zero NUMALinks between each pair: the topology is disconnected",
                    self.num_chassis()
                ),
                "the paper's FLEX ASICs provide 4 links per chassis pair",
            ));
        }
        out
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] carrying the first error-severity finding of
    /// [`SystemParams::diagnostics`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self.diagnostics().into_iter().find(Diagnostic::is_error) {
            Some(d) => Err(ConfigError::new(format!("{}: {}", d.location, d.message))),
            None => Ok(()),
        }
    }
}

impl Default for SystemParams {
    /// Defaults to the scaled-down StarNUMA configuration (Table II).
    fn default() -> Self {
        Self::scaled_starnuma()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let p = SystemParams::full_scale_baseline();
        assert_eq!(p.num_sockets, 16);
        assert_eq!(p.cores_per_socket, 28);
        assert_eq!(p.total_cores(), 448);
        assert_eq!(p.num_chassis(), 4);
        assert!(!p.has_pool);
        assert!((p.upi_bw.raw() - 20.8).abs() < 1e-9);
        assert!((p.numalink_bw.raw() - 13.0).abs() < 1e-9);
        let s = SystemParams::full_scale_starnuma();
        assert!(s.has_pool);
        assert!((s.cxl_bw.raw() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn table2_values() {
        let p = SystemParams::scaled_starnuma();
        assert_eq!(p.cores_per_socket, 4);
        assert_eq!(p.total_cores(), 64);
        assert!((p.upi_bw.raw() - 3.0).abs() < 1e-9);
        assert!((p.numalink_bw.raw() - 3.0).abs() < 1e-9);
        assert!((p.cxl_bw.raw() - 6.0).abs() < 1e-9);
        assert!((p.pool_mem_bw.raw() / p.socket_mem_bw.raw() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn latency_components_match_paper() {
        let p = SystemParams::scaled_starnuma();
        // Local 80, 1-hop 130, 2-hop 360, pool 180.
        assert_eq!(p.mem_base.raw(), 80.0);
        assert_eq!((p.mem_base + p.upi_one_way * 2.0).raw(), 130.0);
        assert_eq!((p.mem_base + p.inter_chassis_one_way * 2.0).raw(), 360.0);
        assert_eq!((p.mem_base + p.cxl_one_way * 2.0).raw(), 180.0);
    }

    #[test]
    fn iso_bw_variant_matches_section_5d() {
        let p = SystemParams::full_scale_baseline()
            .with_bandwidth_variant(BandwidthVariant::BaselineIsoBw);
        assert!((p.upi_bw.raw() - 26.4).abs() < 1e-9);
        assert!((p.numalink_bw.raw() - 17.0).abs() < 1e-9);
    }

    #[test]
    fn double_bw_and_half_bw_variants() {
        let p = SystemParams::full_scale_baseline()
            .with_bandwidth_variant(BandwidthVariant::Baseline2xBw);
        assert!((p.upi_bw.raw() - 41.6).abs() < 1e-9);
        assert!((p.numalink_bw.raw() - 26.0).abs() < 1e-9);
        let s = SystemParams::full_scale_starnuma()
            .with_bandwidth_variant(BandwidthVariant::StarNumaHalfBw);
        assert!((s.cxl_bw.raw() - 20.0).abs() < 1e-9);
        assert!((s.upi_bw.raw() - 20.8).abs() < 1e-9);
    }

    #[test]
    fn cxl_switch_latency() {
        let p = SystemParams::scaled_starnuma().with_cxl_switch();
        // End-to-end pool access: 80 + 2×95 = 270 ns (§V-C).
        assert_eq!((p.mem_base + p.cxl_one_way * 2.0).raw(), 270.0);
    }

    #[test]
    fn sc3_doubles_scale() {
        let p = SystemParams::scaled_starnuma().with_scale_preset(ScalePreset::Sc3);
        assert_eq!(p.cores_per_socket, 8);
        assert!((p.upi_bw.raw() - 6.0).abs() < 1e-9);
        assert!((p.cxl_bw.raw() - 12.0).abs() < 1e-9);
        let unchanged = SystemParams::scaled_starnuma().with_scale_preset(ScalePreset::Sc1);
        assert_eq!(unchanged, SystemParams::scaled_starnuma());
    }

    #[test]
    fn socket_count_validation() {
        assert!(SystemParams::scaled_starnuma().with_num_sockets(32).is_ok());
        assert!(SystemParams::scaled_starnuma()
            .with_num_sockets(13)
            .is_err());
        assert!(SystemParams::scaled_starnuma().with_num_sockets(0).is_err());
        let p = SystemParams::scaled_starnuma()
            .with_num_sockets(32)
            .unwrap();
        assert_eq!(p.num_chassis(), 8);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_cores() {
        let mut p = SystemParams::scaled_baseline();
        p.cores_per_socket = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn diagnostics_flag_negative_latency_as_sn101() {
        let mut p = SystemParams::scaled_starnuma();
        p.mem_base = Nanos::new(-5.0);
        let diags = p.diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SN101");
        assert!(diags[0].is_error());
        assert!(diags[0].location.contains("mem_base"));
        assert!(p.validate().is_err());
    }

    #[test]
    fn diagnostics_flag_disconnected_topology_as_sn104() {
        let mut p = SystemParams::scaled_baseline();
        p.numalinks_per_chassis_pair = 0;
        let diags = p.diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SN104");
        assert!(diags[0].is_error());
    }

    #[test]
    fn diagnostics_collect_every_problem() {
        let mut p = SystemParams::scaled_starnuma();
        // GbPerSec::new rejects non-positive rates, but Default is 0.0 —
        // exactly the bypass the SN101 check exists to catch.
        p.upi_bw = GbPerSec::default();
        p.cxl_one_way = Nanos::new(f64::NAN);
        p.numalinks_per_chassis_pair = 0;
        let codes: Vec<_> = p.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["SN101", "SN101", "SN104"]);
    }

    #[test]
    fn poolless_system_ignores_pool_bandwidths() {
        let mut p = SystemParams::scaled_baseline();
        p.cxl_bw = GbPerSec::default();
        p.pool_mem_bw = GbPerSec::default();
        assert!(p.diagnostics().is_empty());
        assert!(p.validate().is_ok());
    }
}
