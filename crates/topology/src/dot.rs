//! GraphViz export of the machine topology.
//!
//! `dot -Tsvg topology.dot -o topology.svg` renders the Fig. 1 overview:
//! chassis clusters with all-to-all UPI, the FLEX-ASIC NUMALink mesh, and
//! (for StarNUMA) the CXL star to the memory pool.

use core::fmt::Write as _;

use starnuma_types::SocketId;

use crate::params::SystemParams;

/// Renders the topology as a GraphViz `dot` document.
///
/// # Examples
///
/// ```
/// use starnuma_topology::{to_dot, SystemParams};
/// let dot = to_dot(&SystemParams::scaled_starnuma());
/// assert!(dot.starts_with("graph starnuma"));
/// assert!(dot.contains("pool"));
/// ```
pub fn to_dot(params: &SystemParams) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph starnuma {{");
    let _ = writeln!(out, "  layout=neato; overlap=false; splines=true;");
    let _ = writeln!(
        out,
        "  node [shape=box, style=filled, fillcolor=lightsteelblue];"
    );
    // Chassis clusters with all-to-all UPI.
    for c in 0..params.num_chassis() {
        let _ = writeln!(out, "  subgraph cluster_c{c} {{");
        let _ = writeln!(out, "    label=\"chassis {c}\";");
        let base = c * 4;
        for s in base..base + 4 {
            let _ = writeln!(out, "    s{s} [label=\"S{s}\"];");
        }
        for a in base..base + 4 {
            for b in (a + 1)..base + 4 {
                let _ = writeln!(
                    out,
                    "    s{a} -- s{b} [color=gray40, label=\"UPI {:.1}G\"];",
                    params.upi_bw.raw()
                );
            }
        }
        let _ = writeln!(
            out,
            "    asic{c} [label=\"FLEX ASIC\", shape=hexagon, fillcolor=khaki];"
        );
        for s in base..base + 4 {
            let _ = writeln!(out, "    s{s} -- asic{c} [color=gray70];");
        }
        let _ = writeln!(out, "  }}");
    }
    // All-to-all NUMALinks between ASICs.
    for a in 0..params.num_chassis() {
        for b in (a + 1)..params.num_chassis() {
            let _ = writeln!(
                out,
                "  asic{a} -- asic{b} [color=darkorange, penwidth=2, \
                 label=\"NUMALink {:.1}G x{}\"];",
                params.numalink_bw.raw(),
                params.numalinks_per_chassis_pair
            );
        }
    }
    // The CXL star.
    if params.has_pool {
        let _ = writeln!(
            out,
            "  pool [label=\"CXL memory pool\\n{:.0} ns\", shape=cylinder, \
             fillcolor=palegreen];",
            (params.mem_base + params.cxl_one_way * 2.0).raw()
        );
        for s in SocketId::all(params.num_sockets) {
            let _ = writeln!(
                out,
                "  s{} -- pool [color=forestgreen, style=dashed];",
                s.index()
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starnuma_dot_has_all_elements() {
        let dot = to_dot(&SystemParams::scaled_starnuma());
        assert!(dot.starts_with("graph starnuma {"));
        assert!(dot.trim_end().ends_with('}'));
        for s in 0..16 {
            assert!(dot.contains(&format!("s{s} [label=\"S{s}\"]")));
        }
        for c in 0..4 {
            assert!(dot.contains(&format!("cluster_c{c}")));
        }
        // 4 chassis pairwise = 6 NUMALink edges; 16 CXL spokes.
        assert_eq!(dot.matches("NUMALink").count(), 6);
        assert_eq!(dot.matches("-- pool").count(), 16);
    }

    #[test]
    fn baseline_dot_has_no_pool() {
        let dot = to_dot(&SystemParams::scaled_baseline());
        assert!(!dot.contains("pool"));
        // 4 sockets choose 2 = 6 UPI edges per chassis × 4 chassis.
        assert_eq!(dot.matches("UPI").count(), 24);
    }

    #[test]
    fn thirty_two_sockets_export() {
        let params = SystemParams::scaled_starnuma()
            .with_num_sockets(32)
            .unwrap();
        let dot = to_dot(&params);
        assert_eq!(dot.matches("cluster_c").count(), 8);
        // 8 chassis pairwise = 28 NUMALink edges.
        assert_eq!(dot.matches("NUMALink").count(), 28);
    }
}
