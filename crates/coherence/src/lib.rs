//! Directory-based MESI coherence for the multi-socket system and the
//! CXL memory pool (§III-C of the paper).
//!
//! Directory information is distributed across the sockets and the pool,
//! aligned with the address-space distribution: the directory entry for a
//! block lives at the block's *home node* — the socket (or pool) whose
//! memory currently holds the containing page. Accesses that miss in their
//! originating socket's LLC are routed to the home node, which initiates all
//! subsequent coherence actions.
//!
//! Two socket-to-socket transfer patterns arise (Fig. 4):
//!
//! * home is a **socket** → classic 3-hop cache-to-cache transfer
//!   R→H→O→R (`BT_Socket`, 333 ns average unloaded network latency);
//! * home is the **pool** → 4-hop transfer via the pool R→H→O→H→R
//!   (`BT_Pool`, 200 ns: two CXL roundtrips) — counter-intuitively *faster*
//!   on average than 3-hop, because it avoids cross-chassis traversals.
//!
//! # Examples
//!
//! ```
//! use starnuma_coherence::{Directory, TransferKind};
//! use starnuma_types::{BlockAddr, Location, SocketId};
//!
//! let mut dir = Directory::new(16);
//! let b = BlockAddr::new(42);
//! let home = Location::Pool;
//! // Socket 0 writes the block: plain memory access, 0 becomes owner.
//! let w = dir.access(b, SocketId::new(0), true, home);
//! assert_eq!(w.transfer, TransferKind::FromMemory);
//! // Socket 1 reads it: dirty data is forwarded — a 4-hop pool transfer.
//! let r = dir.access(b, SocketId::new(1), false, home);
//! assert_eq!(r.transfer, TransferKind::CacheToCache { owner: SocketId::new(0) });
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use starnuma_obs::{MetricsFrame, Observe};
use starnuma_types::{BlockAddr, DetMap, Location, SocketId};

/// How the requested data was supplied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransferKind {
    /// Served from memory at the home node (clean, or requester already had
    /// the only copy).
    FromMemory,
    /// Forwarded from the owning socket's cache: a 3-hop (socket home) or
    /// 4-hop (pool home) block transfer.
    CacheToCache {
        /// The socket whose cache supplied the block.
        owner: SocketId,
    },
}

/// The directory's response to one LLC-missing access.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CoherenceOutcome {
    /// How the data was supplied.
    pub transfer: TransferKind,
    /// Sockets whose cached copies must be invalidated (writes only).
    /// Each entry generates an invalidation message on the interconnect and
    /// a back-invalidation into that socket's LLC.
    pub invalidations: Vec<SocketId>,
}

/// Coherence-protocol statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DirectoryStats {
    /// Total directory transactions (every LLC-missing access is one).
    pub transactions: u64,
    /// Transactions whose home was the memory pool — the CXL directory load
    /// discussed in §V-A ("a coherence transaction every 100 ns").
    pub pool_transactions: u64,
    /// Cache-to-cache transfers with a socket home (3-hop, `BT_Socket`).
    pub bt_socket: u64,
    /// Cache-to-cache transfers via the pool (4-hop, `BT_Pool`).
    pub bt_pool: u64,
    /// Invalidation messages sent.
    pub invalidations: u64,
    /// Dirty writebacks received.
    pub writebacks: u64,
}

impl Observe for DirectoryStats {
    fn observe(&self, prefix: &str, frame: &mut MetricsFrame) {
        frame.add_counter(&format!("{prefix}.transactions"), self.transactions);
        frame.add_counter(
            &format!("{prefix}.pool_transactions"),
            self.pool_transactions,
        );
        frame.add_counter(&format!("{prefix}.bt_socket"), self.bt_socket);
        frame.add_counter(&format!("{prefix}.bt_pool"), self.bt_pool);
        frame.add_counter(&format!("{prefix}.invalidations"), self.invalidations);
        frame.add_counter(&format!("{prefix}.writebacks"), self.writebacks);
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    /// Bitmask of sockets holding the block (Shared), or exactly the owner's
    /// bit when `owner` is set (Modified/Exclusive).
    sharers: u32,
    /// Modified owner, if any.
    owner: Option<SocketId>,
}

/// The distributed coherence directory.
///
/// One logical object models every home node's directory slice; per-home
/// statistics are kept so the pool directory's transaction rate can be
/// reported separately.
#[derive(Clone, Debug)]
pub struct Directory {
    num_sockets: usize,
    entries: DetMap<BlockAddr, Entry>,
    stats: DirectoryStats,
}

impl Directory {
    /// Creates an empty directory for an `num_sockets`-socket system.
    ///
    /// # Panics
    ///
    /// Panics if `num_sockets` is zero or exceeds 32 (the sharer bitmask
    /// width; the paper targets 8–32 sockets).
    pub fn new(num_sockets: usize) -> Self {
        assert!(
            (1..=32).contains(&num_sockets),
            "socket count must be in 1..=32, got {num_sockets}"
        );
        Directory {
            num_sockets,
            entries: DetMap::new(),
            stats: DirectoryStats::default(),
        }
    }

    /// Returns protocol statistics.
    pub fn stats(&self) -> DirectoryStats {
        self.stats
    }

    /// Number of blocks with directory state.
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }

    fn bit(s: SocketId) -> u32 {
        1u32 << s.index()
    }

    /// Processes an LLC-missing access to `block` by `requester`, with the
    /// block's page homed at `home`. Returns how the data is supplied and
    /// which sockets must be invalidated.
    ///
    /// # Panics
    ///
    /// Panics if `requester` is outside the configured socket count.
    pub fn access(
        &mut self,
        block: BlockAddr,
        requester: SocketId,
        is_write: bool,
        home: Location,
    ) -> CoherenceOutcome {
        assert!(
            (requester.index() as usize) < self.num_sockets,
            "requester {requester:?} out of range"
        );
        self.stats.transactions += 1;
        if home.is_pool() {
            self.stats.pool_transactions += 1;
        }
        let entry = self.entries.entry_or_insert_with(block, Entry::default);
        let req_bit = Self::bit(requester);

        // Determine data source.
        let transfer = match entry.owner {
            Some(owner) if owner != requester => {
                if home.is_pool() {
                    self.stats.bt_pool += 1;
                } else {
                    self.stats.bt_socket += 1;
                }
                TransferKind::CacheToCache { owner }
            }
            _ => TransferKind::FromMemory,
        };

        let mut invalidations = Vec::new();
        if is_write {
            // All other copies are invalidated; requester becomes owner.
            let others = entry.sharers & !req_bit;
            if others != 0 {
                for s in 0..self.num_sockets as u16 {
                    let sid = SocketId::new(s);
                    if others & Self::bit(sid) != 0 {
                        invalidations.push(sid);
                    }
                }
            }
            self.stats.invalidations += invalidations.len() as u64;
            entry.sharers = req_bit;
            entry.owner = Some(requester);
        } else {
            // Read: previous owner (if different) downgrades to Shared.
            if let Some(owner) = entry.owner {
                if owner != requester {
                    entry.owner = None;
                }
            }
            entry.sharers |= req_bit;
        }
        CoherenceOutcome {
            transfer,
            invalidations,
        }
    }

    /// Records that `socket` evicted `block` from its LLC; `dirty` evictions
    /// write data back to the home memory.
    pub fn evict(&mut self, block: BlockAddr, socket: SocketId, dirty: bool) {
        if let Some(entry) = self.entries.get_mut(&block) {
            entry.sharers &= !Self::bit(socket);
            if entry.owner == Some(socket) {
                entry.owner = None;
            }
            if dirty {
                self.stats.writebacks += 1;
            }
            if entry.sharers == 0 && entry.owner.is_none() {
                self.entries.remove(&block);
            }
        }
    }

    /// Current sharers of `block` (for tests and diagnostics).
    pub fn sharers(&self, block: BlockAddr) -> Vec<SocketId> {
        match self.entries.get(&block) {
            None => Vec::new(),
            Some(e) => (0..self.num_sockets as u16)
                .map(SocketId::new)
                .filter(|s| e.sharers & Self::bit(*s) != 0)
                .collect(),
        }
    }

    /// Current Modified owner of `block`, if any.
    pub fn owner(&self, block: BlockAddr) -> Option<SocketId> {
        self.entries.get(&block).and_then(|e| e.owner)
    }

    /// Clears all directory state and statistics (between phases).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.stats = DirectoryStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOME_SOCKET: Location = Location::Socket(SocketId::new(2));

    fn s(i: u16) -> SocketId {
        SocketId::new(i)
    }

    #[test]
    fn cold_read_comes_from_memory() {
        let mut d = Directory::new(16);
        let out = d.access(BlockAddr::new(1), s(0), false, HOME_SOCKET);
        assert_eq!(out.transfer, TransferKind::FromMemory);
        assert!(out.invalidations.is_empty());
        assert_eq!(d.sharers(BlockAddr::new(1)), vec![s(0)]);
    }

    #[test]
    fn read_of_dirty_block_is_cache_to_cache() {
        let mut d = Directory::new(16);
        let b = BlockAddr::new(1);
        d.access(b, s(0), true, HOME_SOCKET);
        let out = d.access(b, s(1), false, HOME_SOCKET);
        assert_eq!(out.transfer, TransferKind::CacheToCache { owner: s(0) });
        // Owner downgraded; both are sharers now.
        assert_eq!(d.owner(b), None);
        assert_eq!(d.sharers(b), vec![s(0), s(1)]);
        assert_eq!(d.stats().bt_socket, 1);
        assert_eq!(d.stats().bt_pool, 0);
    }

    #[test]
    fn pool_home_transfer_counts_as_bt_pool() {
        let mut d = Directory::new(16);
        let b = BlockAddr::new(1);
        d.access(b, s(0), true, Location::Pool);
        let out = d.access(b, s(1), false, Location::Pool);
        assert_eq!(out.transfer, TransferKind::CacheToCache { owner: s(0) });
        assert_eq!(d.stats().bt_pool, 1);
        assert_eq!(d.stats().pool_transactions, 2);
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut d = Directory::new(16);
        let b = BlockAddr::new(9);
        d.access(b, s(0), false, HOME_SOCKET);
        d.access(b, s(1), false, HOME_SOCKET);
        d.access(b, s(3), false, HOME_SOCKET);
        let out = d.access(b, s(5), true, HOME_SOCKET);
        assert_eq!(out.invalidations, vec![s(0), s(1), s(3)]);
        assert_eq!(d.owner(b), Some(s(5)));
        assert_eq!(d.sharers(b), vec![s(5)]);
        assert_eq!(d.stats().invalidations, 3);
    }

    #[test]
    fn write_by_owner_is_silent() {
        let mut d = Directory::new(16);
        let b = BlockAddr::new(2);
        d.access(b, s(4), true, HOME_SOCKET);
        let out = d.access(b, s(4), true, HOME_SOCKET);
        assert_eq!(out.transfer, TransferKind::FromMemory);
        assert!(out.invalidations.is_empty());
        assert_eq!(d.owner(b), Some(s(4)));
    }

    #[test]
    fn write_after_reads_then_new_owner_transfer() {
        let mut d = Directory::new(16);
        let b = BlockAddr::new(7);
        d.access(b, s(0), true, Location::Pool); // 0 owns
        let out = d.access(b, s(8), true, Location::Pool); // 8 takes ownership
        assert_eq!(out.transfer, TransferKind::CacheToCache { owner: s(0) });
        assert_eq!(out.invalidations, vec![s(0)]);
        assert_eq!(d.owner(b), Some(s(8)));
    }

    #[test]
    fn eviction_removes_sharer_and_owner() {
        let mut d = Directory::new(16);
        let b = BlockAddr::new(3);
        d.access(b, s(0), true, HOME_SOCKET);
        d.evict(b, s(0), true);
        assert_eq!(d.owner(b), None);
        assert!(d.sharers(b).is_empty());
        assert_eq!(d.stats().writebacks, 1);
        assert_eq!(d.tracked_blocks(), 0, "empty entries are garbage-collected");
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut d = Directory::new(16);
        let b = BlockAddr::new(3);
        d.access(b, s(0), false, HOME_SOCKET);
        d.evict(b, s(0), false);
        assert_eq!(d.stats().writebacks, 0);
    }

    #[test]
    fn eviction_of_untracked_block_is_noop() {
        let mut d = Directory::new(16);
        d.evict(BlockAddr::new(99), s(0), true);
        assert_eq!(d.stats().writebacks, 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = Directory::new(16);
        d.access(BlockAddr::new(1), s(0), true, Location::Pool);
        d.reset();
        assert_eq!(d.tracked_blocks(), 0);
        assert_eq!(d.stats().transactions, 0);
    }

    #[test]
    #[should_panic(expected = "socket count must be in 1..=32")]
    fn rejects_oversized_system() {
        let _ = Directory::new(33);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_requester() {
        let mut d = Directory::new(4);
        d.access(BlockAddr::new(0), s(7), false, HOME_SOCKET);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use starnuma_types::SimRng;

    #[derive(Clone, Debug)]
    struct Op {
        block: u64,
        socket: u16,
        write: bool,
        evict: bool,
    }

    fn random_op(rng: &mut SimRng) -> Op {
        Op {
            block: rng.gen_range(0u64..8),
            socket: rng.gen_range(0u16..16),
            write: rng.gen_bool(0.5),
            evict: rng.gen_bool(0.2),
        }
    }

    /// Protocol invariant: whenever a block has a Modified owner, the
    /// owner is its only sharer (single-writer / multiple-reader).
    #[test]
    fn single_writer_invariant() {
        let mut rng = SimRng::seed_from_u64(0xc04e);
        for _case in 0..64 {
            let len = rng.gen_range(1usize..300);
            let mut d = Directory::new(16);
            for _ in 0..len {
                let op = random_op(&mut rng);
                let b = BlockAddr::new(op.block);
                let sid = SocketId::new(op.socket);
                if op.evict {
                    d.evict(b, sid, op.write);
                } else {
                    d.access(b, sid, op.write, Location::Pool);
                }
                if let Some(owner) = d.owner(b) {
                    assert_eq!(d.sharers(b), vec![owner]);
                }
            }
        }
    }

    /// Invalidations never include the requester, and after a write the
    /// requester is the sole sharer.
    #[test]
    fn writes_leave_exactly_one_sharer() {
        let mut rng = SimRng::seed_from_u64(0xc04f);
        for _case in 0..64 {
            let len = rng.gen_range(1usize..200);
            let mut d = Directory::new(16);
            for _ in 0..len {
                let op = random_op(&mut rng);
                let b = BlockAddr::new(op.block);
                let sid = SocketId::new(op.socket);
                if op.evict {
                    d.evict(b, sid, false);
                    continue;
                }
                let out = d.access(b, sid, op.write, Location::Socket(SocketId::new(0)));
                assert!(!out.invalidations.contains(&sid));
                if op.write {
                    assert_eq!(d.sharers(b), vec![sid]);
                }
            }
        }
    }
}
