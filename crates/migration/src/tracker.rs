//! The in-memory metadata region: per-region access trackers (§III-D1).

use starnuma_types::{RegionId, SocketId};

/// One region's tracker entry: a per-socket touched bitmap and an `i`-bit
/// saturating access counter.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TrackerEntry {
    /// Bit `s` set ⇔ socket `s` accessed the region this phase.
    pub socket_bits: u32,
    /// Total region accesses this phase (saturating at `2^i − 1`).
    pub accesses: u64,
    /// Whether any store touched the region this phase (used by the §V-F
    /// replication policy: only read-only regions are replica candidates).
    pub written: bool,
}

impl TrackerEntry {
    /// Number of sockets that touched the region this phase.
    pub fn sharer_count(&self) -> u32 {
        self.socket_bits.count_ones()
    }

    /// The sockets that touched the region, in index order.
    pub fn sharers(&self, num_sockets: usize) -> Vec<SocketId> {
        (0..num_sockets as u16)
            .map(SocketId::new)
            .filter(|s| self.socket_bits & (1 << s.index()) != 0)
            .collect()
    }
}

/// The physically contiguous metadata region holding one [`TrackerEntry`]
/// per 512 KiB memory region, indexed `region id × entry size` (§III-D1).
///
/// A tracker design `T_i` stores an `i`-bit counter; `T_0` stores only the
/// socket bitmap (enough to find widely shared regions, not to rank hotness).
#[derive(Clone, Debug)]
pub struct MetadataRegion {
    entries: Vec<TrackerEntry>,
    counter_max: u64,
    num_sockets: usize,
    /// Metadata updates performed (each is PTW traffic to memory).
    updates: u64,
}

impl MetadataRegion {
    /// Creates trackers for `num_regions` regions on a `num_sockets`-socket
    /// system with `counter_bits`-bit counters (16 for `T_16`, 0 for `T_0`).
    ///
    /// # Panics
    ///
    /// Panics if `num_sockets` is zero or exceeds 32.
    pub fn new(num_regions: usize, num_sockets: usize, counter_bits: u8) -> Self {
        assert!(
            (1..=32).contains(&num_sockets),
            "socket count must be in 1..=32"
        );
        MetadataRegion {
            entries: vec![TrackerEntry::default(); num_regions],
            counter_max: if counter_bits == 0 {
                0
            } else {
                (1u64 << counter_bits.min(63)) - 1
            },
            num_sockets,
            updates: 0,
        }
    }

    /// Number of tracker entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if there are no tracked regions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of sockets the bitmap covers.
    pub fn num_sockets(&self) -> usize {
        self.num_sockets
    }

    /// Records a PTW annex flush: `count` accesses by `socket` to `region`.
    /// Under `T_0`, `count` is ignored but the socket bit is still set.
    ///
    /// # Panics
    ///
    /// Panics if `region` or `socket` is out of range.
    pub fn record(&mut self, region: RegionId, socket: SocketId, count: u32) {
        assert!(
            (socket.index() as usize) < self.num_sockets,
            "socket out of range"
        );
        let e = &mut self.entries[region.index() as usize];
        e.socket_bits |= 1 << socket.index();
        e.accesses = (e.accesses + u64::from(count)).min(self.counter_max);
        self.updates += 1;
    }

    /// Marks `region` as written this phase (store observed).
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn mark_written(&mut self, region: RegionId) {
        self.entries[region.index() as usize].written = true;
    }

    /// Reads a region's tracker.
    pub fn entry(&self, region: RegionId) -> TrackerEntry {
        self.entries[region.index() as usize]
    }

    /// Number of sockets that touched `region` this phase.
    pub fn sharer_count(&self, region: RegionId) -> u32 {
        self.entries[region.index() as usize].sharer_count()
    }

    /// Iterates over `(region, entry)` pairs in address order — the single
    /// metadata-region pass of Algorithm 1.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, TrackerEntry)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (RegionId::new(i as u64), *e))
    }

    /// Total metadata updates recorded (PTW write traffic).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Clears all counters and bitmaps — the once-per-phase reset performed
    /// by the metadata scan.
    pub fn reset(&mut self) {
        self.entries.fill(TrackerEntry::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = MetadataRegion::new(4, 16, 16);
        let r = RegionId::new(2);
        m.record(r, SocketId::new(3), 10);
        m.record(r, SocketId::new(5), 7);
        m.record(r, SocketId::new(3), 1);
        let e = m.entry(r);
        assert_eq!(e.accesses, 18);
        assert_eq!(e.sharer_count(), 2);
        assert_eq!(e.sharers(16), vec![SocketId::new(3), SocketId::new(5)]);
        assert_eq!(m.updates(), 3);
    }

    #[test]
    fn t16_counter_saturates() {
        let mut m = MetadataRegion::new(1, 16, 16);
        for _ in 0..3 {
            m.record(RegionId::new(0), SocketId::new(0), 40_000);
        }
        assert_eq!(m.entry(RegionId::new(0)).accesses, 65_535);
    }

    #[test]
    fn t0_tracks_only_bits() {
        let mut m = MetadataRegion::new(1, 16, 0);
        m.record(RegionId::new(0), SocketId::new(1), 500);
        m.record(RegionId::new(0), SocketId::new(9), 500);
        let e = m.entry(RegionId::new(0));
        assert_eq!(e.accesses, 0);
        assert_eq!(e.sharer_count(), 2);
    }

    #[test]
    fn reset_clears_entries() {
        let mut m = MetadataRegion::new(2, 16, 16);
        m.record(RegionId::new(1), SocketId::new(0), 5);
        m.reset();
        assert_eq!(m.entry(RegionId::new(1)), TrackerEntry::default());
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn iter_is_in_address_order() {
        let mut m = MetadataRegion::new(3, 16, 16);
        m.record(RegionId::new(2), SocketId::new(0), 1);
        let v: Vec<_> = m.iter().collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v[2].0, RegionId::new(2));
        assert_eq!(v[2].1.accesses, 1);
    }

    #[test]
    #[should_panic(expected = "socket out of range")]
    fn rejects_out_of_range_socket() {
        let mut m = MetadataRegion::new(1, 4, 16);
        m.record(RegionId::new(0), SocketId::new(4), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use starnuma_types::SimRng;

    /// Counter never exceeds its width's maximum, and sharer count never
    /// exceeds the socket count.
    #[test]
    fn bounded_counters() {
        let mut rng = SimRng::seed_from_u64(0x7ac4);
        for case in 0..96 {
            let bits = [0u8, 4, 16][case % 3];
            let len = rng.gen_range(1usize..100);
            let mut m = MetadataRegion::new(1, 16, bits);
            for _ in 0..len {
                let s = rng.gen_range(0u16..16);
                let c = rng.gen_range(0u32..100_000);
                m.record(RegionId::new(0), SocketId::new(s), c);
            }
            let e = m.entry(RegionId::new(0));
            let max = if bits == 0 { 0 } else { (1u64 << bits) - 1 };
            assert!(e.accesses <= max);
            assert!(e.sharer_count() <= 16);
        }
    }
}
