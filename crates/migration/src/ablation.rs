//! Ablation policies: what happens to Algorithm 1 when one of its design
//! ingredients is removed.
//!
//! The paper's policy combines **hotness** (the HI threshold over region
//! access counts) with **sharing degree** (the ≥8-sharer pool test). These
//! ablations isolate each ingredient:
//!
//! * [`AblationPolicy::HotnessOnly`] — pool the hottest regions regardless
//!   of how many sockets share them (a classic tiered-memory promotion
//!   policy pointed at the pool);
//! * [`AblationPolicy::SharingOnly`] — pool any widely shared region
//!   regardless of heat (the `T_0` idea taken to its extreme: first-come,
//!   first-pooled);
//! * [`AblationPolicy::RandomPool`] — pool uniformly random regions
//!   (the control: how much of the win is "any pool usage at all"?).
//!
//! Each produces [`MigrationPlan`]s compatible with the main pipeline.

use starnuma_types::{Location, RegionId, SimRng};

use crate::page_map::PageMap;
use crate::policy::{MigrationPlan, PageMove};
use crate::tracker::MetadataRegion;

/// Which ingredient of Algorithm 1 to keep.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AblationPolicy {
    /// Pool the hottest regions by access count, ignoring sharing degree.
    HotnessOnly,
    /// Pool regions shared by at least `min_sharers` sockets, ignoring heat
    /// (scan order decides under capacity pressure).
    SharingOnly {
        /// Sharer-count threshold for pool placement.
        min_sharers: u32,
    },
    /// Pool uniformly random touched regions (control).
    RandomPool,
}

impl AblationPolicy {
    /// Decides one phase of pool-fill migrations under `limit_pages`,
    /// mutating `map` and returning the plan. Never evicts (ablations only
    /// fill spare pool capacity, which isolates the *selection* question).
    pub fn decide(
        &self,
        meta: &MetadataRegion,
        map: &mut PageMap,
        limit_pages: u64,
        rng: &mut SimRng,
    ) -> MigrationPlan {
        // Rank candidate regions according to the ablated criterion.
        let mut candidates: Vec<(u64, RegionId)> = meta
            .iter()
            .filter(|(region, entry)| {
                (region.index() as usize) < map.num_regions()
                    && entry.socket_bits != 0
                    && !map.region_location(*region).is_pool()
            })
            .filter_map(|(region, entry)| {
                let score = match self {
                    AblationPolicy::HotnessOnly => Some(entry.accesses),
                    AblationPolicy::SharingOnly { min_sharers } => (entry.sharer_count()
                        >= *min_sharers)
                        .then(|| u64::from(entry.sharer_count())),
                    AblationPolicy::RandomPool => Some(u64::from(rng.gen_u32())),
                };
                score.map(|s| (s, region))
            })
            .collect();
        candidates.sort_by_key(|&(score, region)| (u64::MAX - score, region.index()));

        let mut plan = MigrationPlan::default();
        let mut moved = 0u64;
        for (_, region) in candidates {
            if moved >= limit_pages {
                break;
            }
            let region_pages = region
                .pages()
                .filter(|p| p.pfn() < map.len() && !map.location(*p).is_pool())
                .count() as u64;
            if map.pool_free_pages() < region_pages {
                continue; // no eviction in ablation mode
            }
            for page in region.pages() {
                if page.pfn() >= map.len() {
                    break;
                }
                let from = map.location(page);
                if from != Location::Pool {
                    map.move_page(page, Location::Pool);
                    plan.moves.push(PageMove {
                        page,
                        from,
                        to: Location::Pool,
                    });
                    moved += 1;
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starnuma_types::SocketId;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(3)
    }

    /// 4 regions; region 0 hot+narrow, region 1 cold+wide, region 2 warm+wide.
    fn meta() -> MetadataRegion {
        let mut m = MetadataRegion::new(4, 16, 16);
        m.record(RegionId::new(0), SocketId::new(0), 10_000);
        m.record(RegionId::new(0), SocketId::new(1), 10_000);
        for s in 0..16 {
            m.record(RegionId::new(1), SocketId::new(s), 1);
        }
        for s in 0..12 {
            m.record(RegionId::new(2), SocketId::new(s), 100);
        }
        m
    }

    fn map(pool_regions: u64) -> PageMap {
        PageMap::from_fn(4 * 128, pool_regions * 128, |_| {
            Location::Socket(SocketId::new(0))
        })
    }

    #[test]
    fn hotness_only_pools_hottest_first() {
        let mut m = map(1);
        let plan = AblationPolicy::HotnessOnly.decide(&meta(), &mut m, 128, &mut rng());
        assert_eq!(plan.to_pool(), 128);
        assert_eq!(m.region_location(RegionId::new(0)), Location::Pool);
        assert!(!m.region_location(RegionId::new(1)).is_pool());
    }

    #[test]
    fn sharing_only_pools_widest_first() {
        let mut m = map(1);
        let plan =
            AblationPolicy::SharingOnly { min_sharers: 8 }.decide(&meta(), &mut m, 128, &mut rng());
        assert_eq!(plan.to_pool(), 128);
        assert_eq!(
            m.region_location(RegionId::new(1)),
            Location::Pool,
            "16 sharers beats 12, regardless of heat"
        );
    }

    #[test]
    fn sharing_only_respects_threshold() {
        let mut m = map(4);
        let plan = AblationPolicy::SharingOnly { min_sharers: 8 }.decide(
            &meta(),
            &mut m,
            1_000,
            &mut rng(),
        );
        // Regions 1 (16 sharers) and 2 (12) qualify; region 0 (2) does not.
        assert_eq!(plan.to_pool(), 256);
        assert!(!m.region_location(RegionId::new(0)).is_pool());
    }

    #[test]
    fn random_pool_is_deterministic_per_seed() {
        let mut m1 = map(2);
        let mut m2 = map(2);
        let p1 = AblationPolicy::RandomPool.decide(&meta(), &mut m1, 256, &mut rng());
        let p2 = AblationPolicy::RandomPool.decide(&meta(), &mut m2, 256, &mut rng());
        assert_eq!(p1, p2);
        assert_eq!(p1.to_pool(), 256);
    }

    #[test]
    fn capacity_and_limit_respected() {
        let mut m = map(1); // pool fits one region
        let plan = AblationPolicy::HotnessOnly.decide(&meta(), &mut m, 10_000, &mut rng());
        assert_eq!(plan.to_pool(), 128);
        assert_eq!(m.pool_pages(), 128);
        let mut m = map(4);
        let plan = AblationPolicy::HotnessOnly.decide(&meta(), &mut m, 130, &mut rng());
        // Limit reached mid-scan: first region fully moved, second skipped
        // after crossing the limit.
        assert!(plan.to_pool() >= 128 && plan.to_pool() <= 256);
    }

    #[test]
    fn untouched_regions_never_move() {
        let mut m = map(4);
        AblationPolicy::HotnessOnly.decide(&meta(), &mut m, 10_000, &mut rng());
        assert!(
            !m.region_location(RegionId::new(3)).is_pool(),
            "region 3 was never accessed"
        );
    }
}
