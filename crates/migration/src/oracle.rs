//! Oracle policies: the favored baseline of §IV-C (zero-cost perfect
//! per-page knowledge) and the §V-B a-priori static placement.

use std::collections::BTreeSet;

use starnuma_trace::PhaseTrace;
use starnuma_types::{Location, PageId, SocketId};

use crate::page_map::PageMap;
use crate::policy::{MigrationPlan, PageMove};

/// Perfect per-socket access counts for every 4 KiB page in one phase — the
/// information the paper grants the baseline for free (§IV-C: "we favor the
/// baseline by assuming zero-cost per-socket knowledge of all accesses to
/// every 4KB page at each migration interval").
#[derive(Clone, Debug)]
pub struct PageAccessCounts {
    num_sockets: usize,
    /// `counts[page * num_sockets + socket]`.
    counts: Vec<u32>,
}

impl PageAccessCounts {
    /// An all-zero tally: the identity element for
    /// [`PageAccessCounts::merge`].
    pub fn new(footprint_pages: u64, num_sockets: usize) -> Self {
        PageAccessCounts {
            num_sockets,
            counts: vec![0u32; footprint_pages as usize * num_sockets],
        }
    }

    /// Tallies a phase trace.
    pub fn from_trace(
        trace: &PhaseTrace,
        footprint_pages: u64,
        num_sockets: usize,
        cores_per_socket: usize,
    ) -> Self {
        let mut counts = vec![0u32; footprint_pages as usize * num_sockets];
        for a in trace.iter() {
            let p = a.addr.page().pfn() as usize;
            let s = a.core.socket(cores_per_socket).index() as usize;
            counts[p * num_sockets + s] += 1;
        }
        PageAccessCounts {
            num_sockets,
            counts,
        }
    }

    /// Accesses to `page` by `socket`.
    pub fn count(&self, page: PageId, socket: SocketId) -> u32 {
        self.counts[page.pfn() as usize * self.num_sockets + socket.index() as usize]
    }

    /// Total accesses to `page`.
    pub fn total(&self, page: PageId) -> u64 {
        let base = page.pfn() as usize * self.num_sockets;
        self.counts[base..base + self.num_sockets]
            .iter()
            .map(|&c| u64::from(c))
            .sum()
    }

    /// Number of sockets that touched `page`.
    pub fn sharer_count(&self, page: PageId) -> u32 {
        let base = page.pfn() as usize * self.num_sockets;
        self.counts[base..base + self.num_sockets]
            .iter()
            .filter(|&&c| c > 0)
            .count() as u32
    }

    /// The socket with the most accesses to `page` (ties → lowest index);
    /// `None` if the page went untouched.
    pub fn best_socket(&self, page: PageId) -> Option<SocketId> {
        let base = page.pfn() as usize * self.num_sockets;
        let slice = &self.counts[base..base + self.num_sockets];
        let (idx, &max) = slice
            .iter()
            .enumerate()
            .max_by_key(|&(i, c)| (*c, usize::MAX - i))?;
        if max == 0 {
            None
        } else {
            Some(SocketId::new(idx as u16))
        }
    }

    /// Footprint size in pages.
    pub fn footprint_pages(&self) -> u64 {
        (self.counts.len() / self.num_sockets) as u64
    }

    /// Accumulates another phase's counts into this one (whole-run oracle
    /// knowledge for the §V-B static placement).
    ///
    /// # Panics
    ///
    /// Panics if the footprints or socket counts differ.
    pub fn merge(&mut self, other: &PageAccessCounts) {
        assert_eq!(self.num_sockets, other.num_sockets, "socket count mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "footprint mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
    }
}

/// The baseline's dynamic migration policy: with perfect knowledge, move
/// each sufficiently hot page to the socket that accesses it most. The
/// decision itself is free; only the migration (data movement + shootdowns)
/// is charged, exactly as in §IV-C.
#[derive(Clone, Debug)]
pub struct OracleDynamicPolicy {
    /// Minimum per-phase accesses for a page to be worth moving.
    pub hot_threshold: u32,
    /// Per-phase migration limit in pages.
    pub migration_limit_pages: u64,
    /// Cumulative pages migrated.
    pub pages_migrated: u64,
}

impl OracleDynamicPolicy {
    /// Creates the policy with the given hotness threshold and limit.
    pub fn new(hot_threshold: u32, migration_limit_pages: u64) -> Self {
        OracleDynamicPolicy {
            hot_threshold,
            migration_limit_pages,
            pages_migrated: 0,
        }
    }

    /// Decides and applies one phase of perfect-knowledge migrations,
    /// hottest pages first.
    pub fn decide(&mut self, counts: &PageAccessCounts, map: &mut PageMap) -> MigrationPlan {
        // Collect (heat, page, destination) for pages worth moving.
        let mut hot: Vec<(u64, PageId, SocketId)> = Vec::new();
        for pfn in 0..counts.footprint_pages() {
            let page = PageId::new(pfn);
            let total = counts.total(page);
            if total < u64::from(self.hot_threshold) {
                continue;
            }
            if let Some(best) = counts.best_socket(page) {
                if map.location(page) != Location::Socket(best) {
                    hot.push((total, page, best));
                }
            }
        }
        hot.sort_by_key(|&(t, p, _)| (u64::MAX - t, p.pfn()));
        let mut plan = MigrationPlan::default();
        for (_, page, dst) in hot.into_iter().take(self.migration_limit_pages as usize) {
            let from = map.location(page);
            map.move_page(page, Location::Socket(dst));
            plan.moves.push(PageMove {
                page,
                from,
                to: Location::Socket(dst),
            });
        }
        self.pages_migrated += plan.total();
        plan
    }
}

/// The §V-B oracular *static* placement: one a-priori layout from
/// whole-run access knowledge, no runtime migration.
///
/// * Baseline systems (`pool_capacity_pages == 0`): every page sits on the
///   socket that accesses it most.
/// * StarNUMA: pages shared by at least `pool_sharer_threshold` sockets are
///   pool candidates; the hottest candidates fill the pool, everything else
///   goes to its best socket.
pub fn static_oracle_placement(
    counts: &PageAccessCounts,
    pool_capacity_pages: u64,
    pool_sharer_threshold: u32,
) -> PageMap {
    let sharer_of = |p: PageId| counts.sharer_count(p);
    static_oracle_placement_with_sharers(
        counts,
        pool_capacity_pages,
        pool_sharer_threshold,
        sharer_of,
    )
}

/// [`static_oracle_placement`] with an external ground-truth sharer count.
///
/// The §V-B oracle has *a-priori knowledge of each workload's access
/// pattern*; at scaled-down window lengths, sharing observed in the traces
/// under-reports the true sharing degree for low-MPKI workloads, so the
/// pipeline passes the generator's ground-truth sharer sets here.
pub fn static_oracle_placement_with_sharers(
    counts: &PageAccessCounts,
    pool_capacity_pages: u64,
    pool_sharer_threshold: u32,
    mut sharers_of: impl FnMut(PageId) -> u32,
) -> PageMap {
    let footprint = counts.footprint_pages();
    // Rank pool candidates by heat.
    let mut pool_candidates: Vec<(u64, PageId)> = (0..footprint)
        .map(PageId::new)
        .filter(|&p| sharers_of(p) >= pool_sharer_threshold)
        .map(|p| (counts.total(p), p))
        .collect();
    pool_candidates.sort_by_key(|&(t, p)| (u64::MAX - t, p.pfn()));
    let pooled: BTreeSet<PageId> = pool_candidates
        .into_iter()
        .take(pool_capacity_pages as usize)
        .map(|(_, p)| p)
        .collect();
    let mut rr = 0u16;
    PageMap::from_fn(footprint, pool_capacity_pages, |page| {
        if pooled.contains(&page) {
            Location::Pool
        } else {
            match counts.best_socket(page) {
                Some(s) => Location::Socket(s),
                None => {
                    // Untouched page: spread round-robin.
                    let s = SocketId::new(rr % 16);
                    rr += 1;
                    Location::Socket(s)
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use starnuma_trace::{TraceGenerator, Workload};
    use starnuma_types::{AccessType, CoreId, MemAccess, PhysAddr, PAGE_SIZE};

    fn synthetic_trace(accesses: &[(u32, u64)]) -> PhaseTrace {
        // (core, page) pairs.
        let mut per_core: Vec<Vec<MemAccess>> = vec![Vec::new(); 64];
        for (i, &(core, page)) in accesses.iter().enumerate() {
            per_core[core as usize].push(MemAccess::new(
                CoreId::new(core),
                PhysAddr::new(page * PAGE_SIZE as u64),
                AccessType::Read,
                i as u64,
            ));
        }
        PhaseTrace { per_core }
    }

    #[test]
    fn counts_tally_by_socket() {
        // Cores 0-3 → socket 0; cores 4-7 → socket 1.
        let t = synthetic_trace(&[(0, 5), (1, 5), (4, 5), (0, 7)]);
        let c = PageAccessCounts::from_trace(&t, 16, 16, 4);
        assert_eq!(c.count(PageId::new(5), SocketId::new(0)), 2);
        assert_eq!(c.count(PageId::new(5), SocketId::new(1)), 1);
        assert_eq!(c.total(PageId::new(5)), 3);
        assert_eq!(c.sharer_count(PageId::new(5)), 2);
        assert_eq!(c.best_socket(PageId::new(5)), Some(SocketId::new(0)));
        assert_eq!(c.best_socket(PageId::new(9)), None);
        assert_eq!(c.footprint_pages(), 16);
    }

    #[test]
    fn oracle_moves_hot_pages_to_best_socket() {
        let t = synthetic_trace(&[(4, 0), (4, 0), (4, 0), (0, 0), (8, 1)]);
        let c = PageAccessCounts::from_trace(&t, 4, 16, 4);
        let mut map = PageMap::from_fn(4, 0, |_| Location::Socket(SocketId::new(0)));
        let mut oracle = OracleDynamicPolicy::new(2, 1000);
        let plan = oracle.decide(&c, &mut map);
        // Page 0: socket 1 dominates (3 vs 1) → moves. Page 1: only 1 access
        // < threshold 2 → stays.
        assert_eq!(plan.total(), 1);
        assert_eq!(
            map.location(PageId::new(0)),
            Location::Socket(SocketId::new(1))
        );
        assert_eq!(
            map.location(PageId::new(1)),
            Location::Socket(SocketId::new(0))
        );
        assert_eq!(oracle.pages_migrated, 1);
    }

    #[test]
    fn oracle_respects_migration_limit_hottest_first() {
        // Page 1 is hotter than page 0; both want socket 1.
        let t = synthetic_trace(&[(4, 0), (4, 0), (4, 1), (4, 1), (4, 1)]);
        let c = PageAccessCounts::from_trace(&t, 2, 16, 4);
        let mut map = PageMap::from_fn(2, 0, |_| Location::Socket(SocketId::new(0)));
        let mut oracle = OracleDynamicPolicy::new(1, 1);
        let plan = oracle.decide(&c, &mut map);
        assert_eq!(plan.total(), 1);
        assert_eq!(plan.moves[0].page, PageId::new(1), "hottest first");
    }

    #[test]
    fn oracle_never_uses_pool() {
        let mut g = TraceGenerator::new(&Workload::Bfs.profile(), 16, 4, 5);
        let t = g.generate_phase(20_000);
        let c = PageAccessCounts::from_trace(&t, g.profile().footprint_pages, 16, 4);
        let mut map = PageMap::from_fn(g.profile().footprint_pages, 0, |p| {
            Location::Socket(SocketId::new((p.pfn() % 16) as u16))
        });
        let mut oracle = OracleDynamicPolicy::new(4, 100_000);
        let plan = oracle.decide(&c, &mut map);
        assert!(plan.moves.iter().all(|m| !m.to.is_pool()));
        assert_eq!(plan.to_pool(), 0);
    }

    #[test]
    fn static_placement_fills_pool_with_hottest_shared_pages() {
        // Pages 0,1 shared by 2 sockets (below threshold), page 2 by 9.
        let mut accesses = Vec::new();
        for s in 0..9u32 {
            accesses.push((s * 4, 2u64));
        }
        accesses.push((0, 0));
        accesses.push((4, 0));
        let t = synthetic_trace(&accesses);
        let c = PageAccessCounts::from_trace(&t, 4, 16, 4);
        let map = static_oracle_placement(&c, 2, 8);
        assert_eq!(map.location(PageId::new(2)), Location::Pool);
        assert!(!map.location(PageId::new(0)).is_pool(), "2 sharers < 8");
        assert_eq!(map.pool_pages(), 1);
    }

    #[test]
    fn static_placement_baseline_mode() {
        let t = synthetic_trace(&[(0, 0), (4, 1), (4, 1)]);
        let c = PageAccessCounts::from_trace(&t, 3, 16, 4);
        let map = static_oracle_placement(&c, 0, 8);
        assert_eq!(
            map.location(PageId::new(0)),
            Location::Socket(SocketId::new(0))
        );
        assert_eq!(
            map.location(PageId::new(1)),
            Location::Socket(SocketId::new(1))
        );
        assert_eq!(map.pool_pages(), 0);
    }

    #[test]
    fn static_placement_respects_pool_capacity() {
        // BFS concentrates accesses on few widely shared pages, so the
        // sharing is observable even in a short window.
        let mut g = TraceGenerator::new(&Workload::Bfs.profile(), 16, 4, 9);
        let t = g.generate_phase(60_000);
        let fp = g.profile().footprint_pages;
        let c = PageAccessCounts::from_trace(&t, fp, 16, 4);
        let cap = fp / 17;
        let map = static_oracle_placement(&c, cap, 8);
        assert!(map.pool_pages() <= cap);
        assert!(map.pool_pages() > 0, "BFS has widely shared pages");
    }
}
