//! Selective page replication (§V-F): the alternative technique the paper
//! compares memory pooling against, and suggests as a complement.
//!
//! Read-only, widely shared regions are *replicated* into each sharing
//! socket's local memory, converting their remote accesses into local ones
//! at the cost of memory capacity (one copy per sharer). Replicas of a
//! region collapse the moment any socket writes it — the software-coherence
//! cost the paper argues makes replication untenable for read-write sharing
//! (BFS-style workloads), while capacity makes it expensive for TC-style
//! workloads where 60 % of the dataset is widely shared.

use starnuma_types::{DetMap, RegionId, SocketId, REGION_PAGES};

use crate::tracker::MetadataRegion;

/// Configuration of the replication policy.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ReplicationConfig {
    /// Minimum sharer count for a region to be worth replicating.
    pub min_sharers: u32,
    /// Per-socket replica-capacity budget in 4 KiB pages (the "memory
    /// capacity waste is not a concern" knob of §V-F).
    pub capacity_pages_per_socket: u64,
}

impl ReplicationConfig {
    /// A reasonable default: replicate 8+-sharer read-only regions, with a
    /// per-socket replica budget equal to `frac` of the footprint.
    pub fn with_budget_frac(footprint_pages: u64, frac: f64) -> Self {
        ReplicationConfig {
            min_sharers: 8,
            capacity_pages_per_socket: ((footprint_pages as f64) * frac) as u64,
        }
    }
}

/// Replication statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ReplicationStats {
    /// Regions replicated (cumulative).
    pub regions_replicated: u64,
    /// Replica collapses caused by writes (cumulative).
    pub collapses: u64,
    /// Replication attempts rejected for lack of capacity.
    pub capacity_rejections: u64,
    /// Peak total replica pages across all sockets.
    pub peak_replica_pages: u64,
}

/// The live replica directory: which sockets hold a copy of which region.
#[derive(Clone, Debug)]
pub struct ReplicaMap {
    config: ReplicationConfig,
    masks: DetMap<RegionId, u32>,
    used_pages: Vec<u64>,
    total_pages: u64,
    stats: ReplicationStats,
}

impl ReplicaMap {
    /// Creates an empty replica directory for `num_sockets` sockets.
    pub fn new(num_sockets: usize, config: ReplicationConfig) -> Self {
        ReplicaMap {
            config,
            masks: DetMap::new(),
            used_pages: vec![0; num_sockets],
            total_pages: 0,
            stats: ReplicationStats::default(),
        }
    }

    /// Whether `socket` holds a replica of `region`.
    pub fn has_replica(&self, region: RegionId, socket: SocketId) -> bool {
        self.masks
            .get(&region)
            .is_some_and(|m| m & (1 << socket.index()) != 0)
    }

    /// Whether any socket holds a replica of `region`.
    pub fn is_replicated(&self, region: RegionId) -> bool {
        self.masks.contains_key(&region)
    }

    /// Total replica pages currently held across all sockets.
    pub fn replica_pages(&self) -> u64 {
        self.total_pages
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ReplicationStats {
        self.stats
    }

    /// One policy pass: replicate read-only regions with at least
    /// `min_sharers` observed sharers into every sharer's memory, subject to
    /// each socket's capacity budget. Returns how many regions were newly
    /// replicated.
    pub fn decide(&mut self, meta: &MetadataRegion) -> u64 {
        let mut newly = 0;
        for (region, entry) in meta.iter() {
            if entry.written
                || entry.sharer_count() < self.config.min_sharers
                || self.masks.contains_key(&region)
            {
                continue;
            }
            // Capacity check at every sharer.
            let sharers = entry.sharers(meta.num_sockets());
            let fits = sharers.iter().all(|s| {
                self.used_pages[s.index() as usize] + REGION_PAGES as u64
                    <= self.config.capacity_pages_per_socket
            });
            if !fits {
                self.stats.capacity_rejections += 1;
                continue;
            }
            let mut mask = 0u32;
            for s in &sharers {
                mask |= 1 << s.index();
                self.used_pages[s.index() as usize] += REGION_PAGES as u64;
                self.total_pages += REGION_PAGES as u64;
            }
            self.masks.insert(region, mask);
            self.stats.regions_replicated += 1;
            newly += 1;
        }
        self.stats.peak_replica_pages = self.stats.peak_replica_pages.max(self.total_pages);
        newly
    }

    /// A write hit a replicated region: drop every replica (software
    /// coherence collapse). Returns the sockets whose copies were
    /// invalidated, empty if the region was not replicated.
    pub fn collapse_on_write(&mut self, region: RegionId) -> Vec<SocketId> {
        let Some(mask) = self.masks.remove(&region) else {
            return Vec::new();
        };
        self.stats.collapses += 1;
        let mut victims = Vec::new();
        for s in 0..self.used_pages.len() as u16 {
            if mask & (1 << s) != 0 {
                self.used_pages[s as usize] -= REGION_PAGES as u64;
                self.total_pages -= REGION_PAGES as u64;
                victims.push(SocketId::new(s));
            }
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta_with(region: u64, sharers: u16, count: u32, written: bool) -> MetadataRegion {
        let mut m = MetadataRegion::new(8, 16, 16);
        for s in 0..sharers {
            m.record(RegionId::new(region), SocketId::new(s), count);
        }
        if written {
            m.mark_written(RegionId::new(region));
        }
        m
    }

    fn config() -> ReplicationConfig {
        ReplicationConfig {
            min_sharers: 8,
            capacity_pages_per_socket: 1024,
        }
    }

    #[test]
    fn read_only_wide_region_replicates_to_all_sharers() {
        let mut map = ReplicaMap::new(16, config());
        let newly = map.decide(&meta_with(0, 12, 5, false));
        assert_eq!(newly, 1);
        assert!(map.is_replicated(RegionId::new(0)));
        for s in 0..12 {
            assert!(map.has_replica(RegionId::new(0), SocketId::new(s)));
        }
        assert!(!map.has_replica(RegionId::new(0), SocketId::new(13)));
        assert_eq!(map.replica_pages(), 12 * 128);
    }

    #[test]
    fn written_region_never_replicates() {
        let mut map = ReplicaMap::new(16, config());
        assert_eq!(map.decide(&meta_with(0, 16, 5, true)), 0);
        assert!(!map.is_replicated(RegionId::new(0)));
    }

    #[test]
    fn narrow_region_never_replicates() {
        let mut map = ReplicaMap::new(16, config());
        assert_eq!(map.decide(&meta_with(0, 4, 500, false)), 0);
    }

    #[test]
    fn capacity_budget_enforced() {
        let mut map = ReplicaMap::new(
            16,
            ReplicationConfig {
                min_sharers: 8,
                capacity_pages_per_socket: 128, // one region per socket
            },
        );
        let mut meta = MetadataRegion::new(8, 16, 16);
        for r in 0..3u64 {
            for s in 0..16u16 {
                meta.record(RegionId::new(r), SocketId::new(s), 2);
            }
        }
        assert_eq!(map.decide(&meta), 1, "only the first region fits");
        assert_eq!(map.stats().capacity_rejections, 2);
    }

    #[test]
    fn write_collapses_all_replicas_and_frees_capacity() {
        let mut map = ReplicaMap::new(16, config());
        map.decide(&meta_with(0, 10, 5, false));
        let victims = map.collapse_on_write(RegionId::new(0));
        assert_eq!(victims.len(), 10);
        assert!(!map.is_replicated(RegionId::new(0)));
        assert_eq!(map.replica_pages(), 0);
        assert_eq!(map.stats().collapses, 1);
        // A second collapse is a no-op.
        assert!(map.collapse_on_write(RegionId::new(0)).is_empty());
        assert_eq!(map.stats().collapses, 1);
    }

    #[test]
    fn peak_pages_tracked() {
        let mut map = ReplicaMap::new(16, config());
        map.decide(&meta_with(0, 10, 5, false));
        map.collapse_on_write(RegionId::new(0));
        assert_eq!(map.stats().peak_replica_pages, 10 * 128);
        assert_eq!(map.replica_pages(), 0);
    }

    #[test]
    fn budget_frac_constructor() {
        let c = ReplicationConfig::with_budget_frac(32_768, 0.25);
        assert_eq!(c.capacity_pages_per_socket, 8_192);
        assert_eq!(c.min_sharers, 8);
    }

    #[test]
    fn already_replicated_region_is_skipped() {
        let mut map = ReplicaMap::new(16, config());
        let meta = meta_with(0, 10, 5, false);
        assert_eq!(map.decide(&meta), 1);
        assert_eq!(map.decide(&meta), 0, "idempotent across phases");
        assert_eq!(map.stats().regions_replicated, 1);
    }
}
