//! Algorithm 1: threshold-based migration candidate selection.

use starnuma_obs::{EventCategory, EventLevel, FieldValue, ObsSink};
use starnuma_types::{Diagnostic, Location, PageId, RegionId, SimRng, REGION_PAGES};

use crate::page_map::PageMap;
use crate::tracker::MetadataRegion;

/// Renders a page location as a journal field (`"pool"` / `"socket7"`).
fn location_field(loc: Location) -> FieldValue {
    match loc {
        Location::Pool => FieldValue::Str("pool".to_string()),
        Location::Socket(s) => FieldValue::Str(format!("socket{}", s.index())),
    }
}

/// One page movement of a migration plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PageMove {
    /// The page being migrated.
    pub page: PageId,
    /// Where it currently lives.
    pub from: Location,
    /// Where it is going.
    pub to: Location,
}

/// The set of page movements decided for one migration phase.
///
/// The plan is produced against a *snapshot* of the page map; callers apply
/// it with [`MigrationPlan::apply`] (trace simulation applies it fully;
/// timing simulation models the first 10 % in detail, §IV-C).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MigrationPlan {
    /// Individual page moves, in decision order (victim evictions precede
    /// the migrations that needed the space).
    pub moves: Vec<PageMove>,
}

impl MigrationPlan {
    /// Number of pages migrated to the pool.
    pub fn to_pool(&self) -> u64 {
        self.moves.iter().filter(|m| m.to.is_pool()).count() as u64
    }

    /// Total pages moved.
    pub fn total(&self) -> u64 {
        self.moves.len() as u64
    }

    /// Applies every move to `map`.
    pub fn apply(&self, map: &mut PageMap) {
        for m in &self.moves {
            map.move_page(m.page, m.to);
        }
    }
}

/// Configuration of the Algorithm 1 policy (§IV-C).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PolicyConfig {
    /// Initial HI threshold (region accesses per phase to become a
    /// migration candidate). The paper starts at 20 K for billion-instruction
    /// phases; scale proportionally with phase length.
    pub hi_init: u64,
    /// HI adaptation bounds.
    pub hi_min: u64,
    /// Upper bound of the adaptive HI threshold.
    pub hi_max: u64,
    /// Initial LO (victim-eviction) threshold; adapted up to `lo_max`.
    pub lo_init: u64,
    /// Upper bound of the adaptive LO threshold.
    pub lo_max: u64,
    /// Per-phase migration limit in 4 KiB pages.
    pub migration_limit_pages: u64,
    /// Regions touched by at least this many sockets go to the pool
    /// (Algorithm 1 line 8: `count(region.sharers) ≥ 8`).
    pub pool_sharer_threshold: u32,
    /// `T_0` mode: ignore access counts; select regions touched by all
    /// sockets (fixed threshold 16, §IV-C).
    pub t0: bool,
}

impl PolicyConfig {
    /// The paper's `T_16` configuration, scaled for phases of
    /// `phase_accesses_hint` total expected region accesses. With the
    /// paper's 1 B-instruction phases the HI threshold starts at 20 K; the
    /// scaled default keeps the same *fraction* of mean region heat.
    pub fn t16_scaled(mean_region_accesses_per_phase: u64) -> Self {
        let hi = mean_region_accesses_per_phase.max(16);
        PolicyConfig {
            hi_init: hi,
            hi_min: (hi / 8).max(4),
            hi_max: hi * 32,
            lo_init: (hi / 20).max(1),
            lo_max: (hi / 2).max(2),
            migration_limit_pages: 4_096,
            pool_sharer_threshold: 8,
            t0: false,
        }
    }

    /// The `T_0` configuration: fixed sharer threshold of the full machine.
    pub fn t0(num_sockets: u32) -> Self {
        PolicyConfig {
            hi_init: 0,
            hi_min: 0,
            hi_max: 0,
            lo_init: 1,
            lo_max: 1,
            migration_limit_pages: 4_096,
            pool_sharer_threshold: num_sockets,
            t0: true,
        }
    }

    /// Pre-run validation of Algorithm 1's threshold structure (audit
    /// Pass 2, `SN103`).
    ///
    /// The adaptive thresholds only make sense when their bounds nest:
    /// `hi_min ≤ hi_init ≤ hi_max` and `lo_init ≤ lo_max`. A zero migration
    /// limit is legal (it freezes placement) but almost always a mistake, so
    /// it is reported as a warning.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if !(self.hi_min <= self.hi_init && self.hi_init <= self.hi_max) {
            out.push(Diagnostic::error(
                "SN103",
                "PolicyConfig.hi_init",
                format!(
                    "HI thresholds must nest as hi_min <= hi_init <= hi_max, got {} / {} / {}",
                    self.hi_min, self.hi_init, self.hi_max
                ),
                "start from PolicyConfig::t16_scaled, which derives consistent bounds",
            ));
        }
        if self.lo_init > self.lo_max {
            out.push(Diagnostic::error(
                "SN103",
                "PolicyConfig.lo_init",
                format!(
                    "LO thresholds must nest as lo_init <= lo_max, got {} / {}",
                    self.lo_init, self.lo_max
                ),
                "start from PolicyConfig::t16_scaled, which derives consistent bounds",
            ));
        }
        if self.migration_limit_pages == 0 {
            out.push(Diagnostic::warning(
                "SN103",
                "PolicyConfig.migration_limit_pages",
                "migration limit of 0 pages: the policy can never move a page",
                "set a positive per-phase limit (the paper migrates up to 16 K pages/phase)",
            ));
        }
        out
    }
}

/// Algorithm 1 with dynamic HI/LO threshold adjustment and ping-pong
/// suppression.
///
/// One instance persists across phases of one run (thresholds and the
/// per-region migration history carry over).
#[derive(Clone, Debug)]
pub struct ThresholdPolicy {
    config: PolicyConfig,
    hi: u64,
    lo: u64,
    phase: u64,
    region_migration_count: Vec<u32>,
    pool_enabled: bool,
    /// Total pages migrated, cumulative.
    pub pages_migrated: u64,
    /// Pages migrated to the pool, cumulative (Table IV numerator).
    pub pages_to_pool: u64,
}

impl ThresholdPolicy {
    /// Creates the policy for a footprint of `num_regions` regions.
    /// `pool_enabled` is false for the baseline system.
    pub fn new(config: PolicyConfig, num_regions: usize, pool_enabled: bool) -> Self {
        ThresholdPolicy {
            config,
            hi: config.hi_init,
            lo: config.lo_init,
            phase: 0,
            region_migration_count: vec![0; num_regions],
            pool_enabled,
            pages_migrated: 0,
            pages_to_pool: 0,
        }
    }

    /// Current HI threshold (tests, diagnostics).
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// Current LO threshold.
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// A region is ping-ponging if it has migrated more than a quarter of
    /// the current phase number (Algorithm 1 footnote).
    fn is_ping_ponging(&self, region: RegionId) -> bool {
        u64::from(self.region_migration_count[region.index() as usize]) * 4 > self.phase
    }

    /// Runs one Algorithm 1 pass over the metadata region and produces the
    /// phase's migration plan. Mutates `map` (migrations and victim
    /// evictions are applied as decided, mirroring the paper's sequential
    /// scan), advances the phase counter, and adapts thresholds.
    pub fn decide(
        &mut self,
        meta: &MetadataRegion,
        map: &mut PageMap,
        rng: &mut SimRng,
    ) -> MigrationPlan {
        self.decide_observed(meta, map, rng, &mut ObsSink::disabled())
    }

    /// [`ThresholdPolicy::decide`] journaling every decision into `obs`:
    /// region migrations, pool-capacity pressure (victim evictions and
    /// full-pool skips), the per-phase migration-limit crossing, and HI
    /// threshold adaptations.
    pub fn decide_observed(
        &mut self,
        meta: &MetadataRegion,
        map: &mut PageMap,
        rng: &mut SimRng,
        obs: &mut ObsSink,
    ) -> MigrationPlan {
        self.phase += 1;
        let mut plan = MigrationPlan::default();
        let mut n_migrated_pages = 0u64;
        let mut candidates = 0u64;
        let mut limit_reported = false;
        let num_sockets = meta.num_sockets();

        for (region, entry) in meta.iter() {
            if region.index() as usize >= map.num_regions() {
                break;
            }
            let selected = if self.config.t0 {
                entry.sharer_count() >= self.config.pool_sharer_threshold
            } else {
                entry.accesses >= self.hi
            };
            if !selected {
                continue;
            }
            candidates += 1;
            if n_migrated_pages >= self.config.migration_limit_pages {
                // Line 29–31: the limit stops migrations for this phase, but
                // the scan still counts candidates to drive HI adaptation.
                if !limit_reported {
                    limit_reported = true;
                    let limit = self.config.migration_limit_pages;
                    obs.event(
                        EventLevel::Warn,
                        EventCategory::Threshold,
                        "migration_limit_reached",
                        || {
                            vec![
                                ("limit_pages", FieldValue::U64(limit)),
                                ("migrated_pages", FieldValue::U64(n_migrated_pages)),
                            ]
                        },
                    );
                }
                continue;
            }
            let sharers = entry.sharers(num_sockets);
            if sharers.is_empty() {
                continue;
            }
            // Line 7–10: destination is a random sharer, or the pool for
            // widely shared regions.
            let mut best: Location = Location::Socket(sharers[rng.gen_range(0..sharers.len())]);
            if self.pool_enabled && entry.sharer_count() >= self.config.pool_sharer_threshold {
                best = Location::Pool;
            }
            let current = map.region_location(region);
            if best == current || self.is_ping_ponging(region) {
                continue;
            }
            // Line 13–23: make space at the destination if needed.
            if best.is_pool() {
                let region_pages = region
                    .pages()
                    .filter(|p| p.pfn() < map.len() && map.location(*p) != Location::Pool)
                    .count() as u64;
                if map.pool_free_pages() < region_pages {
                    let shortfall = region_pages - map.pool_free_pages();
                    obs.event(
                        EventLevel::Warn,
                        EventCategory::PoolPressure,
                        "pool_pressure",
                        || {
                            vec![
                                ("region", FieldValue::U64(region.index())),
                                ("needed_pages", FieldValue::U64(shortfall)),
                            ]
                        },
                    );
                    let freed =
                        self.evict_victims(meta, map, shortfall, region, rng, &mut plan, obs);
                    if map.pool_free_pages() + freed < region_pages {
                        obs.event(
                            EventLevel::Warn,
                            EventCategory::PoolPressure,
                            "pool_full_skip",
                            || vec![("region", FieldValue::U64(region.index()))],
                        );
                        continue; // no victim found: skip this candidate
                    }
                }
            }
            // Line 24–26: perform the migration.
            let pages_before = n_migrated_pages;
            for page in region.pages() {
                if page.pfn() >= map.len() {
                    break;
                }
                let from = map.location(page);
                if from != best {
                    plan.moves.push(PageMove {
                        page,
                        from,
                        to: best,
                    });
                    map.move_page(page, best);
                    n_migrated_pages += 1;
                    if best.is_pool() {
                        self.pages_to_pool += 1;
                    }
                }
            }
            let pages_moved = n_migrated_pages - pages_before;
            if pages_moved > 0 {
                obs.event(
                    EventLevel::Info,
                    EventCategory::Migration,
                    "region_migrated",
                    || {
                        vec![
                            ("region", FieldValue::U64(region.index())),
                            ("pages", FieldValue::U64(pages_moved)),
                            ("sharers", FieldValue::U64(u64::from(entry.sharer_count()))),
                            ("accesses", FieldValue::U64(entry.accesses)),
                            ("dest", location_field(best)),
                        ]
                    },
                );
            }
            // Saturate: a long sweep can migrate one region more than
            // u32::MAX times; wrapping would panic in debug builds and
            // silently reset the ping-pong guard in release.
            let count = &mut self.region_migration_count[region.index() as usize];
            *count = count.saturating_add(1);
        }
        self.pages_migrated += n_migrated_pages;
        self.adapt_thresholds(candidates, obs);
        plan
    }

    /// Finds cold victim regions in the pool (accesses ≤ LO) and moves them
    /// to a random sharer until `needed` pages are freed. Returns pages
    /// freed.
    #[allow(clippy::too_many_arguments)] // internal helper mirroring Algorithm 1 line 13-23 state
    fn evict_victims(
        &mut self,
        meta: &MetadataRegion,
        map: &mut PageMap,
        needed: u64,
        exclude: RegionId,
        rng: &mut SimRng,
        plan: &mut MigrationPlan,
        obs: &mut ObsSink,
    ) -> u64 {
        let mut freed = 0u64;
        for (victim, ventry) in meta.iter() {
            if freed >= needed {
                break;
            }
            if victim == exclude || victim.index() as usize >= map.num_regions() {
                continue;
            }
            if map.region_location(victim) != Location::Pool {
                continue;
            }
            let cold = if self.config.t0 {
                ventry.sharer_count() < self.config.pool_sharer_threshold
            } else {
                ventry.accesses <= self.lo
            };
            if !cold {
                continue;
            }
            // Line 22: victim's destination is a random sharer (or socket 0
            // if the victim went untouched this phase).
            let sharers = ventry.sharers(meta.num_sockets());
            let dst = if sharers.is_empty() {
                Location::Socket(starnuma_types::SocketId::new(
                    rng.gen_range(0..meta.num_sockets()) as u16,
                ))
            } else {
                Location::Socket(sharers[rng.gen_range(0..sharers.len())])
            };
            let freed_before = freed;
            for page in victim.pages() {
                if page.pfn() >= map.len() {
                    break;
                }
                if map.location(page) == Location::Pool {
                    plan.moves.push(PageMove {
                        page,
                        from: Location::Pool,
                        to: dst,
                    });
                    map.move_page(page, dst);
                    freed += 1;
                }
            }
            let evicted = freed - freed_before;
            if evicted > 0 {
                obs.event(
                    EventLevel::Info,
                    EventCategory::PoolPressure,
                    "pool_victim_evicted",
                    || {
                        vec![
                            ("region", FieldValue::U64(victim.index())),
                            ("pages", FieldValue::U64(evicted)),
                            ("dest", location_field(dst)),
                        ]
                    },
                );
            }
        }
        freed
    }

    /// Dynamic threshold adjustment (§IV-C): HI follows the candidate count
    /// relative to the migration limit; LO follows HI.
    fn adapt_thresholds(&mut self, candidates: u64, obs: &mut ObsSink) {
        if self.config.t0 {
            return;
        }
        let old_hi = self.hi;
        let limit_regions = (self.config.migration_limit_pages / REGION_PAGES as u64).max(1);
        if candidates > limit_regions * 2 {
            self.hi = (self.hi * 2).min(self.config.hi_max);
        } else if candidates == 0 {
            // Decay only when nothing qualifies: decaying toward the limit
            // would dredge up lukewarm regions whose migration (to a random
            // sharer) is churn, not progress — the paper avoids this by
            // tuning HI per workload (20K–400K).
            self.hi = (self.hi / 2).max(self.config.hi_min);
        }
        self.lo = (self.hi / 20).clamp(self.config.lo_init, self.config.lo_max);
        if self.hi != old_hi {
            let (new_hi, new_lo) = (self.hi, self.lo);
            obs.event(
                EventLevel::Debug,
                EventCategory::Threshold,
                "hi_threshold_adapted",
                || {
                    vec![
                        ("old_hi", FieldValue::U64(old_hi)),
                        ("new_hi", FieldValue::U64(new_hi)),
                        ("new_lo", FieldValue::U64(new_lo)),
                        ("candidates", FieldValue::U64(candidates)),
                    ]
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starnuma_types::SocketId;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(7)
    }

    fn socket(i: u16) -> Location {
        Location::Socket(SocketId::new(i))
    }

    /// 4 regions × 128 pages, all on socket 0, pool fits 2 regions.
    fn map() -> PageMap {
        PageMap::from_fn(512, 256, |_| socket(0))
    }

    fn config() -> PolicyConfig {
        PolicyConfig {
            hi_init: 100,
            hi_min: 16,
            hi_max: 10_000,
            lo_init: 5,
            lo_max: 50,
            migration_limit_pages: 10_000,
            pool_sharer_threshold: 8,
            t0: false,
        }
    }

    fn record_sharers(meta: &mut MetadataRegion, region: u64, sharers: u16, count: u32) {
        for s in 0..sharers {
            meta.record(RegionId::new(region), SocketId::new(s), count);
        }
    }

    #[test]
    fn widely_shared_hot_region_goes_to_pool() {
        let mut meta = MetadataRegion::new(4, 16, 16);
        record_sharers(&mut meta, 0, 16, 50); // 800 accesses, 16 sharers
        let mut m = map();
        let mut p = ThresholdPolicy::new(config(), 4, true);
        let plan = p.decide(&meta, &mut m, &mut rng());
        assert_eq!(plan.total(), 128);
        assert_eq!(plan.to_pool(), 128);
        assert_eq!(m.region_location(RegionId::new(0)), Location::Pool);
        assert_eq!(p.pages_to_pool, 128);
    }

    #[test]
    fn narrow_hot_region_goes_to_a_sharer_socket() {
        let mut meta = MetadataRegion::new(4, 16, 16);
        // Hot but only 2 sharers (sockets 4 and 5).
        meta.record(RegionId::new(1), SocketId::new(4), 300);
        meta.record(RegionId::new(1), SocketId::new(5), 300);
        let mut m = map();
        let mut p = ThresholdPolicy::new(config(), 4, true);
        let plan = p.decide(&meta, &mut m, &mut rng());
        assert_eq!(plan.to_pool(), 0);
        let dst = m.region_location(RegionId::new(1));
        assert!(dst == socket(4) || dst == socket(5), "got {dst:?}");
        assert_eq!(plan.total(), 128);
    }

    #[test]
    fn cold_regions_stay_put() {
        let mut meta = MetadataRegion::new(4, 16, 16);
        record_sharers(&mut meta, 0, 16, 1); // 16 accesses < HI=100
        let mut m = map();
        let mut p = ThresholdPolicy::new(config(), 4, true);
        let plan = p.decide(&meta, &mut m, &mut rng());
        assert!(plan.moves.is_empty());
    }

    #[test]
    fn baseline_never_uses_pool() {
        let mut meta = MetadataRegion::new(4, 16, 16);
        record_sharers(&mut meta, 0, 16, 50);
        let mut m = map();
        let mut p = ThresholdPolicy::new(config(), 4, false);
        let plan = p.decide(&meta, &mut m, &mut rng());
        assert_eq!(plan.to_pool(), 0);
        assert!(!m.region_location(RegionId::new(0)).is_pool());
    }

    #[test]
    fn migration_limit_respected() {
        let mut meta = MetadataRegion::new(4, 16, 16);
        for r in 0..4 {
            record_sharers(&mut meta, r, 16, 50);
        }
        let mut m = PageMap::from_fn(512, 512, |_| socket(0));
        let mut cfg = config();
        cfg.migration_limit_pages = 128;
        let mut p = ThresholdPolicy::new(cfg, 4, true);
        let plan = p.decide(&meta, &mut m, &mut rng());
        assert_eq!(plan.total(), 128, "stops at the limit");
    }

    #[test]
    fn full_pool_evicts_cold_victim() {
        let mut meta = MetadataRegion::new(4, 16, 16);
        record_sharers(&mut meta, 0, 16, 50); // hot, wants pool
        record_sharers(&mut meta, 2, 2, 1); // cold pool resident
                                            // Pool holds regions 2 and 3 already; capacity 2 regions.
        let mut m = PageMap::from_fn(512, 256, |p| {
            if p.region().index() >= 2 {
                Location::Pool
            } else {
                socket(0)
            }
        });
        let mut p = ThresholdPolicy::new(config(), 4, true);
        let plan = p.decide(&meta, &mut m, &mut rng());
        // Victim region 2 (cold) left the pool; region 0 moved in.
        assert_eq!(m.region_location(RegionId::new(0)), Location::Pool);
        assert!(!m.region_location(RegionId::new(2)).is_pool());
        assert!(plan.moves.iter().any(|mv| mv.from.is_pool()));
        assert_eq!(m.pool_pages(), 256);
    }

    #[test]
    fn full_pool_without_cold_victim_skips() {
        let mut meta = MetadataRegion::new(4, 16, 16);
        record_sharers(&mut meta, 0, 16, 50); // wants pool
        record_sharers(&mut meta, 2, 16, 50); // pool resident but HOT
        record_sharers(&mut meta, 3, 16, 50); // pool resident but HOT
        let mut m = PageMap::from_fn(512, 256, |p| {
            if p.region().index() >= 2 {
                Location::Pool
            } else {
                socket(0)
            }
        });
        let mut p = ThresholdPolicy::new(config(), 4, true);
        let plan = p.decide(&meta, &mut m, &mut rng());
        assert!(
            !m.region_location(RegionId::new(0)).is_pool(),
            "no cold victim: candidate must be skipped"
        );
        // Hot pool residents were not evicted.
        assert!(plan.moves.iter().all(|mv| !mv.from.is_pool()));
    }

    /// Regression (PR 5): the per-region migration counter used unchecked
    /// `+= 1`; with a saturated `u32` counter and enough elapsed phases for
    /// the ping-pong guard to readmit the region, the next migration
    /// overflowed — a panic in debug builds and a silent counter wrap (which
    /// resets the ping-pong guard) in release. The count must saturate.
    #[test]
    fn migration_count_saturates_at_u32_max() {
        let mut meta = MetadataRegion::new(4, 16, 16);
        record_sharers(&mut meta, 0, 16, 50); // hot, wants pool
        let mut m = map();
        let mut p = ThresholdPolicy::new(config(), 4, true);
        // A region that already migrated u32::MAX times, deep into a sweep
        // long enough (phase > 4·u32::MAX) that ping-pong suppression
        // (count·4 > phase) no longer blocks it.
        p.region_migration_count[0] = u32::MAX;
        p.phase = (u64::from(u32::MAX) + 1) * 4;
        assert!(!p.is_ping_ponging(RegionId::new(0)));
        let plan = p.decide(&meta, &mut m, &mut rng());
        assert_eq!(plan.total(), 128, "region must still migrate");
        assert_eq!(
            p.region_migration_count[0],
            u32::MAX,
            "count saturates instead of wrapping"
        );
        // Saturated counter keeps suppressing at realistic phase numbers.
        p.phase = 1000;
        assert!(p.is_ping_ponging(RegionId::new(0)));
    }

    #[test]
    fn ping_pong_suppression() {
        let mut meta = MetadataRegion::new(4, 16, 16);
        // Sharers disjoint from the current location (socket 0), so the
        // first migration happens whichever sharer the RNG picks.
        meta.record(RegionId::new(0), SocketId::new(4), 300);
        meta.record(RegionId::new(0), SocketId::new(5), 300);
        let mut m = map();
        let mut p = ThresholdPolicy::new(config(), 4, true);
        // Region 0 migrates in phase 1.
        let plan1 = p.decide(&meta, &mut m, &mut rng());
        assert_eq!(plan1.total(), 128);
        // Make it hot from a *different* pair of sharers each phase: it
        // would bounce every phase without the ping-pong rule.
        let mut bounces = 0;
        for phase in 0..8 {
            let mut meta2 = MetadataRegion::new(4, 16, 16);
            let s = (phase % 8) as u16 * 2;
            meta2.record(RegionId::new(0), SocketId::new(s), 300);
            meta2.record(RegionId::new(0), SocketId::new(s + 1), 300);
            let plan = p.decide(&meta2, &mut m, &mut rng());
            bounces += plan.total() / 128;
        }
        assert!(
            bounces <= 2,
            "ping-pong rule should limit to ≤ phase/4 migrations, got {bounces}"
        );
    }

    #[test]
    fn t0_selects_only_full_sharing() {
        let mut meta = MetadataRegion::new(4, 16, 0);
        record_sharers(&mut meta, 0, 16, 1); // all sockets → selected
        record_sharers(&mut meta, 1, 15, 1_000_000); // hot but 15 sharers → not selected
        let mut m = map();
        let mut p = ThresholdPolicy::new(PolicyConfig::t0(16), 4, true);
        let plan = p.decide(&meta, &mut m, &mut rng());
        assert_eq!(m.region_location(RegionId::new(0)), Location::Pool);
        assert!(!m.region_location(RegionId::new(1)).is_pool());
        assert_eq!(plan.to_pool(), 128);
    }

    #[test]
    fn thresholds_adapt_up_and_down() {
        let mut cfg = config();
        cfg.migration_limit_pages = 128; // 1 region
        let mut p = ThresholdPolicy::new(cfg, 64, true);
        let mut m = PageMap::from_fn(64 * 128, 64 * 128, |_| socket(0));
        // Many candidates → HI doubles.
        let mut meta = MetadataRegion::new(64, 16, 16);
        for r in 0..64 {
            record_sharers(&mut meta, r, 16, 50);
        }
        let hi0 = p.hi();
        p.decide(&meta, &mut m, &mut rng());
        assert!(p.hi() > hi0, "HI should rise under candidate pressure");
        // No candidates → HI halves.
        let empty = MetadataRegion::new(64, 16, 16);
        let hi1 = p.hi();
        p.decide(&empty, &mut m, &mut rng());
        assert!(p.hi() < hi1, "HI should fall when nothing qualifies");
        assert!(p.lo() >= cfg.lo_init);
    }

    #[test]
    fn plan_apply_replays_moves() {
        let mut meta = MetadataRegion::new(4, 16, 16);
        record_sharers(&mut meta, 0, 16, 50);
        let mut live = map();
        let snapshot = live.clone();
        let mut p = ThresholdPolicy::new(config(), 4, true);
        let plan = p.decide(&meta, &mut live, &mut rng());
        let mut replay = snapshot;
        plan.apply(&mut replay);
        for pg in 0..replay.len() {
            assert_eq!(
                replay.location(PageId::new(pg)),
                live.location(PageId::new(pg))
            );
        }
    }

    #[test]
    fn scaled_config_constructors() {
        let t16 = PolicyConfig::t16_scaled(8_000);
        assert_eq!(t16.hi_init, 8_000);
        assert_eq!(t16.hi_min, 1_000);
        assert!(!t16.t0);
        let t0 = PolicyConfig::t0(16);
        assert!(t0.t0);
        assert_eq!(t0.pool_sharer_threshold, 16);
    }
}
