//! Memory-access monitoring and page migration (§III-D of the paper).
//!
//! This crate implements:
//!
//! * [`MetadataRegion`]: the in-memory region trackers — per 512 KiB region,
//!   one bit per socket plus an `i`-bit access counter (`T_16`, `T_0`);
//! * [`PageMap`]: the page→location mapping with first-touch initial
//!   placement and pool-capacity accounting;
//! * [`ThresholdPolicy`]: Algorithm 1 — threshold-based migration candidate
//!   selection with dynamic HI/LO adjustment, ping-pong suppression, victim
//!   eviction when a destination is full, and a per-phase migration limit;
//! * [`OracleDynamicPolicy`]: the favored baseline of §IV-C — *zero-cost,
//!   perfect per-socket knowledge of all accesses to every 4 KiB page*;
//! * [`static_oracle_placement`]: the §V-B a-priori oracular static layout;
//! * [`MigrationCosts`] and [`scan_cost_cycles`]: the §III-D3/§III-D4
//!   overhead models (3 k-cycle initiator cost per page with
//!   hardware-supported TLB shootdowns; metadata-scan runtime).
//!
//! # Examples
//!
//! ```
//! use starnuma_migration::{MetadataRegion, PageMap, PolicyConfig, ThresholdPolicy};
//! use starnuma_types::{Location, RegionId, SocketId};
//!
//! let mut meta = MetadataRegion::new(4, 16, 16);
//! meta.record(RegionId::new(0), SocketId::new(0), 100);
//! assert_eq!(meta.sharer_count(RegionId::new(0)), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ablation;
mod costs;
mod oracle;
mod page_map;
mod policy;
mod replication;
mod tracker;

pub use ablation::AblationPolicy;
pub use costs::{scan_cost_cycles, MigrationCosts};
pub use oracle::{
    static_oracle_placement, static_oracle_placement_with_sharers, OracleDynamicPolicy,
    PageAccessCounts,
};
pub use page_map::PageMap;
pub use policy::{MigrationPlan, PageMove, PolicyConfig, ThresholdPolicy};
pub use replication::{ReplicaMap, ReplicationConfig, ReplicationStats};
pub use tracker::{MetadataRegion, TrackerEntry};
