//! The page→location map with first-touch initialization and pool-capacity
//! accounting.

use starnuma_trace::PhaseTrace;
use starnuma_types::{Location, PageId, RegionId, SocketId, REGION_PAGES};

/// Maps every page of the footprint to the memory that currently holds it.
///
/// Initial placement follows the paper's first-touch policy (§IV-C); the
/// migration machinery then moves pages between sockets and (in StarNUMA)
/// the pool. The map enforces the pool-capacity limit of §IV-D: the amount
/// of data allowed in the pool is a fraction of the workload footprint
/// (20 % by default, 1/17 in the §V-E study).
#[derive(Clone, Debug)]
pub struct PageMap {
    locations: Vec<Location>,
    pool_pages: u64,
    pool_capacity_pages: u64,
}

impl PageMap {
    /// Creates a map with every page placed by `placer`.
    pub fn from_fn(
        footprint_pages: u64,
        pool_capacity_pages: u64,
        mut placer: impl FnMut(PageId) -> Location,
    ) -> Self {
        let locations: Vec<Location> = (0..footprint_pages)
            .map(|p| placer(PageId::new(p)))
            .collect();
        let pool_pages = locations.iter().filter(|l| l.is_pool()).count() as u64;
        PageMap {
            locations,
            pool_pages,
            pool_capacity_pages,
        }
    }

    /// First-touch placement: each page lives on the socket whose core first
    /// accessed it (ties broken by lowest icount, then lowest core id).
    /// Untouched pages are distributed round-robin.
    pub fn first_touch(
        footprint_pages: u64,
        pool_capacity_pages: u64,
        trace: &PhaseTrace,
        cores_per_socket: usize,
        num_sockets: usize,
    ) -> Self {
        let mut first: Vec<Option<(u64, u32)>> = vec![None; footprint_pages as usize];
        for a in trace.iter() {
            let p = a.addr.page().pfn() as usize;
            let key = (a.icount, a.core.index());
            match first[p] {
                Some(existing) if existing <= key => {}
                _ => first[p] = Some(key),
            }
        }
        let mut rr = 0u16;
        Self::from_fn(footprint_pages, pool_capacity_pages, |page| {
            match first[page.pfn() as usize] {
                Some((_, core)) => {
                    Location::Socket(starnuma_types::CoreId::new(core).socket(cores_per_socket))
                }
                None => {
                    let s = SocketId::new(rr % num_sockets as u16);
                    rr += 1;
                    Location::Socket(s)
                }
            }
        })
    }

    /// Number of pages in the footprint.
    pub fn len(&self) -> u64 {
        self.locations.len() as u64
    }

    /// Returns `true` if the footprint is empty.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Current location of `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the footprint.
    pub fn location(&self, page: PageId) -> Location {
        self.locations[page.pfn() as usize]
    }

    /// Location of a region (its first page; regions move as a unit under
    /// the region policy, but the oracle baseline moves individual pages).
    pub fn region_location(&self, region: RegionId) -> Location {
        self.location(region.first_page())
    }

    /// Pages currently resident in the pool.
    pub fn pool_pages(&self) -> u64 {
        self.pool_pages
    }

    /// The pool capacity in pages.
    pub fn pool_capacity_pages(&self) -> u64 {
        self.pool_capacity_pages
    }

    /// Free pool capacity in pages.
    pub fn pool_free_pages(&self) -> u64 {
        self.pool_capacity_pages.saturating_sub(self.pool_pages)
    }

    /// Moves `page` to `to`, maintaining pool occupancy.
    ///
    /// # Panics
    ///
    /// Panics if the move would exceed the pool capacity (callers must make
    /// space first, as Algorithm 1 does via victim eviction).
    pub fn move_page(&mut self, page: PageId, to: Location) {
        let from = self.location(page);
        if from == to {
            return;
        }
        if from.is_pool() {
            self.pool_pages -= 1;
        }
        if to.is_pool() {
            assert!(
                self.pool_pages < self.pool_capacity_pages,
                "pool capacity exceeded moving {page:?}"
            );
            self.pool_pages += 1;
        }
        self.locations[page.pfn() as usize] = to;
    }

    /// Moves all pages of `region` to `to`. Returns how many pages actually
    /// moved (pages already at `to` do not count).
    ///
    /// # Panics
    ///
    /// Panics if the move would exceed pool capacity.
    pub fn move_region(&mut self, region: RegionId, to: Location) -> u64 {
        let mut moved = 0;
        for page in region.pages() {
            if page.pfn() >= self.len() {
                break; // last region may be partial
            }
            if self.location(page) != to {
                self.move_page(page, to);
                moved += 1;
            }
        }
        moved
    }

    /// Number of regions covering the footprint.
    pub fn num_regions(&self) -> usize {
        (self.len() as usize).div_ceil(REGION_PAGES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starnuma_trace::{TraceGenerator, Workload};

    fn socket(i: u16) -> Location {
        Location::Socket(SocketId::new(i))
    }

    #[test]
    fn from_fn_places_pages() {
        let m = PageMap::from_fn(10, 5, |p| {
            if p.pfn() < 3 {
                Location::Pool
            } else {
                socket(0)
            }
        });
        assert_eq!(m.len(), 10);
        assert_eq!(m.pool_pages(), 3);
        assert_eq!(m.pool_free_pages(), 2);
        assert_eq!(m.location(PageId::new(0)), Location::Pool);
        assert_eq!(m.location(PageId::new(5)), socket(0));
    }

    #[test]
    fn move_page_tracks_pool_occupancy() {
        let mut m = PageMap::from_fn(4, 2, |_| socket(1));
        m.move_page(PageId::new(0), Location::Pool);
        assert_eq!(m.pool_pages(), 1);
        m.move_page(PageId::new(0), socket(2));
        assert_eq!(m.pool_pages(), 0);
        // Self-move is a no-op.
        m.move_page(PageId::new(0), socket(2));
        assert_eq!(m.location(PageId::new(0)), socket(2));
    }

    #[test]
    #[should_panic(expected = "pool capacity exceeded")]
    fn pool_capacity_enforced() {
        let mut m = PageMap::from_fn(4, 1, |_| socket(0));
        m.move_page(PageId::new(0), Location::Pool);
        m.move_page(PageId::new(1), Location::Pool);
    }

    #[test]
    fn move_region_moves_all_pages() {
        let mut m = PageMap::from_fn(256, 300, |_| socket(0));
        let moved = m.move_region(RegionId::new(1), Location::Pool);
        assert_eq!(moved, 128);
        assert_eq!(m.pool_pages(), 128);
        for page in RegionId::new(1).pages() {
            assert_eq!(m.location(page), Location::Pool);
        }
        assert_eq!(m.region_location(RegionId::new(1)), Location::Pool);
        // Moving again is free.
        assert_eq!(m.move_region(RegionId::new(1), Location::Pool), 0);
    }

    #[test]
    fn move_partial_last_region() {
        let mut m = PageMap::from_fn(130, 200, |_| socket(0));
        assert_eq!(m.num_regions(), 2);
        let moved = m.move_region(RegionId::new(1), Location::Pool);
        assert_eq!(moved, 2, "last region has only 2 pages");
    }

    #[test]
    fn first_touch_uses_earliest_access() {
        let mut g = TraceGenerator::new(&Workload::Poa.profile(), 16, 4, 3);
        let t = g.generate_phase(5_000);
        let m = PageMap::first_touch(g.profile().footprint_pages, 1000, &t, 4, 16);
        // POA pages are socket-private: first toucher *is* the owning socket.
        for a in t.iter() {
            let owner = g.page_sharers(a.addr.page())[0];
            assert_eq!(m.location(a.addr.page()), Location::Socket(owner));
        }
        assert_eq!(m.pool_pages(), 0, "first touch never uses the pool");
    }

    #[test]
    fn first_touch_spreads_untouched_pages() {
        let t = PhaseTrace::default();
        let m = PageMap::first_touch(32, 10, &t, 4, 16);
        // Round-robin over 16 sockets: each socket gets 2 of 32 pages.
        let mut counts = [0u32; 16];
        for p in 0..32 {
            if let Location::Socket(s) = m.location(PageId::new(p)) {
                counts[s.index() as usize] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 2));
    }
}
