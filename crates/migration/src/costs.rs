//! Migration overhead models (§III-D3, §III-D4, §IV-C).

use starnuma_types::{Cycles, Diagnostic, Nanos, PAGE_SIZE};

/// Cost parameters of performing migrations.
///
/// With the hardware-supported TLB shootdowns the paper adopts from
/// DiDi \[64\], victim cores pay nothing; the migration-initiating core pays
/// 3 000 cycles per page, and the page's data must physically move
/// (4 KiB over the interconnect). Accesses to an in-flight page stall until
/// the migration completes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MigrationCosts {
    /// Initiator-core cycles per migrated page (shootdown initiation +
    /// completion wait; 3 k cycles in the paper).
    pub initiator_cycles_per_page: Cycles,
    /// Bytes moved per page (the page itself).
    pub bytes_per_page: u64,
}

impl MigrationCosts {
    /// The paper's cost model.
    pub fn paper() -> Self {
        MigrationCosts {
            initiator_cycles_per_page: Cycles::new(3_000),
            bytes_per_page: PAGE_SIZE as u64,
        }
    }

    /// Total initiator-core busy time for `pages` migrations.
    pub fn initiator_cost(&self, pages: u64) -> Cycles {
        self.initiator_cycles_per_page * pages
    }

    /// Pre-run validation of the cost model (audit Pass 2, `SN105`).
    ///
    /// A page that moves zero bytes breaks the bandwidth model (error);
    /// free shootdowns merely make migration optimistic (warning).
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if self.bytes_per_page == 0 {
            out.push(Diagnostic::error(
                "SN105",
                "MigrationCosts.bytes_per_page",
                "a migrated page must move a positive number of bytes",
                "the paper moves the whole 4 KiB page over the interconnect",
            ));
        }
        if self.initiator_cycles_per_page.raw() == 0 {
            out.push(Diagnostic::warning(
                "SN105",
                "MigrationCosts.initiator_cycles_per_page",
                "zero initiator cycles per page: migrations are modeled as free",
                "the paper charges 3 000 cycles per page on the initiating core",
            ));
        }
        out
    }
}

impl Default for MigrationCosts {
    fn default() -> Self {
        Self::paper()
    }
}

/// Runtime of one Algorithm 1 metadata scan (§III-D4): a single pass over
/// `entries` tracker entries, each costing between 2 and 10 cycles depending
/// on metadata-memory latency. The paper profiles 64–320 M cycles for the
/// full-scale 32 M-entry metadata region.
///
/// `metadata_latency` interpolates between the best case (local, ~2
/// cycles/entry) and worst case (remote, ~10 cycles/entry).
///
/// # Examples
///
/// ```
/// use starnuma_migration::scan_cost_cycles;
/// use starnuma_types::Nanos;
///
/// // Full-scale system: 32 M entries, local metadata.
/// let best = scan_cost_cycles(32_000_000, Nanos::new(80.0));
/// let worst = scan_cost_cycles(32_000_000, Nanos::new(360.0));
/// assert!(best.raw() >= 64_000_000);
/// assert!(worst.raw() <= 320_000_000);
/// ```
pub fn scan_cost_cycles(entries: u64, metadata_latency: Nanos) -> Cycles {
    // 2 cycles/entry at 80 ns metadata latency, 10 cycles/entry at 360 ns —
    // cache-line batching (8 entries/line) hides most of the raw latency.
    let lat = metadata_latency.raw().clamp(80.0, 360.0);
    let per_entry = 2.0 + (lat - 80.0) / (360.0 - 80.0) * 8.0;
    Cycles::new((entries as f64 * per_entry).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_costs() {
        let c = MigrationCosts::paper();
        assert_eq!(c.initiator_cycles_per_page, Cycles::new(3_000));
        assert_eq!(c.bytes_per_page, 4096);
        assert_eq!(c.initiator_cost(10), Cycles::new(30_000));
    }

    #[test]
    fn scan_cost_matches_paper_range() {
        // §III-D4: 32 M entries → 64–320 M cycles min/max.
        assert_eq!(
            scan_cost_cycles(32_000_000, Nanos::new(80.0)),
            Cycles::new(64_000_000)
        );
        assert_eq!(
            scan_cost_cycles(32_000_000, Nanos::new(360.0)),
            Cycles::new(320_000_000)
        );
    }

    #[test]
    fn scan_cost_fits_in_migration_period() {
        // The worst-case scan (320 M cycles) fits within the ≥1 B-cycle
        // migration period (§III-D4).
        let worst = scan_cost_cycles(32_000_000, Nanos::new(500.0));
        assert!(worst.raw() < 1_000_000_000);
    }

    #[test]
    fn scan_cost_scales_linearly() {
        let one = scan_cost_cycles(1_000, Nanos::new(80.0));
        let two = scan_cost_cycles(2_000, Nanos::new(80.0));
        assert_eq!(two.raw(), 2 * one.raw());
    }

    #[test]
    fn latency_is_clamped() {
        assert_eq!(
            scan_cost_cycles(100, Nanos::new(10.0)),
            scan_cost_cycles(100, Nanos::new(80.0))
        );
    }
}
