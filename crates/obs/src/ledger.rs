//! The run ledger: one append-only JSONL record per completed run.
//!
//! `starnuma run/compare/sweep --ledger DIR` append a [`RunRecord`] per
//! run to `DIR/runs.jsonl`; `starnuma report` reads the file back and
//! renders cross-run trends and determinism-drift flags. Records are
//! *flat* JSON objects (dotted keys, like the bench history file) so
//! [`parse_flat_object`](crate::parse_flat_object) can read them without
//! a real JSON parser, and every field is deterministic except
//! `wall_ns`, which callers obtain from the sanctioned
//! `SessionTimer` path and pass in explicitly — determinism tests pass a
//! fixed value and byte-compare whole lines.
//!
//! 64-bit digests travel as `"0x..."` hex strings: JSON numbers are
//! `f64` and silently lose integer precision above 2^53.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use starnuma_types::{digest_hex, json_escape, parse_digest_hex};

use crate::export::{parse_flat_object, RunMeta};
use crate::metrics::LatencyHistogram;
use crate::monitor::MonitorReport;
use crate::sink::ObsReport;

/// Version stamped into (and required of) every ledger line.
pub const LEDGER_SCHEMA_VERSION: u64 = 1;

/// File name appended to the ledger directory.
pub const LEDGER_FILE: &str = "runs.jsonl";

/// Latency summary for one access class (or the all-class merge).
/// Percentiles are 0 when `count` is 0 — the JSON rendering omits them
/// in that case, so an empty class cannot masquerade as a 0 ns one.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ClassSummary {
    /// Access-class label (`local`, `pool`, …) or `overall`.
    pub label: String,
    /// Samples recorded.
    pub count: u64,
    /// Median latency in ns.
    pub p50_ns: f64,
    /// 95th-percentile latency in ns.
    pub p95_ns: f64,
    /// 99th-percentile latency in ns.
    pub p99_ns: f64,
}

impl ClassSummary {
    fn from_hist(label: &str, hist: &LatencyHistogram) -> Self {
        ClassSummary {
            label: label.to_string(),
            count: hist.count(),
            p50_ns: hist.try_percentile_ns(0.50).unwrap_or(0.0),
            p95_ns: hist.try_percentile_ns(0.95).unwrap_or(0.0),
            p99_ns: hist.try_percentile_ns(0.99).unwrap_or(0.0),
        }
    }
}

/// One profiler site's attributed time, as stored in a record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SiteSummary {
    /// Site label (`timing`, `trace_gen`, …).
    pub label: String,
    /// Attributed nanoseconds.
    pub ns: u64,
    /// Enter count.
    pub calls: u64,
}

/// Per-run scalars the CLI supplies alongside the [`ObsReport`]: the
/// digests, result headline numbers, wall time, and profiler sites the
/// observability layer cannot compute itself.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RunExtras {
    /// FNV-1a digest of the run configuration's Debug rendering.
    pub config_digest: u64,
    /// FNV-1a digest of the `RunResult` Debug rendering.
    pub result_digest: u64,
    /// Host wall time for the run, from `SessionTimer` (the one
    /// sanctioned wall-clock path). Not deterministic; pass 0 in
    /// determinism tests.
    pub wall_ns: u64,
    /// End-to-end instructions per cycle.
    pub ipc: f64,
    /// Average memory access time in ns.
    pub amat_ns: f64,
    /// Pages migrated over the whole run.
    pub pages_migrated: u64,
    /// Pages migrated into the CXL pool.
    pub pages_to_pool: u64,
    /// Top profiler sites by attributed time (empty when profiling was
    /// off).
    pub top_sites: Vec<SiteSummary>,
}

/// One completed run, as persisted in the ledger.
#[derive(Clone, PartialEq, Debug)]
pub struct RunRecord {
    /// Ledger schema version ([`LEDGER_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Workload label.
    pub workload: String,
    /// System label.
    pub system: String,
    /// Scale preset label.
    pub preset: String,
    /// Worker count the harness ran with.
    pub jobs: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Package version string.
    pub version: String,
    /// FNV-1a digest of the run configuration.
    pub config_digest: u64,
    /// FNV-1a digest of the `RunResult`.
    pub result_digest: u64,
    /// Host wall time in ns (0 in determinism fixtures).
    pub wall_ns: u64,
    /// End-to-end IPC.
    pub ipc: f64,
    /// Average memory access time in ns.
    pub amat_ns: f64,
    /// Pages migrated over the whole run.
    pub pages_migrated: u64,
    /// Pages migrated into the CXL pool.
    pub pages_to_pool: u64,
    /// Phase barriers the monitors evaluated.
    pub monitor_checks: u64,
    /// Monitor violations over the run.
    pub monitor_violations: u64,
    /// All-class, all-socket latency summary.
    pub overall: ClassSummary,
    /// Per-class summaries, sorted by label.
    pub classes: Vec<ClassSummary>,
    /// Merged substrate counters.
    pub counters: BTreeMap<String, u64>,
    /// Top profiler sites, sorted by label.
    pub top_sites: Vec<SiteSummary>,
}

impl RunRecord {
    /// Builds a record from a run's identity, its observability report,
    /// and the CLI-supplied extras.
    pub fn from_observed(
        meta: &RunMeta,
        report: &ObsReport,
        monitor: &MonitorReport,
        extras: &RunExtras,
    ) -> Self {
        let merged = report.metrics.merged();
        let labels = report.metrics.class_labels();
        let mut overall_hist = LatencyHistogram::default();
        let mut class_hists = [LatencyHistogram::default(); crate::NUM_CLASSES];
        for socket in &merged.sockets {
            for (i, hist) in socket.class_hist.iter().enumerate() {
                class_hists[i].merge(hist);
                overall_hist.merge(hist);
            }
        }
        let mut classes: Vec<ClassSummary> = labels
            .iter()
            .zip(class_hists.iter())
            .map(|(label, hist)| ClassSummary::from_hist(label, hist))
            .collect();
        classes.sort_by(|a, b| a.label.cmp(&b.label));
        let mut top_sites = extras.top_sites.clone();
        top_sites.sort_by(|a, b| a.label.cmp(&b.label));
        RunRecord {
            schema_version: LEDGER_SCHEMA_VERSION,
            workload: meta.workload.clone(),
            system: meta.system.clone(),
            preset: meta.preset.clone(),
            jobs: meta.jobs,
            seed: meta.seed,
            version: meta.version.clone(),
            config_digest: extras.config_digest,
            result_digest: extras.result_digest,
            wall_ns: extras.wall_ns,
            ipc: extras.ipc,
            amat_ns: extras.amat_ns,
            pages_migrated: extras.pages_migrated,
            pages_to_pool: extras.pages_to_pool,
            monitor_checks: monitor.checks,
            monitor_violations: monitor.violations.len() as u64,
            overall: ClassSummary::from_hist("overall", &overall_hist),
            classes,
            counters: merged.counters,
            top_sites,
        }
    }

    /// Renders the record as one flat JSON line (no trailing newline).
    /// Field order is fixed, so identical records render byte-identically.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        push_num(&mut out, "schema_version", self.schema_version as f64);
        push_str(&mut out, "workload", &self.workload);
        push_str(&mut out, "system", &self.system);
        push_str(&mut out, "preset", &self.preset);
        push_num(&mut out, "jobs", self.jobs as f64);
        push_num(&mut out, "seed", self.seed as f64);
        push_str(&mut out, "version", &self.version);
        push_str(&mut out, "config_digest", &digest_hex(self.config_digest));
        push_str(&mut out, "result_digest", &digest_hex(self.result_digest));
        push_num(&mut out, "wall_ns", self.wall_ns as f64);
        push_num(&mut out, "ipc", self.ipc);
        push_num(&mut out, "amat_ns", self.amat_ns);
        push_num(&mut out, "pages_migrated", self.pages_migrated as f64);
        push_num(&mut out, "pages_to_pool", self.pages_to_pool as f64);
        push_num(&mut out, "monitor.checks", self.monitor_checks as f64);
        push_num(
            &mut out,
            "monitor.violations",
            self.monitor_violations as f64,
        );
        push_summary(&mut out, "overall", &self.overall);
        for class in &self.classes {
            push_summary(&mut out, &format!("class.{}", class.label), class);
        }
        for (key, value) in &self.counters {
            push_num(&mut out, &format!("counter.{key}"), *value as f64);
        }
        for site in &self.top_sites {
            push_num(&mut out, &format!("site.{}.ns", site.label), site.ns as f64);
            push_num(
                &mut out,
                &format!("site.{}.calls", site.label),
                site.calls as f64,
            );
        }
        out.push('}');
        out
    }

    /// Parses a line written by [`to_json_line`]. `None` on syntax
    /// errors, missing identity fields, or a schema version this build
    /// does not understand.
    pub fn from_json_line(line: &str) -> Option<Self> {
        let map = parse_flat_object(line)?;
        let num = |key: &str| -> Option<f64> { map.get(key)?.as_num() };
        let int = |key: &str| -> Option<u64> { num(key).map(to_u64) };
        let text = |key: &str| -> Option<String> { Some(map.get(key)?.as_str()?.to_string()) };
        if int("schema_version")? != LEDGER_SCHEMA_VERSION {
            return None;
        }
        let mut classes: BTreeMap<String, ClassSummary> = BTreeMap::new();
        let mut counters = BTreeMap::new();
        let mut sites: BTreeMap<String, SiteSummary> = BTreeMap::new();
        for (key, value) in &map {
            if let Some(rest) = key.strip_prefix("class.") {
                let (label, field) = rest.rsplit_once('.')?;
                let entry = classes
                    .entry(label.to_string())
                    .or_insert_with(|| ClassSummary {
                        label: label.to_string(),
                        ..ClassSummary::default()
                    });
                apply_summary_field(entry, field, value.as_num()?)?;
            } else if let Some(rest) = key.strip_prefix("counter.") {
                counters.insert(rest.to_string(), to_u64(value.as_num()?));
            } else if let Some(rest) = key.strip_prefix("site.") {
                let (label, field) = rest.rsplit_once('.')?;
                let entry = sites.entry(label.to_string()).or_insert(SiteSummary {
                    label: label.to_string(),
                    ns: 0,
                    calls: 0,
                });
                match field {
                    "ns" => entry.ns = to_u64(value.as_num()?),
                    "calls" => entry.calls = to_u64(value.as_num()?),
                    _ => return None,
                }
            }
        }
        let mut overall = ClassSummary {
            label: "overall".to_string(),
            count: int("overall.count")?,
            ..ClassSummary::default()
        };
        overall.p50_ns = num("overall.p50_ns").unwrap_or(0.0);
        overall.p95_ns = num("overall.p95_ns").unwrap_or(0.0);
        overall.p99_ns = num("overall.p99_ns").unwrap_or(0.0);
        Some(RunRecord {
            schema_version: LEDGER_SCHEMA_VERSION,
            workload: text("workload")?,
            system: text("system")?,
            preset: text("preset")?,
            jobs: int("jobs")?,
            seed: int("seed")?,
            version: text("version")?,
            config_digest: parse_digest_hex(map.get("config_digest")?.as_str()?)?,
            result_digest: parse_digest_hex(map.get("result_digest")?.as_str()?)?,
            wall_ns: int("wall_ns")?,
            ipc: num("ipc")?,
            amat_ns: num("amat_ns")?,
            pages_migrated: int("pages_migrated")?,
            pages_to_pool: int("pages_to_pool")?,
            monitor_checks: int("monitor.checks")?,
            monitor_violations: int("monitor.violations")?,
            overall,
            classes: classes.into_values().collect(),
            counters,
            top_sites: sites.into_values().collect(),
        })
    }

    /// Appends the record to `dir/runs.jsonl`, creating the directory if
    /// needed. Returns the ledger file path.
    pub fn append_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(LEDGER_FILE);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        writeln!(file, "{}", self.to_json_line())?;
        Ok(path)
    }
}

/// `f64` → `u64` for JSON counts: clamps negatives and non-finite
/// values to 0 (ledger counts are always small non-negative integers).
fn to_u64(v: f64) -> u64 {
    if v.is_finite() && v >= 0.0 {
        v as u64
    } else {
        0
    }
}

fn apply_summary_field(c: &mut ClassSummary, field: &str, value: f64) -> Option<()> {
    match field {
        "count" => c.count = to_u64(value),
        "p50_ns" => c.p50_ns = value,
        "p95_ns" => c.p95_ns = value,
        "p99_ns" => c.p99_ns = value,
        _ => return None,
    }
    Some(())
}

fn push_key(out: &mut String, key: &str) {
    if out.len() > 1 {
        out.push(',');
    }
    out.push('"');
    out.push_str(&json_escape(key));
    out.push_str("\":");
}

fn push_str(out: &mut String, key: &str, value: &str) {
    push_key(out, key);
    out.push('"');
    out.push_str(&json_escape(value));
    out.push('"');
}

fn push_num(out: &mut String, key: &str, value: f64) {
    push_key(out, key);
    if value.is_finite() {
        // `{}` is Rust's shortest-roundtrip rendering: parsing the text
        // back yields the identical bits, which is what makes
        // to_json_line(from_json_line(x)) == x byte-for-byte.
        let _ = std::fmt::Write::write_fmt(out, format_args!("{value}"));
    } else {
        out.push('0');
    }
}

fn push_summary(out: &mut String, prefix: &str, c: &ClassSummary) {
    push_num(out, &format!("{prefix}.count"), c.count as f64);
    if c.count > 0 {
        push_num(out, &format!("{prefix}.p50_ns"), c.p50_ns);
        push_num(out, &format!("{prefix}.p95_ns"), c.p95_ns);
        push_num(out, &format!("{prefix}.p99_ns"), c.p99_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        RunRecord {
            schema_version: LEDGER_SCHEMA_VERSION,
            workload: "BFS".to_string(),
            system: "StarNUMA (T16)".to_string(),
            preset: "SC1".to_string(),
            jobs: 4,
            seed: 42,
            version: "0.1.0".to_string(),
            config_digest: 0xdead_beef_0123_4567,
            result_digest: u64::MAX,
            wall_ns: 1_234_567,
            ipc: 1.25,
            amat_ns: 97.5,
            pages_migrated: 100,
            pages_to_pool: 60,
            monitor_checks: 2,
            monitor_violations: 0,
            overall: ClassSummary {
                label: "overall".to_string(),
                count: 3,
                p50_ns: 90.0,
                p95_ns: 180.5,
                p99_ns: 360.0,
            },
            classes: vec![
                ClassSummary {
                    label: "local".to_string(),
                    count: 3,
                    p50_ns: 90.0,
                    p95_ns: 180.5,
                    p99_ns: 360.0,
                },
                ClassSummary {
                    label: "pool".to_string(),
                    count: 0,
                    ..ClassSummary::default()
                },
            ],
            counters: [("dir.transactions".to_string(), 7u64)].into(),
            top_sites: vec![SiteSummary {
                label: "timing".to_string(),
                ns: 555,
                calls: 2,
            }],
        }
    }

    #[test]
    fn json_line_round_trips_byte_identically() {
        let rec = sample();
        let line = rec.to_json_line();
        let parsed = RunRecord::from_json_line(&line).expect("line parses");
        assert_eq!(parsed, rec);
        assert_eq!(parsed.to_json_line(), line);
    }

    #[test]
    fn digests_survive_above_f64_precision() {
        let rec = sample();
        let parsed = RunRecord::from_json_line(&rec.to_json_line()).unwrap();
        assert_eq!(parsed.result_digest, u64::MAX);
        assert_eq!(parsed.config_digest, 0xdead_beef_0123_4567);
    }

    #[test]
    fn empty_class_omits_percentile_keys() {
        let line = sample().to_json_line();
        assert!(line.contains("\"class.pool.count\":0"));
        assert!(!line.contains("class.pool.p50_ns"));
        assert!(line.contains("\"class.local.p99_ns\":360"));
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let line =
            sample()
                .to_json_line()
                .replacen("\"schema_version\":1", "\"schema_version\":99", 1);
        assert!(RunRecord::from_json_line(&line).is_none());
    }

    #[test]
    fn append_creates_directory_and_accumulates_lines() {
        let dir = std::env::temp_dir().join(format!("starnuma-ledger-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = sample();
        let path = rec.append_to(&dir).expect("append");
        rec.append_to(&dir).expect("append again");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert_eq!(RunRecord::from_json_line(line).as_ref(), Some(&rec));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
