//! Exporters: JSONL trace journal, metrics JSON, and Chrome `trace_event`
//! output — plus the tiny flat-JSON parser `starnuma inspect` reads traces
//! back with.
//!
//! All rendering is hand-rolled (this crate takes no dependencies) and
//! deterministic: counters come from `BTreeMap`s, floats use Rust's
//! shortest-roundtrip formatting, and nothing consults the host clock.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::journal::{Event, FieldValue};
use crate::metrics::{LatencyHistogram, MetricsFrame, MetricsRegistry};
use crate::sink::ObsReport;

/// Self-describing run identity stamped into every export.
#[derive(Clone, PartialEq, Debug)]
pub struct RunMeta {
    /// Workload label (e.g. `bc-web`).
    pub workload: String,
    /// System label (e.g. `starnuma-dyn`).
    pub system: String,
    /// Scale preset label (`SC1`/`SC2`/`SC3`).
    pub preset: String,
    /// Worker count the harness ran with.
    pub jobs: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Package version string (no git-describe, so builds stay
    /// reproducible).
    pub version: String,
}

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn num(v: f64, out: &mut String) {
    debug_assert!(v.is_finite(), "non-finite value in obs export");
    let v = if v.is_finite() { v } else { 0.0 };
    if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn field(key: &str, value: &FieldValue, out: &mut String) {
    esc(key, out);
    out.push(':');
    match value {
        FieldValue::U64(u) => {
            let _ = write!(out, "{u}");
        }
        FieldValue::F64(f) => num(*f, out),
        FieldValue::Str(s) => esc(s, out),
    }
}

fn meta_fields(meta: &RunMeta, out: &mut String) {
    out.push_str("\"workload\":");
    esc(&meta.workload, out);
    out.push_str(",\"system\":");
    esc(&meta.system, out);
    out.push_str(",\"preset\":");
    esc(&meta.preset, out);
    let _ = write!(out, ",\"jobs\":{},\"seed\":{}", meta.jobs, meta.seed);
    out.push_str(",\"version\":");
    esc(&meta.version, out);
}

fn event_line(e: &Event, out: &mut String) {
    let _ = write!(
        out,
        "{{\"type\":\"event\",\"seq\":{},\"phase\":{},\"level\":\"{}\",\"cat\":\"{}\",\"name\":",
        e.seq,
        e.phase,
        e.level.label(),
        e.category.label()
    );
    esc(e.name, out);
    for (k, v) in &e.fields {
        out.push(',');
        field(k, v, out);
    }
    out.push_str("}\n");
}

fn hist_line(socket: usize, label: &str, h: &LatencyHistogram, out: &mut String) {
    let _ = write!(out, "{{\"type\":\"hist\",\"socket\":{socket},\"class\":");
    esc(label, out);
    let _ = write!(out, ",\"count\":{},\"mean_ns\":", h.count());
    num(h.mean_ns(), out);
    out.push_str(",\"buckets\":[");
    for (i, b) in h.buckets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    out.push_str("]}\n");
}

/// Renders a run's journal and merged metrics as self-describing JSONL:
/// one `meta` line, one `event` line per retained event, one `hist` line
/// per non-empty (socket, class) histogram of the merged run, and one
/// `counters` line. This is the format `starnuma inspect` consumes.
pub fn trace_jsonl(meta: &RunMeta, report: &ObsReport) -> String {
    let mut out = String::new();
    out.push_str("{\"type\":\"meta\",");
    meta_fields(meta, &mut out);
    let _ = writeln!(
        out,
        ",\"events\":{},\"dropped_events\":{}}}",
        report.events.len(),
        report.dropped_events
    );
    for e in &report.events {
        event_line(e, &mut out);
    }
    let merged = report.metrics.merged();
    let labels = report.metrics.class_labels();
    for (socket, sm) in merged.sockets.iter().enumerate() {
        for (class, h) in sm.class_hist.iter().enumerate() {
            if h.count() > 0 {
                hist_line(socket, labels[class], h, &mut out);
            }
        }
    }
    out.push_str("{\"type\":\"counters\"");
    for (k, v) in &merged.counters {
        out.push(',');
        esc(k, &mut out);
        let _ = write!(out, ":{v}");
    }
    out.push_str("}\n");
    out
}

fn frame_json(
    frame: &MetricsFrame,
    labels: [&'static str; crate::metrics::NUM_CLASSES],
    out: &mut String,
) {
    let _ = write!(out, "{{\"phase\":{},\"sockets\":[", frame.phase);
    for (si, sm) in frame.sockets.iter().enumerate() {
        if si > 0 {
            out.push(',');
        }
        out.push('{');
        let mut first = true;
        for (ci, h) in sm.class_hist.iter().enumerate() {
            if h.count() == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            esc(labels[ci], out);
            let _ = write!(out, ":{{\"count\":{},\"mean_ns\":", h.count());
            num(h.mean_ns(), out);
            out.push_str(",\"buckets\":[");
            for (i, b) in h.buckets().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push('}');
    }
    out.push_str("],\"counters\":{");
    for (i, (k, v)) in frame.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        esc(k, out);
        let _ = write!(out, ":{v}");
    }
    out.push_str("}}");
}

/// Renders the full metrics registry (per-phase frames plus the merged
/// whole-run frame) as one JSON object.
pub fn metrics_json(meta: &RunMeta, registry: &MetricsRegistry) -> String {
    let labels = registry.class_labels();
    let mut out = String::new();
    out.push_str("{\"meta\":{");
    meta_fields(meta, &mut out);
    out.push_str("},\"phases\":[");
    for (i, frame) in registry.frames().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        frame_json(frame, labels, &mut out);
    }
    out.push_str("],\"merged\":");
    frame_json(&registry.merged(), labels, &mut out);
    out.push('}');
    out
}

/// Renders the event journal in Chrome `trace_event` JSON (openable in
/// `about://tracing` / Perfetto). Events become instant records whose
/// timestamp is the monotonic sequence number (the model has no wall
/// clock) and whose `tid` is the phase, so each phase renders as a track.
pub fn chrome_trace_json(meta: &RunMeta, report: &ObsReport) -> String {
    // Pair each phase's `phase_checkpoint` begin/end edge events into one
    // duration (`"ph":"X"`) span so the phase's step-C work renders as a
    // bar instead of two dots. Events without an `edge` field (including
    // traces recorded before the edge fields existed) stay instants.
    fn edge_of(e: &crate::Event) -> Option<&str> {
        if e.name != "phase_checkpoint" {
            return None;
        }
        e.fields.iter().find_map(|(k, v)| match v {
            crate::FieldValue::Str(s) if *k == "edge" => Some(s.as_str()),
            _ => None,
        })
    }
    let mut spans: std::collections::BTreeMap<u32, (Option<usize>, Option<u64>)> =
        std::collections::BTreeMap::new();
    for (i, e) in report.events.iter().enumerate() {
        match edge_of(e) {
            Some("begin") => spans.entry(e.phase).or_default().0 = Some(i),
            Some("end") => spans.entry(e.phase).or_default().1 = Some(e.seq),
            _ => {}
        }
    }
    // Only fully-paired phases collapse into spans.
    spans.retain(|_, (b, e)| b.is_some() && e.is_some());

    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for e in &report.events {
        if edge_of(e).is_some() && spans.contains_key(&e.phase) {
            continue; // folded into the duration span below
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":");
        esc(e.name, &mut out);
        let _ = write!(
            out,
            ",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{{",
            e.category.label(),
            e.seq,
            e.phase
        );
        out.push_str("\"level\":");
        esc(e.level.label(), &mut out);
        for (k, v) in &e.fields {
            out.push(',');
            field(k, v, &mut out);
        }
        out.push_str("}}");
    }
    for (phase, (begin_idx, end_seq)) in &spans {
        let (Some(bi), Some(end)) = (begin_idx, end_seq) else {
            continue;
        };
        let begin = &report.events[*bi];
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"phase_checkpoint\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{phase},\"args\":{{",
            begin.category.label(),
            begin.seq,
            end.saturating_sub(begin.seq)
        );
        out.push_str("\"level\":");
        esc(begin.level.label(), &mut out);
        for (k, v) in &begin.fields {
            if *k == "edge" {
                continue;
            }
            out.push(',');
            field(k, v, &mut out);
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{");
    meta_fields(meta, &mut out);
    out.push_str("}}");
    out
}

/// A value parsed back from a flat JSON object line.
#[derive(Clone, PartialEq, Debug)]
pub enum JsonValue {
    /// A number (integers included).
    Num(f64),
    /// A string.
    Str(String),
    /// An array of numbers (histogram buckets).
    Arr(Vec<f64>),
}

impl JsonValue {
    /// The value as f64, if numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == b {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut s = String::new();
        loop {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            match b {
                b'"' => return Some(s),
                b'\\' => {
                    let e = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        // Never emitted by our escaper (control chars go out
                        // as \u00XX), but legal JSON: traces rewritten by
                        // external tools must still read back.
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            s.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                b => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if b < 0x80 {
                        s.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                            end += 1;
                        }
                        s.push_str(std::str::from_utf8(&self.bytes[start..end]).ok()?);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Option<f64> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        if start == self.pos {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }
}

/// Parses one flat JSON object line (string keys; number, string, or
/// number-array values — exactly what the exporters above emit). Nested
/// objects and non-numeric arrays are rejected. Returns `None` on any
/// syntax error.
pub fn parse_flat_object(line: &str) -> Option<BTreeMap<String, JsonValue>> {
    let mut c = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    if !c.eat(b'{') {
        return None;
    }
    let mut map = BTreeMap::new();
    if c.eat(b'}') {
        return Some(map);
    }
    loop {
        let key = c.string()?;
        if !c.eat(b':') {
            return None;
        }
        let value = match c.peek()? {
            b'"' => JsonValue::Str(c.string()?),
            b'[' => {
                c.eat(b'[');
                let mut arr = Vec::new();
                if !c.eat(b']') {
                    loop {
                        arr.push(c.number()?);
                        if c.eat(b']') {
                            break;
                        }
                        if !c.eat(b',') {
                            return None;
                        }
                    }
                }
                JsonValue::Arr(arr)
            }
            _ => JsonValue::Num(c.number()?),
        };
        map.insert(key, value);
        if c.eat(b'}') {
            break;
        }
        if !c.eat(b',') {
            return None;
        }
    }
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return None;
    }
    Some(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{EventCategory, EventLevel};
    use crate::metrics::NUM_CLASSES;
    use crate::sink::ObsSink;

    const LABELS: [&str; NUM_CLASSES] = ["local", "1hop", "2hop", "pool", "bts", "btp"];

    fn meta() -> RunMeta {
        RunMeta {
            workload: "bc-web".to_string(),
            system: "starnuma-dyn".to_string(),
            preset: "SC1".to_string(),
            jobs: 4,
            seed: 42,
            version: "0.1.0".to_string(),
        }
    }

    fn sample_report() -> ObsReport {
        let mut sink = ObsSink::enabled(2, LABELS, 64);
        sink.begin_phase(0);
        sink.record_access(0, 1, 180.0);
        sink.record_access(1, 3, 400.0);
        sink.counter("dir.transactions", 12);
        sink.event(
            EventLevel::Info,
            EventCategory::Migration,
            "region_migrated",
            || {
                vec![
                    ("region", FieldValue::U64(7)),
                    ("dest", FieldValue::Str("pool".to_string())),
                    ("frac", FieldValue::F64(0.25)),
                ]
            },
        );
        sink.end_phase();
        sink.finish()
    }

    #[test]
    fn trace_jsonl_round_trips_through_the_parser() {
        let text = trace_jsonl(&meta(), &sample_report());
        let lines: Vec<&str> = text.lines().collect();
        // meta + 1 event + 2 hists + counters
        assert_eq!(lines.len(), 5);
        for line in &lines {
            let obj = parse_flat_object(line).expect("every line parses");
            assert!(obj.contains_key("type"));
        }
        let meta_obj = parse_flat_object(lines[0]).unwrap();
        assert_eq!(meta_obj["type"].as_str(), Some("meta"));
        assert_eq!(meta_obj["preset"].as_str(), Some("SC1"));
        assert_eq!(meta_obj["jobs"].as_num(), Some(4.0));
        let ev = parse_flat_object(lines[1]).unwrap();
        assert_eq!(ev["name"].as_str(), Some("region_migrated"));
        assert_eq!(ev["dest"].as_str(), Some("pool"));
        assert_eq!(ev["frac"].as_num(), Some(0.25));
        let hist = parse_flat_object(lines[2]).unwrap();
        assert_eq!(hist["class"].as_str(), Some("1hop"));
        match &hist["buckets"] {
            JsonValue::Arr(b) => {
                assert_eq!(b.len(), crate::metrics::HIST_BUCKETS);
                assert_eq!(b.iter().sum::<f64>(), 1.0);
            }
            other => panic!("buckets not an array: {other:?}"),
        }
        let counters = parse_flat_object(lines[4]).unwrap();
        assert_eq!(counters["dir.transactions"].as_num(), Some(12.0));
    }

    #[test]
    fn metrics_json_contains_phases_and_merged() {
        let text = metrics_json(&meta(), &sample_report().metrics);
        assert!(text.starts_with("{\"meta\":{"));
        assert!(text.contains("\"phases\":["));
        assert!(text.contains("\"merged\":"));
        assert!(text.contains("\"1hop\":{\"count\":1"));
        assert!(text.contains("\"dir.transactions\":12"));
    }

    #[test]
    fn chrome_trace_has_trace_event_shape() {
        let text = chrome_trace_json(&meta(), &sample_report());
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"ts\":0"));
        assert!(text.contains("\"tid\":0"));
        assert!(text.contains("\"name\":\"region_migrated\""));
        assert!(text.ends_with("}}"));
    }

    #[test]
    fn chrome_trace_pairs_checkpoint_edges_into_duration_spans() {
        let mut sink = ObsSink::enabled(2, LABELS, 64);
        sink.begin_phase(0);
        sink.event(
            EventLevel::Info,
            EventCategory::Checkpoint,
            "phase_checkpoint",
            || {
                vec![
                    ("edge", FieldValue::Str("begin".to_string())),
                    ("planned_moves", FieldValue::U64(3)),
                ]
            },
        );
        sink.event(EventLevel::Info, EventCategory::Migration, "mid", Vec::new);
        sink.event(
            EventLevel::Info,
            EventCategory::Checkpoint,
            "phase_checkpoint",
            || vec![("edge", FieldValue::Str("end".to_string()))],
        );
        sink.end_phase();
        let text = chrome_trace_json(&meta(), &sink.finish());
        // The pair collapses into one duration event spanning begin → end.
        assert!(text.contains("\"ph\":\"X\""), "{text}");
        assert!(text.contains("\"dur\":2"), "{text}");
        assert!(text.contains("\"planned_moves\":3"), "{text}");
        // The edge instants are folded away; the mid event stays an instant.
        assert_eq!(text.matches("phase_checkpoint").count(), 1, "{text}");
        assert!(text.contains("\"name\":\"mid\""));
        assert!(text.contains("\"ph\":\"i\""));
        // The synthetic `edge` field does not leak into the span's args.
        assert!(!text.contains("\"edge\""), "{text}");
    }

    #[test]
    fn escaping_survives_round_trip() {
        let mut out = String::new();
        esc("a\"b\\c\nd\te\u{1}", &mut out);
        let line = format!("{{\"k\":{out}}}");
        let obj = parse_flat_object(&line).unwrap();
        assert_eq!(obj["k"].as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    /// Regression (PR 5): every control char below 0x20 must leave the
    /// escaper as `\u00XX` (not raw bytes, which would be invalid JSON and
    /// break `starnuma inspect` and Perfetto import) and round-trip through
    /// the parser — exercised end to end with a backspace-bearing workload
    /// name in a real trace.
    #[test]
    fn control_chars_in_meta_strings_round_trip() {
        for c in 0u32..0x20 {
            let Some(ch) = char::from_u32(c) else {
                continue;
            };
            let raw = format!("x{ch}y");
            let mut out = String::new();
            esc(&raw, &mut out);
            // The rendered escape sequence must itself be control-char free.
            assert!(
                !out.chars().any(|c| (c as u32) < 0x20),
                "raw control char {c:#x} leaked into JSON: {out:?}"
            );
            let obj = parse_flat_object(&format!("{{\"k\":{out}}}")).expect("line parses");
            assert_eq!(obj["k"].as_str(), Some(raw.as_str()), "char {c:#x}");
        }

        // End to end: a workload name with an embedded backspace.
        let mut m = meta();
        m.workload = "bc\u{8}web".to_string();
        let text = trace_jsonl(&m, &sample_report());
        let meta_obj = parse_flat_object(text.lines().next().expect("meta line"))
            .expect("meta line with control char parses");
        assert_eq!(meta_obj["workload"].as_str(), Some("bc\u{8}web"));
        // Standard short escapes from external tools read back too.
        let obj = parse_flat_object("{\"k\":\"a\\bz\\ff\"}").expect("short escapes");
        assert_eq!(obj["k"].as_str(), Some("a\u{8}z\u{c}f"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_flat_object("not json").is_none());
        assert!(parse_flat_object("{\"a\":}").is_none());
        assert!(parse_flat_object("{\"a\":1} trailing").is_none());
        assert!(parse_flat_object("{\"a\":[1,]}").is_none());
        assert_eq!(parse_flat_object("{}").map(|m| m.len()), Some(0));
        assert_eq!(parse_flat_object("{ }").map(|m| m.len()), Some(0));
    }

    #[test]
    fn numbers_render_integers_without_fraction() {
        let mut s = String::new();
        num(3.0, &mut s);
        assert_eq!(s, "3");
        s.clear();
        num(0.25, &mut s);
        assert_eq!(s, "0.25");
    }
}
