//! Observability substrate for the StarNUMA reproduction.
//!
//! The paper's analysis (§II-B vagabond characterization, Fig. 13 sharing
//! breakdowns, Algorithm 1 threshold behavior) is *distributional*: which
//! pages migrated, when, why, and what latency each access class actually
//! saw. End-of-run aggregates cannot answer those questions, so this crate
//! provides the layer the rest of the stack records into:
//!
//! * a **metrics registry** ([`MetricsRegistry`]): monotonic counters plus
//!   fixed-bucket log2 latency histograms ([`LatencyHistogram`]), keyed by
//!   socket, phase, and access class. Hot paths record through an
//!   [`ObsSink`] handle whose disabled form costs one branch per record;
//!   per-phase frames are merged deterministically at phase barriers, so
//!   `--jobs N` output is bit-identical to a sequential run.
//! * a **structured event journal** ([`EventJournal`]): ring-buffered,
//!   severity- and category-tagged records for migration decisions,
//!   threshold crossings, pool-capacity pressure, and checkpoint events.
//! * **exporters** ([`trace_jsonl`], [`metrics_json`],
//!   [`chrome_trace_json`]): a self-describing JSONL journal, a metrics
//!   JSON document, and the Chrome `trace_event` format so a run opens in
//!   `about://tracing` / Perfetto — plus the tiny flat-JSON parser the
//!   `starnuma inspect` subcommand reads traces back with.
//!
//! Everything is deterministic: events are ordered by a monotonic sequence
//! number (never the host clock), counter maps are `BTreeMap`s, and every
//! run owns its sink, so worker scheduling cannot reorder anything.
//!
//! # Examples
//!
//! ```
//! use starnuma_obs::{EventCategory, EventLevel, FieldValue, ObsSink};
//!
//! let mut sink = ObsSink::enabled(2, ["a", "b", "c", "d", "e", "f"], 1024);
//! sink.begin_phase(0);
//! sink.record_access(0, 1, 180.0);
//! sink.event(EventLevel::Info, EventCategory::Checkpoint, "phase_checkpoint", || {
//!     vec![("planned_moves", FieldValue::U64(0))]
//! });
//! sink.end_phase();
//! let report = sink.finish();
//! assert_eq!(report.events.len(), 1);
//! assert_eq!(report.metrics.merged().sockets[0].class_hist[1].count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod journal;
mod ledger;
mod metrics;
mod monitor;
mod sink;

pub use export::{
    chrome_trace_json, metrics_json, parse_flat_object, trace_jsonl, JsonValue, RunMeta,
};
pub use journal::{Event, EventCategory, EventJournal, EventLevel, FieldValue};
pub use ledger::{
    ClassSummary, RunExtras, RunRecord, SiteSummary, LEDGER_FILE, LEDGER_SCHEMA_VERSION,
};
pub use metrics::{
    percentile_from_counts, try_percentile_from_counts, LatencyHistogram, MetricsFrame,
    MetricsRegistry, Observe, SocketMetrics, HIST_BUCKETS, NUM_CLASSES,
};
pub use monitor::{MonitorReport, MonitorSet, MonitorViolation, PhaseCheck, MONITOR_NAMES};
pub use sink::{ObsReport, ObsSink, DEFAULT_JOURNAL_CAPACITY};
