//! The structured event journal: ring-buffered, severity- and
//! category-tagged records ordered by a monotonic sequence number.
//!
//! Events never carry wall-clock timestamps — ordering comes from the
//! sequence counter, which depends only on simulation progress, so two
//! runs of the same configuration produce bit-identical journals no
//! matter how the job pool schedules them.

use std::collections::VecDeque;

/// Event severity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventLevel {
    /// Fine-grained detail (per-region decisions).
    Debug,
    /// Normal operation milestones (checkpoints, migrations).
    Info,
    /// Model stress worth surfacing (budget exhausted, pool full).
    Warn,
}

impl EventLevel {
    /// Short lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            EventLevel::Debug => "debug",
            EventLevel::Info => "info",
            EventLevel::Warn => "warn",
        }
    }
}

/// What subsystem or concern an event belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventCategory {
    /// A migration decision (region moved, destination chosen).
    Migration,
    /// Threshold adaptation and budget crossings (Algorithm 1 state).
    Threshold,
    /// CXL pool capacity pressure (evictions, full-pool skips).
    PoolPressure,
    /// Phase-barrier checkpoints (plan size, pool occupancy).
    Checkpoint,
    /// Harness progress (sweep/compare bookkeeping).
    Progress,
    /// Online invariant monitors (phase-barrier violation records).
    Monitor,
}

impl EventCategory {
    /// Short lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            EventCategory::Migration => "migration",
            EventCategory::Threshold => "threshold",
            EventCategory::PoolPressure => "pool_pressure",
            EventCategory::Checkpoint => "checkpoint",
            EventCategory::Progress => "progress",
            EventCategory::Monitor => "monitor",
        }
    }
}

/// A typed event payload value.
#[derive(Clone, PartialEq, Debug)]
pub enum FieldValue {
    /// An unsigned integer field (counts, page numbers, region ids).
    U64(u64),
    /// A floating-point field (latencies, fractions).
    F64(f64),
    /// A string field (labels, destinations).
    Str(String),
}

/// One journal record.
#[derive(Clone, PartialEq, Debug)]
pub struct Event {
    /// Monotonic sequence number, unique within a run.
    pub seq: u64,
    /// The phase the event was recorded in.
    pub phase: u32,
    /// Severity.
    pub level: EventLevel,
    /// Category.
    pub category: EventCategory,
    /// Event name (a static identifier like `region_migrated`).
    pub name: &'static str,
    /// Ordered payload fields.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A bounded ring buffer of [`Event`]s.
///
/// When full, the oldest event is dropped and the drop is counted, so the
/// journal keeps the *tail* of a long run and exports can state exactly
/// how much was shed.
#[derive(Clone, PartialEq, Debug)]
pub struct EventJournal {
    capacity: usize,
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

impl EventJournal {
    /// An empty journal holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        EventJournal {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends an event, assigning it the next sequence number; drops the
    /// oldest record if the ring is full.
    pub fn push(
        &mut self,
        phase: u32,
        level: EventLevel,
        category: EventCategory,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            seq: self.next_seq,
            phase,
            level,
            category,
            name,
            fields,
        });
        self.next_seq += 1;
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// How many events were recorded in total (including dropped ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// How many events the ring shed.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the journal into its retained events and drop count.
    pub fn into_parts(self) -> (Vec<Event>, u64) {
        (self.events.into_iter().collect(), self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_n(j: &mut EventJournal, n: u64) {
        for i in 0..n {
            j.push(
                0,
                EventLevel::Info,
                EventCategory::Checkpoint,
                "e",
                vec![("i", FieldValue::U64(i))],
            );
        }
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let mut j = EventJournal::new(16);
        push_n(&mut j, 3);
        let seqs: Vec<u64> = j.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(j.recorded(), 3);
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut j = EventJournal::new(2);
        push_n(&mut j, 5);
        let (events, dropped) = j.into_parts();
        assert_eq!(dropped, 3);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut j = EventJournal::new(0);
        push_n(&mut j, 2);
        assert_eq!(j.events().count(), 1);
        assert_eq!(j.dropped(), 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EventLevel::Warn.label(), "warn");
        assert_eq!(EventCategory::PoolPressure.label(), "pool_pressure");
    }
}
