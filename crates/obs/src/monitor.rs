//! Online invariant monitors evaluated at phase barriers.
//!
//! The paper-invariant suite (`tests/paper_invariants.rs`) checks model
//! properties *after* a run; the monitors here promote the checkable
//! subset to live runtime checks. At every phase barrier the simulator
//! hands the sink a [`PhaseCheck`] snapshot and the [`MonitorSet`]
//! evaluates four invariants:
//!
//! | monitor             | invariant                                        |
//! |---------------------|--------------------------------------------------|
//! | `pool_occupancy`    | resident pool pages ≤ pool capacity              |
//! | `migration_limit`   | planned moves per phase ≤ `migration_limit_pages`|
//! | `histogram_total`   | frame histogram samples == recorded accesses     |
//! | `counter_monotonic` | cumulative substrate counters never decrease     |
//!
//! Evaluation is pure arithmetic over the snapshot — deterministic by
//! construction — and a healthy run produces **zero** violations, so
//! enabling monitors never perturbs observable output (the equivalence
//! gate digests stay intact). Violations are summarized here and emitted
//! as `monitor_violation` journal events by the sink.

/// Phase-barrier snapshot the simulator hands to the monitors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PhaseCheck {
    /// Phase index being sealed.
    pub phase: u32,
    /// Pages currently resident in the CXL pool.
    pub pool_pages: u64,
    /// Pool capacity in pages.
    pub pool_capacity_pages: u64,
    /// Pages the migration plan moved this phase.
    pub planned_moves: u64,
    /// Per-phase migration budget from the run config.
    pub migration_limit_pages: u64,
    /// Accesses the timing model counted this phase.
    pub memory_accesses: u64,
    /// Whether every cumulative substrate counter grew monotonically
    /// since the previous barrier.
    pub substrate_counters_monotone: bool,
}

/// One invariant breach: which monitor fired, where, and the two numbers
/// that disagreed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MonitorViolation {
    /// Monitor name (see the module table).
    pub monitor: &'static str,
    /// Phase at which the check failed.
    pub phase: u32,
    /// The observed value.
    pub observed: u64,
    /// The bound or expected value it was checked against.
    pub limit: u64,
}

/// Verdict of a run's monitors: how many barrier evaluations ran and
/// every violation they produced, in phase order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MonitorReport {
    /// Number of phase barriers evaluated.
    pub checks: u64,
    /// All violations, in evaluation order.
    pub violations: Vec<MonitorViolation>,
}

impl MonitorReport {
    /// Whether any monitor fired.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Names of the monitors a fault can be injected into, in evaluation
/// order.
pub const MONITOR_NAMES: [&str; 4] = [
    "pool_occupancy",
    "migration_limit",
    "histogram_total",
    "counter_monotonic",
];

/// The live monitor set owned by an enabled sink.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MonitorSet {
    report: MonitorReport,
    /// Test hook: a monitor name forced to fire at the next evaluation
    /// (exactly once), proving the violation path end to end.
    forced_fault: Option<&'static str>,
}

impl MonitorSet {
    /// A fresh set with no recorded checks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a one-shot injected fault: `monitor` (one of
    /// [`MONITOR_NAMES`]) fires at the next evaluation regardless of the
    /// snapshot. Unknown names are ignored.
    pub fn arm_fault(&mut self, monitor: &str) {
        self.forced_fault = MONITOR_NAMES.iter().find(|m| **m == monitor).copied();
    }

    /// Evaluates every monitor against one barrier snapshot.
    /// `recorded_accesses` is the sink-side histogram total for the frame
    /// being sealed. Returns the violations produced by *this* barrier
    /// (also accumulated into the report).
    pub fn evaluate(
        &mut self,
        check: &PhaseCheck,
        recorded_accesses: u64,
    ) -> Vec<MonitorViolation> {
        self.report.checks += 1;
        let mut fired = Vec::new();
        if check.pool_pages > check.pool_capacity_pages {
            fired.push(MonitorViolation {
                monitor: "pool_occupancy",
                phase: check.phase,
                observed: check.pool_pages,
                limit: check.pool_capacity_pages,
            });
        }
        if check.planned_moves > check.migration_limit_pages {
            fired.push(MonitorViolation {
                monitor: "migration_limit",
                phase: check.phase,
                observed: check.planned_moves,
                limit: check.migration_limit_pages,
            });
        }
        if recorded_accesses != check.memory_accesses {
            fired.push(MonitorViolation {
                monitor: "histogram_total",
                phase: check.phase,
                observed: recorded_accesses,
                limit: check.memory_accesses,
            });
        }
        if !check.substrate_counters_monotone {
            fired.push(MonitorViolation {
                monitor: "counter_monotonic",
                phase: check.phase,
                observed: check.phase.into(),
                limit: 0,
            });
        }
        if let Some(name) = self.forced_fault.take() {
            fired.push(MonitorViolation {
                monitor: name,
                phase: check.phase,
                observed: u64::MAX,
                limit: 0,
            });
        }
        self.report.violations.extend(fired.iter().cloned());
        fired
    }

    /// Consumes the set, yielding the accumulated verdict.
    pub fn into_report(self) -> MonitorReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy(phase: u32) -> PhaseCheck {
        PhaseCheck {
            phase,
            pool_pages: 10,
            pool_capacity_pages: 100,
            planned_moves: 5,
            migration_limit_pages: 8,
            memory_accesses: 1_000,
            substrate_counters_monotone: true,
        }
    }

    #[test]
    fn healthy_barriers_are_clean() {
        let mut set = MonitorSet::new();
        for phase in 0..4 {
            assert!(set.evaluate(&healthy(phase), 1_000).is_empty());
        }
        let report = set.into_report();
        assert_eq!(report.checks, 4);
        assert!(report.is_clean());
    }

    #[test]
    fn each_monitor_fires_on_its_invariant() {
        let mut set = MonitorSet::new();
        let mut c = healthy(0);
        c.pool_pages = 101;
        c.planned_moves = 9;
        c.substrate_counters_monotone = false;
        let fired = set.evaluate(&c, 999);
        let names: Vec<&str> = fired.iter().map(|v| v.monitor).collect();
        assert_eq!(names, MONITOR_NAMES);
        assert_eq!(fired[0].observed, 101);
        assert_eq!(fired[0].limit, 100);
        assert_eq!(fired[2].observed, 999);
        assert_eq!(fired[2].limit, 1_000);
        assert_eq!(set.into_report().violations.len(), 4);
    }

    #[test]
    fn injected_fault_fires_exactly_once() {
        let mut set = MonitorSet::new();
        set.arm_fault("pool_occupancy");
        assert_eq!(set.evaluate(&healthy(0), 1_000).len(), 1);
        assert!(set.evaluate(&healthy(1), 1_000).is_empty());
        let report = set.into_report();
        assert_eq!(report.checks, 2);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].monitor, "pool_occupancy");
    }

    #[test]
    fn unknown_fault_name_is_ignored() {
        let mut set = MonitorSet::new();
        set.arm_fault("no_such_monitor");
        assert!(set.evaluate(&healthy(0), 1_000).is_empty());
    }
}
