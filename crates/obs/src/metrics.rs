//! The metrics registry: monotonic counters and log2 latency histograms,
//! keyed by socket, phase, and access class.
//!
//! Recording is allocation-free on the hot path (fixed bucket arrays); the
//! only allocations happen at phase barriers, when counter maps are filled
//! and frames are pushed into the registry. Everything derives `PartialEq`
//! so determinism gates can assert two runs produced bit-identical metrics.

use std::collections::BTreeMap;

/// Number of access classes tracked per socket (the Fig. 8c order of
/// `AccessClass::ALL`; labels are supplied by the simulator at sink
/// construction so this crate stays independent of the topology model).
pub const NUM_CLASSES: usize = 6;

/// Number of log2 buckets per histogram: bucket `i ≥ 1` covers latencies in
/// `[2^(i-1), 2^i)` ns, bucket 0 holds zero. 32 buckets reach ~2 s, far
/// beyond any simulated access latency.
pub const HIST_BUCKETS: usize = 32;

/// A fixed-bucket log2 latency histogram over nanoseconds.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum_ns: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0.0,
        }
    }
}

impl LatencyHistogram {
    /// The bucket index a latency of `ns` falls into.
    pub fn bucket_of(ns: f64) -> usize {
        let v = if ns.is_finite() && ns > 0.0 {
            ns as u64
        } else {
            0
        };
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// The inclusive lower edge of bucket `i` in ns.
    pub fn bucket_floor_ns(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one latency sample.
    ///
    /// Non-finite or negative samples are clamped to 0 for the sum as well
    /// as for bucketing: a single NaN would otherwise poison `sum_ns` (and
    /// thus `mean_ns` and every merged export) permanently, and a negative
    /// sample would silently skew the mean downward while landing in
    /// bucket 0 like a zero.
    #[inline]
    pub fn record(&mut self, ns: f64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        if ns.is_finite() && ns > 0.0 {
            self.sum_ns += ns;
        }
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for i in 0..HIST_BUCKETS {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded latencies in ns.
    pub fn sum_ns(&self) -> f64 {
        self.sum_ns
    }

    /// Mean latency in ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// The `p`-th percentile latency in ns (`p` in `[0, 1]`), estimated by
    /// linear interpolation within the covering log2 bucket. 0 when empty.
    pub fn percentile_ns(&self, p: f64) -> f64 {
        let counts: Vec<f64> = self.buckets.iter().map(|&c| c as f64).collect();
        percentile_from_counts(&counts, p)
    }

    /// Median latency in ns.
    pub fn p50_ns(&self) -> f64 {
        self.percentile_ns(0.50)
    }

    /// 95th-percentile latency in ns.
    pub fn p95_ns(&self) -> f64 {
        self.percentile_ns(0.95)
    }

    /// 99th-percentile latency in ns.
    pub fn p99_ns(&self) -> f64 {
        self.percentile_ns(0.99)
    }

    /// Like [`percentile_ns`](Self::percentile_ns), but `None` for an
    /// empty histogram — distinguishing "no samples" from a true 0 ns
    /// percentile.
    pub fn try_percentile_ns(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.percentile_ns(p))
        }
    }
}

/// Percentile estimation over raw log2 bucket counts (the shape exported
/// in trace JSONL `hist` lines, so the CLI can compute percentiles from a
/// parsed trace without rebuilding a [`LatencyHistogram`]).
///
/// The rank `p * total` is located in its covering bucket and linearly
/// interpolated between the bucket's floor and ceiling — the standard
/// estimator for log2 histograms (HdrHistogram-style): exact at bucket
/// edges, at most a factor-2 bucket width off inside.
pub fn percentile_from_counts(counts: &[f64], p: f64) -> f64 {
    let total: f64 = counts.iter().copied().filter(|c| c.is_finite()).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let rank = (p.clamp(0.0, 1.0) * total).min(total);
    let mut cumulative = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        if !c.is_finite() || c <= 0.0 {
            continue;
        }
        let next = cumulative + c;
        if rank <= next {
            let floor = LatencyHistogram::bucket_floor_ns(i) as f64;
            let ceil = if i == 0 {
                0.0
            } else {
                (2 * LatencyHistogram::bucket_floor_ns(i)) as f64
            };
            let frac = ((rank - cumulative) / c).clamp(0.0, 1.0);
            return floor + (ceil - floor) * frac;
        }
        cumulative = next;
    }
    // rank == total with trailing zero buckets: the last non-empty bucket's
    // ceiling was returned above; reaching here means all buckets were
    // empty or non-finite.
    0.0
}

/// Like [`percentile_from_counts`], but `None` when the histogram holds
/// no samples — callers that render percentiles can show `-` instead of
/// a misleading `0`.
pub fn try_percentile_from_counts(counts: &[f64], p: f64) -> Option<f64> {
    let total: f64 = counts.iter().copied().filter(|c| c.is_finite()).sum();
    if total <= 0.0 {
        None
    } else {
        Some(percentile_from_counts(counts, p))
    }
}

/// Per-socket metrics: one latency histogram per access class.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SocketMetrics {
    /// Histograms in `AccessClass::ALL` order.
    pub class_hist: [LatencyHistogram; NUM_CLASSES],
}

impl Default for SocketMetrics {
    fn default() -> Self {
        SocketMetrics {
            class_hist: [LatencyHistogram::default(); NUM_CLASSES],
        }
    }
}

impl SocketMetrics {
    /// Total samples across all classes.
    pub fn total_count(&self) -> u64 {
        self.class_hist.iter().map(LatencyHistogram::count).sum()
    }

    fn merge(&mut self, other: &SocketMetrics) {
        for i in 0..NUM_CLASSES {
            self.class_hist[i].merge(&other.class_hist[i]);
        }
    }
}

/// One phase's worth of metrics: per-socket histograms plus named counters.
#[derive(Clone, PartialEq, Debug)]
pub struct MetricsFrame {
    /// The phase this frame covers.
    pub phase: u32,
    /// Per-socket histogram banks, indexed by socket.
    pub sockets: Vec<SocketMetrics>,
    /// Named monotonic counters (per-phase deltas; keys are dotted paths
    /// like `dir.transactions`). `BTreeMap` keeps export order stable.
    pub counters: BTreeMap<String, u64>,
}

impl MetricsFrame {
    /// An empty frame for `num_sockets` sockets.
    pub fn new(phase: u32, num_sockets: usize) -> Self {
        MetricsFrame {
            phase,
            sockets: vec![SocketMetrics::default(); num_sockets],
            counters: BTreeMap::new(),
        }
    }

    /// Records one memory-access latency sample. Out-of-range socket or
    /// class indices are ignored (the disabled sink has zero sockets).
    #[inline]
    pub fn record_access(&mut self, socket: usize, class: usize, ns: f64) {
        if let Some(s) = self.sockets.get_mut(socket) {
            if let Some(h) = s.class_hist.get_mut(class) {
                h.record(ns);
            }
        }
    }

    /// Adds `delta` to the named counter.
    pub fn add_counter(&mut self, key: &str, delta: u64) {
        if delta > 0 {
            *self.counters.entry(key.to_string()).or_insert(0) += delta;
        }
    }

    /// Folds another frame into this one (socket-wise histogram merge,
    /// counter addition).
    pub fn merge(&mut self, other: &MetricsFrame) {
        if self.sockets.len() < other.sockets.len() {
            self.sockets
                .resize(other.sockets.len(), SocketMetrics::default());
        }
        for (dst, src) in self.sockets.iter_mut().zip(&other.sockets) {
            dst.merge(src);
        }
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Whether this frame recorded anything at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.sockets.iter().all(|s| s.total_count() == 0)
    }
}

/// All frames of one run, pushed in phase order at phase barriers.
///
/// Each simulation run is single-threaded and owns its registry, so the
/// frame sequence depends only on the run's configuration — merging at
/// phase barriers is what makes `--jobs N` output bit-identical to
/// sequential execution.
#[derive(Clone, PartialEq, Debug)]
pub struct MetricsRegistry {
    num_sockets: usize,
    class_labels: [&'static str; NUM_CLASSES],
    frames: Vec<MetricsFrame>,
}

impl MetricsRegistry {
    /// An empty registry for `num_sockets` sockets; `class_labels` name the
    /// histogram columns in exports (the simulator passes
    /// `AccessClass::ALL` labels).
    pub fn new(num_sockets: usize, class_labels: [&'static str; NUM_CLASSES]) -> Self {
        MetricsRegistry {
            num_sockets,
            class_labels,
            frames: Vec::new(),
        }
    }

    /// Appends a completed phase frame.
    pub fn push_frame(&mut self, frame: MetricsFrame) {
        self.frames.push(frame);
    }

    /// The frames recorded so far, in phase order.
    pub fn frames(&self) -> &[MetricsFrame] {
        &self.frames
    }

    /// The access-class labels used in exports.
    pub fn class_labels(&self) -> [&'static str; NUM_CLASSES] {
        self.class_labels
    }

    /// The socket count this registry was sized for.
    pub fn num_sockets(&self) -> usize {
        self.num_sockets
    }

    /// Merges every frame into one whole-run frame (phase 0).
    pub fn merged(&self) -> MetricsFrame {
        let mut out = MetricsFrame::new(0, self.num_sockets);
        for f in &self.frames {
            out.merge(f);
        }
        out
    }
}

/// A statistics source that can contribute named counters to a frame.
///
/// The substrate crates (`mem`, `cache`, `coherence`) implement this for
/// their stats types so the simulator can pour per-phase deltas into the
/// registry at phase barriers without knowing their field layouts.
pub trait Observe {
    /// Writes this source's counters into `frame`, prefixing every key
    /// with `prefix` (e.g. `link.cxl.transfers`).
    fn observe(&self, prefix: &str, frame: &mut MetricsFrame);
}

#[cfg(test)]
mod tests {
    use super::*;

    const LABELS: [&str; NUM_CLASSES] = ["local", "1hop", "2hop", "pool", "bts", "btp"];

    /// Regression (PR 5): a NaN/-1.0/inf sample used to be added raw to
    /// `sum_ns`, permanently poisoning `mean_ns` and every merge downstream.
    /// Pathological samples must count (so the anomaly is visible in bucket
    /// 0) but contribute 0 to the sum.
    #[test]
    fn pathological_samples_do_not_poison_the_mean() {
        let mut h = LatencyHistogram::default();
        h.record(100.0);
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 100.0);
        assert_eq!(h.mean_ns(), 20.0);
        assert!(h.mean_ns().is_finite());
        // The four clamped samples are all visible in bucket 0.
        assert_eq!(h.buckets()[0], 4);

        // Merging stays finite too (a poisoned shard used to spread NaN).
        let mut other = LatencyHistogram::default();
        other.record(f64::NAN);
        h.merge(&other);
        assert!(h.sum_ns().is_finite());
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn bucket_edges_are_log2() {
        assert_eq!(LatencyHistogram::bucket_of(0.0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1.0), 1);
        assert_eq!(LatencyHistogram::bucket_of(1.9), 1);
        assert_eq!(LatencyHistogram::bucket_of(2.0), 2);
        assert_eq!(LatencyHistogram::bucket_of(3.0), 2);
        assert_eq!(LatencyHistogram::bucket_of(4.0), 3);
        assert_eq!(LatencyHistogram::bucket_of(180.0), 8);
        assert_eq!(LatencyHistogram::bucket_of(f64::INFINITY), 0);
        assert_eq!(LatencyHistogram::bucket_of(-5.0), 0);
        assert_eq!(LatencyHistogram::bucket_floor_ns(0), 0);
        assert_eq!(LatencyHistogram::bucket_floor_ns(8), 128);
    }

    #[test]
    fn histogram_records_and_merges() {
        let mut a = LatencyHistogram::default();
        a.record(80.0);
        a.record(360.0);
        let mut b = LatencyHistogram::default();
        b.record(180.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean_ns() - (80.0 + 360.0 + 180.0) / 3.0).abs() < 1e-9);
        assert_eq!(a.buckets().iter().sum::<u64>(), 3);
    }

    #[test]
    fn percentiles_on_known_distributions() {
        // 100 identical samples at 100 ns: bucket 7 covers [64, 128). Every
        // percentile interpolates inside that one bucket, so p50 < p95 <
        // p99 and all stay within the bucket's bounds.
        let mut h = LatencyHistogram::default();
        for _ in 0..100 {
            h.record(100.0);
        }
        for p in [h.p50_ns(), h.p95_ns(), h.p99_ns()] {
            assert!((64.0..=128.0).contains(&p), "degenerate percentile {p}");
        }
        assert!(h.p50_ns() < h.p95_ns() && h.p95_ns() < h.p99_ns());

        // 90 samples in [64,128) + 10 in [1024,2048): p50 sits in the low
        // bucket, p95 and p99 in the tail bucket.
        let mut h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(80.0);
        }
        for _ in 0..10 {
            h.record(1_500.0);
        }
        assert!((64.0..=128.0).contains(&h.p50_ns()), "p50 {}", h.p50_ns());
        assert!(
            (1024.0..=2048.0).contains(&h.p95_ns()),
            "p95 {}",
            h.p95_ns()
        );
        assert!(
            (1024.0..=2048.0).contains(&h.p99_ns()),
            "p99 {}",
            h.p99_ns()
        );
        assert!(h.p95_ns() < h.p99_ns());

        // Exact bucket-edge ranks: 50 samples in [64,128), 50 in [128,256);
        // p50 lands exactly on the first bucket's ceiling (128 ns).
        let mut h = LatencyHistogram::default();
        for _ in 0..50 {
            h.record(100.0);
        }
        for _ in 0..50 {
            h.record(200.0);
        }
        assert!((h.p50_ns() - 128.0).abs() < 1e-9, "p50 {}", h.p50_ns());

        // Empty histogram and degenerate inputs.
        assert_eq!(LatencyHistogram::default().p95_ns(), 0.0);
        assert_eq!(percentile_from_counts(&[], 0.95), 0.0);
        assert_eq!(percentile_from_counts(&[f64::NAN, 0.0], 0.5), 0.0);
    }

    #[test]
    fn frame_guards_out_of_range_indices() {
        let mut f = MetricsFrame::new(0, 2);
        f.record_access(0, 0, 80.0);
        f.record_access(7, 0, 80.0); // no such socket: ignored
        f.record_access(0, 99, 80.0); // no such class: ignored
        assert_eq!(f.sockets[0].total_count(), 1);
    }

    #[test]
    fn registry_merges_frames_deterministically() {
        let mut reg = MetricsRegistry::new(2, LABELS);
        let mut f0 = MetricsFrame::new(0, 2);
        f0.record_access(0, 1, 100.0);
        f0.add_counter("dir.transactions", 5);
        let mut f1 = MetricsFrame::new(1, 2);
        f1.record_access(0, 1, 300.0);
        f1.record_access(1, 0, 80.0);
        f1.add_counter("dir.transactions", 7);
        reg.push_frame(f0);
        reg.push_frame(f1);
        let m = reg.merged();
        assert_eq!(m.sockets[0].class_hist[1].count(), 2);
        assert_eq!(m.sockets[1].class_hist[0].count(), 1);
        assert_eq!(m.counters["dir.transactions"], 12);
        // Bit-identical under re-merge.
        assert_eq!(reg.merged(), m);
    }

    #[test]
    fn zero_counter_deltas_are_not_stored() {
        let mut f = MetricsFrame::new(0, 1);
        f.add_counter("x", 0);
        assert!(f.is_empty());
        f.add_counter("x", 2);
        assert!(!f.is_empty());
    }
}
