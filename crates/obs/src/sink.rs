//! The recording handle hot paths write through.
//!
//! An [`ObsSink`] is either *enabled* (owning a metrics frame, a registry,
//! and an event journal) or *disabled*. Every recording method checks the
//! enabled flag first and returns immediately when off, so instrumented
//! code pays one predictable branch per record — verified by the
//! `obs_overhead` bench. Event payloads are built by closures, so a
//! disabled sink never allocates field vectors either.

use crate::journal::{EventCategory, EventJournal, EventLevel, FieldValue};
use crate::metrics::{MetricsFrame, MetricsRegistry, Observe, NUM_CLASSES};
use crate::monitor::{MonitorReport, MonitorSet, PhaseCheck};

/// Default event-journal ring capacity used by the harness.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

/// Everything one run observed: merged-at-barrier metrics plus the
/// retained tail of the event journal.
#[derive(Clone, PartialEq, Debug)]
pub struct ObsReport {
    /// Per-phase metrics frames (merge with [`MetricsRegistry::merged`]).
    pub metrics: MetricsRegistry,
    /// Retained events, oldest first, seq-ordered.
    pub events: Vec<crate::journal::Event>,
    /// Events the ring buffer shed.
    pub dropped_events: u64,
    /// Verdict of the online invariant monitors (all-zero when the sink
    /// never saw a phase barrier, e.g. in unit tests driving the sink
    /// directly).
    pub monitor: MonitorReport,
}

/// The per-run observability handle.
///
/// Each simulation run is single-threaded and owns exactly one sink, so no
/// locking is needed and worker scheduling cannot interleave records —
/// that ownership is what makes `--jobs N` output bit-identical to
/// sequential execution.
#[derive(Clone, PartialEq, Debug)]
pub struct ObsSink {
    enabled: bool,
    phase: u32,
    frame: MetricsFrame,
    registry: MetricsRegistry,
    journal: EventJournal,
    monitors: MonitorSet,
}

impl ObsSink {
    /// A sink that records nothing; every method is one branch.
    pub fn disabled() -> Self {
        ObsSink {
            enabled: false,
            phase: 0,
            frame: MetricsFrame::new(0, 0),
            registry: MetricsRegistry::new(0, [""; NUM_CLASSES]),
            journal: EventJournal::new(1),
            monitors: MonitorSet::new(),
        }
    }

    /// A recording sink for `num_sockets` sockets. `class_labels` name the
    /// histogram columns (the simulator passes `AccessClass::ALL` labels);
    /// `journal_capacity` bounds the event ring.
    pub fn enabled(
        num_sockets: usize,
        class_labels: [&'static str; NUM_CLASSES],
        journal_capacity: usize,
    ) -> Self {
        ObsSink {
            enabled: true,
            phase: 0,
            frame: MetricsFrame::new(0, num_sockets),
            registry: MetricsRegistry::new(num_sockets, class_labels),
            journal: EventJournal::new(journal_capacity),
            monitors: MonitorSet::new(),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The phase currently being recorded.
    pub fn phase(&self) -> u32 {
        self.phase
    }

    /// Starts a new phase frame.
    pub fn begin_phase(&mut self, phase: u32) {
        if !self.enabled {
            return;
        }
        self.phase = phase;
        self.frame = MetricsFrame::new(phase, self.registry.num_sockets());
    }

    /// Seals the current frame into the registry (the phase barrier).
    pub fn end_phase(&mut self) {
        if !self.enabled {
            return;
        }
        let sealed = std::mem::replace(
            &mut self.frame,
            MetricsFrame::new(self.phase, self.registry.num_sockets()),
        );
        self.registry.push_frame(sealed);
    }

    /// Records one memory-access latency sample into the current frame.
    #[inline]
    pub fn record_access(&mut self, socket: usize, class: usize, measured_ns: f64) {
        if !self.enabled {
            return;
        }
        self.frame.record_access(socket, class, measured_ns);
    }

    /// Adds `delta` to a named counter in the current frame.
    #[inline]
    pub fn counter(&mut self, key: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        self.frame.add_counter(key, delta);
    }

    /// Pours a stats source's counters into the current frame under
    /// `prefix`.
    pub fn observe(&mut self, prefix: &str, source: &dyn Observe) {
        if !self.enabled {
            return;
        }
        source.observe(prefix, &mut self.frame);
    }

    /// Appends a journal event. `fields` is a closure so a disabled sink
    /// never builds the payload.
    #[inline]
    pub fn event<F>(
        &mut self,
        level: EventLevel,
        category: EventCategory,
        name: &'static str,
        fields: F,
    ) where
        F: FnOnce() -> Vec<(&'static str, FieldValue)>,
    {
        if !self.enabled {
            return;
        }
        self.journal
            .push(self.phase, level, category, name, fields());
    }

    /// Arms a one-shot injected monitor fault (test/CLI hook; see
    /// [`MonitorSet::arm_fault`]). No-op on a disabled sink.
    pub fn arm_monitor_fault(&mut self, monitor: &str) {
        if !self.enabled {
            return;
        }
        self.monitors.arm_fault(monitor);
    }

    /// Evaluates the invariant monitors against one phase-barrier
    /// snapshot. Call before [`end_phase`](Self::end_phase) so the
    /// in-flight frame's histogram total is still addressable. Violations
    /// become Warn-level `monitor_violation` journal events; healthy
    /// barriers emit nothing, so enabling monitors never changes the
    /// exports of a clean run.
    pub fn check_monitors(&mut self, check: &PhaseCheck) {
        if !self.enabled {
            return;
        }
        let recorded: u64 = self
            .frame
            .sockets
            .iter()
            .map(crate::metrics::SocketMetrics::total_count)
            .sum();
        for v in self.monitors.evaluate(check, recorded) {
            self.journal.push(
                self.phase,
                EventLevel::Warn,
                EventCategory::Monitor,
                "monitor_violation",
                vec![
                    ("monitor", FieldValue::Str(v.monitor.to_string())),
                    ("observed", FieldValue::U64(v.observed)),
                    ("limit", FieldValue::U64(v.limit)),
                ],
            );
        }
    }

    /// Finishes the run: seals any non-empty in-flight frame and returns
    /// the report.
    pub fn finish(mut self) -> ObsReport {
        if self.enabled && !self.frame.is_empty() {
            self.end_phase();
        }
        let (events, dropped_events) = self.journal.into_parts();
        ObsReport {
            metrics: self.registry,
            events,
            dropped_events,
            monitor: self.monitors.into_report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LABELS: [&str; NUM_CLASSES] = ["a", "b", "c", "d", "e", "f"];

    #[test]
    fn disabled_sink_records_nothing_and_never_builds_fields() {
        let mut sink = ObsSink::disabled();
        sink.begin_phase(0);
        sink.record_access(0, 0, 100.0);
        sink.counter("x", 1);
        sink.event(EventLevel::Info, EventCategory::Migration, "e", || {
            panic!("field closure must not run on a disabled sink")
        });
        sink.end_phase();
        let report = sink.finish();
        assert!(report.events.is_empty());
        assert!(report.metrics.frames().is_empty());
        assert_eq!(report.dropped_events, 0);
    }

    #[test]
    fn phases_produce_one_frame_each() {
        let mut sink = ObsSink::enabled(2, LABELS, 64);
        for phase in 0..3u32 {
            sink.begin_phase(phase);
            sink.record_access(0, 0, 80.0);
            sink.counter("dir.transactions", u64::from(phase));
            sink.end_phase();
        }
        let report = sink.finish();
        assert_eq!(report.metrics.frames().len(), 3);
        assert_eq!(report.metrics.frames()[2].phase, 2);
        assert_eq!(report.metrics.merged().sockets[0].class_hist[0].count(), 3);
        assert_eq!(report.metrics.merged().counters["dir.transactions"], 3);
    }

    #[test]
    fn finish_seals_in_flight_frame() {
        let mut sink = ObsSink::enabled(1, LABELS, 64);
        sink.begin_phase(5);
        sink.record_access(0, 2, 300.0);
        // no end_phase before finish
        let report = sink.finish();
        assert_eq!(report.metrics.frames().len(), 1);
        assert_eq!(report.metrics.frames()[0].phase, 5);
    }

    #[test]
    fn events_carry_phase_and_sequence() {
        let mut sink = ObsSink::enabled(1, LABELS, 64);
        sink.begin_phase(1);
        sink.event(
            EventLevel::Warn,
            EventCategory::PoolPressure,
            "pool_full_skip",
            || vec![("region", FieldValue::U64(9))],
        );
        sink.begin_phase(2);
        sink.event(
            EventLevel::Info,
            EventCategory::Checkpoint,
            "phase_checkpoint",
            Vec::new,
        );
        let report = sink.finish();
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.events[0].phase, 1);
        assert_eq!(report.events[0].seq, 0);
        assert_eq!(report.events[1].phase, 2);
        assert_eq!(report.events[1].seq, 1);
    }

    #[test]
    fn monitor_violations_become_journal_events() {
        use crate::monitor::PhaseCheck;
        let healthy = PhaseCheck {
            phase: 0,
            pool_pages: 1,
            pool_capacity_pages: 8,
            planned_moves: 0,
            migration_limit_pages: 4,
            memory_accesses: 1,
            substrate_counters_monotone: true,
        };
        // Clean barrier: checks counted, no events, report stays clean.
        let mut sink = ObsSink::enabled(1, LABELS, 64);
        sink.begin_phase(0);
        sink.record_access(0, 0, 100.0);
        sink.check_monitors(&healthy);
        sink.end_phase();
        let report = sink.finish();
        assert_eq!(report.monitor.checks, 1);
        assert!(report.monitor.is_clean());
        assert!(report.events.is_empty());

        // Histogram mismatch fires and lands in the journal.
        let mut sink = ObsSink::enabled(1, LABELS, 64);
        sink.begin_phase(0);
        sink.check_monitors(&healthy); // 0 recorded != 1 counted
        sink.end_phase();
        let report = sink.finish();
        assert_eq!(report.monitor.violations.len(), 1);
        assert_eq!(report.monitor.violations[0].monitor, "histogram_total");
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].name, "monitor_violation");
        assert_eq!(report.events[0].category, EventCategory::Monitor);

        // Disabled sinks ignore both arming and checking.
        let mut off = ObsSink::disabled();
        off.arm_monitor_fault("pool_occupancy");
        off.check_monitors(&healthy);
        assert_eq!(
            off.finish().monitor,
            crate::monitor::MonitorReport::default()
        );
    }

    #[test]
    fn identical_recordings_compare_equal() {
        let run = || {
            let mut sink = ObsSink::enabled(2, LABELS, 8);
            sink.begin_phase(0);
            sink.record_access(1, 3, 250.0);
            sink.counter("c", 2);
            sink.event(EventLevel::Debug, EventCategory::Threshold, "t", || {
                vec![("hi", FieldValue::F64(1.5))]
            });
            sink.end_phase();
            sink.finish()
        };
        assert_eq!(run(), run());
    }
}
