//! The TLB counter annex of §III-D1.
//!
//! Each TLB entry carries an `i`-bit saturating counter, incremented when an
//! LLC-missing load to that page completes. The page-table walker (PTW)
//! flushes the counter into the in-memory region-tracker metadata when the
//! entry is evicted — and, to capture hot pages that never leave the TLB,
//! each entry also has a *marker bit*, set once per migration phase: the
//! first access to a marked entry flushes and resets the counter.
//!
//! The special `T_0` design (counter width 0) cannot rank hotness but still
//! records *which sockets touched a region*, which is all that is needed to
//! identify widely shared regions for pool placement.
//!
//! Replacement is clock (FIFO) order: O(1) per access, which keeps the
//! tracker model off the simulator's critical path. The paper's mechanism
//! does not depend on the TLB replacement policy — only on the conservation
//! property that every counted access is eventually flushed, which holds
//! under any replacement order (see the property tests).

use starnuma_types::{DetMap, PageId};

/// Configuration of a [`Tlb`] and its counter annex.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TlbConfig {
    /// Number of TLB entries.
    pub entries: usize,
    /// Annex counter width in bits; `16` models the paper's `T_16`, `0`
    /// models `T_0` (touched/not-touched only).
    pub counter_bits: u8,
}

impl TlbConfig {
    /// A 1536-entry TLB with the paper's default `T_16` annex.
    pub fn t16() -> Self {
        TlbConfig {
            entries: 1536,
            counter_bits: 16,
        }
    }

    /// A 1536-entry TLB with the `T_0` annex.
    pub fn t0() -> Self {
        TlbConfig {
            entries: 1536,
            counter_bits: 0,
        }
    }

    /// Maximum annex counter value (`2^i − 1`).
    pub fn counter_max(&self) -> u32 {
        if self.counter_bits == 0 {
            0
        } else {
            ((1u64 << self.counter_bits) - 1) as u32
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self::t16()
    }
}

/// A counter flush emitted by the PTW toward the in-memory metadata region:
/// `count` accesses (by this TLB's socket) must be added to `page`'s region
/// tracker. For a `T_0` annex `count` is zero but the flush still records
/// that the socket touched the region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AnnexFlush {
    /// The page whose annex was flushed.
    pub page: PageId,
    /// Accesses accumulated since the last flush (0 under `T_0`).
    pub count: u32,
}

/// Counters describing TLB behavior.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TlbStats {
    /// Accesses that hit in the TLB.
    pub hits: u64,
    /// Accesses that missed (each implies a page walk).
    pub misses: u64,
    /// Annex flushes performed by the PTW (each adds metadata-write traffic).
    pub flushes: u64,
    /// Counter increments lost to saturation.
    pub saturated: u64,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    page: PageId,
    counter: u32,
    marker: bool,
    valid: bool,
}

/// A TLB with the §III-D1 counter annex (clock replacement).
///
/// # Examples
///
/// ```
/// use starnuma_cache::{Tlb, TlbConfig};
/// use starnuma_types::PageId;
///
/// let mut tlb = Tlb::new(TlbConfig { entries: 2, counter_bits: 16 });
/// tlb.record_llc_miss(PageId::new(1));
/// tlb.record_llc_miss(PageId::new(1));
/// tlb.record_llc_miss(PageId::new(2));
/// // Capacity 2: inserting a third page flushes an existing annex.
/// let flushes = tlb.record_llc_miss(PageId::new(3));
/// assert_eq!(flushes.len(), 1);
/// assert_eq!(flushes[0].count, 2);
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    index: DetMap<PageId, usize>,
    slots: Vec<Slot>,
    hand: usize,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `config.entries` is zero.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.entries > 0, "TLB needs at least one entry");
        Tlb {
            index: DetMap::new(),
            slots: Vec::with_capacity(config.entries),
            config,
            hand: 0,
            stats: TlbStats::default(),
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Returns behavior counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Records the completion of an LLC-missing load to `page`, incrementing
    /// its annex counter. Returns any flushes the PTW performs (marker hit or
    /// replacement on a TLB miss).
    pub fn record_llc_miss(&mut self, page: PageId) -> Vec<AnnexFlush> {
        let mut flushes = Vec::new();
        if let Some(&slot_idx) = self.index.get(&page) {
            self.stats.hits += 1;
            let max = self.config.counter_max();
            let slot = &mut self.slots[slot_idx];
            if slot.marker {
                // First access of the phase to a marked entry: flush & reset.
                slot.marker = false;
                let flushed = slot.counter;
                slot.counter = 0;
                self.stats.flushes += 1;
                flushes.push(AnnexFlush {
                    page,
                    count: flushed,
                });
            }
            if slot.counter < max {
                slot.counter += 1;
            } else {
                self.stats.saturated += 1;
            }
            return flushes;
        }
        // TLB miss → page walk; insert, replacing the clock-hand victim.
        self.stats.misses += 1;
        let fresh = Slot {
            page,
            counter: if self.config.counter_bits > 0 { 1 } else { 0 },
            marker: false,
            valid: true,
        };
        if self.slots.len() < self.config.entries {
            self.index.insert(page, self.slots.len());
            self.slots.push(fresh);
        } else {
            // Find the next valid slot at or after the hand (shootdowns may
            // have invalidated slots, which are reused first).
            let idx = match self.slots[self.hand..]
                .iter()
                .chain(self.slots[..self.hand].iter())
                .position(|s| !s.valid)
            {
                Some(off) => (self.hand + off) % self.slots.len(),
                None => {
                    let victim_idx = self.hand;
                    let victim = self.slots[victim_idx];
                    self.index.remove(&victim.page);
                    self.stats.flushes += 1;
                    flushes.push(AnnexFlush {
                        page: victim.page,
                        count: victim.counter,
                    });
                    self.hand = (self.hand + 1) % self.slots.len();
                    victim_idx
                }
            };
            self.slots[idx] = fresh;
            self.index.insert(page, idx);
        }
        flushes
    }

    /// Sets the marker bit on every entry. Called once per migration phase
    /// (about once per second) so resident-forever hot pages still get their
    /// counters flushed on their next access.
    pub fn set_markers(&mut self) {
        for slot in &mut self.slots {
            if slot.valid {
                slot.marker = true;
            }
        }
    }

    /// Drains all annex counters (end of simulation): every valid entry is
    /// flushed and reset.
    pub fn drain(&mut self) -> Vec<AnnexFlush> {
        let mut flushes = Vec::new();
        for slot in &mut self.slots {
            if slot.valid {
                self.stats.flushes += 1;
                flushes.push(AnnexFlush {
                    page: slot.page,
                    count: slot.counter,
                });
                slot.counter = 0;
                slot.marker = false;
            }
        }
        flushes
    }

    /// Invalidates the entry for `page` (a TLB shootdown), flushing its
    /// counter if present.
    pub fn shootdown(&mut self, page: PageId) -> Option<AnnexFlush> {
        let slot_idx = self.index.remove(&page)?;
        let slot = &mut self.slots[slot_idx];
        slot.valid = false;
        self.stats.flushes += 1;
        Some(AnnexFlush {
            page: slot.page,
            count: slot.counter,
        })
    }

    /// Number of currently valid entries.
    pub fn resident(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb(entries: usize, bits: u8) -> Tlb {
        Tlb::new(TlbConfig {
            entries,
            counter_bits: bits,
        })
    }

    #[test]
    fn counts_accumulate_until_eviction() {
        let mut t = tlb(2, 16);
        for _ in 0..5 {
            assert!(t.record_llc_miss(PageId::new(1)).is_empty());
        }
        t.record_llc_miss(PageId::new(2));
        // Capacity 2: inserting page 3 evicts the clock victim (page 1).
        let f = t.record_llc_miss(PageId::new(3));
        assert_eq!(
            f,
            vec![AnnexFlush {
                page: PageId::new(1),
                count: 5
            }]
        );
    }

    #[test]
    fn marker_forces_flush_of_hot_page() {
        let mut t = tlb(4, 16);
        t.record_llc_miss(PageId::new(9));
        t.record_llc_miss(PageId::new(9));
        t.set_markers();
        let f = t.record_llc_miss(PageId::new(9));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].count, 2);
        // Marker cleared: next access flushes nothing.
        assert!(t.record_llc_miss(PageId::new(9)).is_empty());
    }

    #[test]
    fn t0_counts_are_zero_but_flushes_happen() {
        let mut t = tlb(1, 0);
        t.record_llc_miss(PageId::new(1));
        t.record_llc_miss(PageId::new(1));
        let f = t.record_llc_miss(PageId::new(2)); // evicts 1
        assert_eq!(
            f,
            vec![AnnexFlush {
                page: PageId::new(1),
                count: 0
            }]
        );
        assert_eq!(t.stats().saturated, 1, "T_0 saturates immediately");
    }

    #[test]
    fn counter_saturates_at_width() {
        let mut t = Tlb::new(TlbConfig {
            entries: 1,
            counter_bits: 2,
        });
        for _ in 0..10 {
            t.record_llc_miss(PageId::new(1));
        }
        let f = t.drain();
        assert_eq!(f[0].count, 3, "2-bit counter caps at 3");
        assert!(t.stats().saturated > 0);
    }

    #[test]
    fn drain_flushes_everything() {
        let mut t = tlb(8, 16);
        t.record_llc_miss(PageId::new(1));
        t.record_llc_miss(PageId::new(2));
        let f = t.drain();
        assert_eq!(f.len(), 2);
        // After drain counters restart at zero.
        let f2 = t.drain();
        assert_eq!(f2.iter().map(|x| x.count).sum::<u32>(), 0);
    }

    #[test]
    fn shootdown_removes_and_flushes() {
        let mut t = tlb(8, 16);
        t.record_llc_miss(PageId::new(5));
        t.record_llc_miss(PageId::new(5));
        let f = t.shootdown(PageId::new(5)).unwrap();
        assert_eq!(f.count, 2);
        assert_eq!(t.resident(), 0);
        assert!(t.shootdown(PageId::new(5)).is_none());
    }

    #[test]
    fn shootdown_slot_is_reused_before_eviction() {
        let mut t = tlb(2, 16);
        t.record_llc_miss(PageId::new(1));
        t.record_llc_miss(PageId::new(2));
        t.shootdown(PageId::new(2));
        // The invalidated slot absorbs the new page: no flush of page 1.
        let f = t.record_llc_miss(PageId::new(3));
        assert!(f.is_empty());
        assert_eq!(t.resident(), 2);
    }

    #[test]
    fn clock_eviction_is_insertion_ordered() {
        let mut t = tlb(2, 16);
        t.record_llc_miss(PageId::new(1));
        t.record_llc_miss(PageId::new(2));
        t.record_llc_miss(PageId::new(1)); // hit: does not affect clock order
        let f = t.record_llc_miss(PageId::new(3));
        assert_eq!(f[0].page, PageId::new(1), "FIFO victim");
        let f = t.record_llc_miss(PageId::new(4));
        assert_eq!(f[0].page, PageId::new(2));
    }

    #[test]
    fn stats_track_hits_misses() {
        let mut t = tlb(4, 16);
        t.record_llc_miss(PageId::new(1)); // miss
        t.record_llc_miss(PageId::new(1)); // hit
        t.record_llc_miss(PageId::new(2)); // miss
        let s = t.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn config_counter_max() {
        assert_eq!(TlbConfig::t16().counter_max(), 65535);
        assert_eq!(TlbConfig::t0().counter_max(), 0);
        assert_eq!(
            TlbConfig {
                entries: 1,
                counter_bits: 8
            }
            .counter_max(),
            255
        );
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn rejects_zero_entries() {
        let _ = Tlb::new(TlbConfig {
            entries: 0,
            counter_bits: 16,
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use starnuma_types::SimRng;

    /// Conservation: every recorded LLC miss is eventually flushed
    /// exactly once (flushed counts + still-resident counts = accesses),
    /// provided counters never saturate.
    #[test]
    fn counts_are_conserved() {
        let mut rng = SimRng::seed_from_u64(0x71b0);
        for _case in 0..64 {
            let len = rng.gen_range(1usize..300);
            let mut t = Tlb::new(TlbConfig {
                entries: 4,
                counter_bits: 16,
            });
            let mut flushed: u64 = 0;
            for _ in 0..len {
                let p = rng.gen_range(0u64..20);
                for f in t.record_llc_miss(PageId::new(p)) {
                    flushed += u64::from(f.count);
                }
            }
            for f in t.drain() {
                flushed += u64::from(f.count);
            }
            assert_eq!(flushed, len as u64);
        }
    }

    /// Residency never exceeds capacity, with interleaved shootdowns.
    #[test]
    fn residency_bounded() {
        let mut rng = SimRng::seed_from_u64(0x71b1);
        for _case in 0..64 {
            let len = rng.gen_range(1usize..200);
            let cap = rng.gen_range(1usize..8);
            let mut t = Tlb::new(TlbConfig {
                entries: cap,
                counter_bits: 16,
            });
            for _ in 0..len {
                let p = rng.gen_range(0u64..100);
                if rng.gen_bool(0.2) {
                    t.shootdown(PageId::new(p));
                } else {
                    t.record_llc_miss(PageId::new(p));
                }
                assert!(t.resident() <= cap);
            }
        }
    }

    /// Conservation also holds with markers and shootdowns interleaved.
    #[test]
    fn conservation_with_markers() {
        let mut rng = SimRng::seed_from_u64(0x71b2);
        for _case in 0..64 {
            let len = rng.gen_range(1usize..300);
            let mut t = Tlb::new(TlbConfig {
                entries: 3,
                counter_bits: 16,
            });
            let mut flushed: u64 = 0;
            let mut recorded: u64 = 0;
            for _ in 0..len {
                let p = rng.gen_range(0u64..12);
                match rng.gen_range(0u16..10) {
                    0 => t.set_markers(),
                    1 => {
                        if let Some(f) = t.shootdown(PageId::new(p)) {
                            flushed += u64::from(f.count);
                        }
                    }
                    _ => {
                        recorded += 1;
                        for f in t.record_llc_miss(PageId::new(p)) {
                            flushed += u64::from(f.count);
                        }
                    }
                }
            }
            for f in t.drain() {
                flushed += u64::from(f.count);
            }
            assert_eq!(flushed, recorded);
        }
    }
}
