//! Cache-hierarchy models: the per-socket LLC and the TLB counter annex.
//!
//! * [`SetAssocCache`] is an LRU set-associative cache used as each socket's
//!   shared LLC. In the mixed-modality methodology (§IV-B of the paper) every
//!   light socket carries an LLC-sized cache "to support coherence modeling
//!   and filter accesses to memory"; the detailed socket uses the same model.
//! * [`Tlb`] implements the paper's hardware access-tracking support
//!   (§III-D1): each TLB entry carries an `i`-bit saturating *annex counter*
//!   incremented on LLC-missing loads, flushed into the in-memory region
//!   metadata by the page-table walker on eviction — plus a *marker bit*,
//!   set once per migration phase, that forces a flush on the next access so
//!   hot pages that never leave the TLB are still counted.
//!
//! # Examples
//!
//! ```
//! use starnuma_cache::{CacheConfig, CacheOutcome, SetAssocCache};
//! use starnuma_types::BlockAddr;
//!
//! let mut llc = SetAssocCache::new(CacheConfig::scaled_llc());
//! assert!(matches!(llc.access(BlockAddr::new(7), false), CacheOutcome::Miss { .. }));
//! assert!(matches!(llc.access(BlockAddr::new(7), false), CacheOutcome::Hit));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod llc;
mod tlb;

pub use llc::{CacheConfig, CacheOutcome, CacheStats, SetAssocCache};
pub use tlb::{AnnexFlush, Tlb, TlbConfig, TlbStats};
