//! LRU set-associative cache.

use starnuma_obs::{MetricsFrame, Observe};
use starnuma_types::BlockAddr;

/// Geometry of a set-associative cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// The scaled-down per-socket LLC of Table II: 4 cores × 2 MB/core,
    /// 16-way, 64 B blocks → 8 MiB / 64 B / 16 ways = 8192 sets.
    pub fn scaled_llc() -> Self {
        CacheConfig {
            sets: 8192,
            ways: 16,
        }
    }

    /// The full-scale per-socket LLC of Table I: 28 cores × 2 MB/core,
    /// 16-way → 57344 blocks… rounded to the next power-of-two set count.
    pub fn full_scale_llc() -> Self {
        CacheConfig {
            sets: 65536,
            ways: 16,
        }
    }

    /// A small cache for unit tests.
    pub fn tiny(sets: usize, ways: usize) -> Self {
        CacheConfig { sets, ways }
    }

    /// Capacity in 64 B blocks.
    pub fn capacity_blocks(&self) -> usize {
        self.sets * self.ways
    }
}

/// Result of a cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    /// The block was present.
    Hit,
    /// The block was absent and has been filled; `evicted` is the victim (if
    /// any) with its dirty state — a dirty victim implies a writeback.
    Miss {
        /// Evicted victim block and whether it was dirty.
        evicted: Option<(BlockAddr, bool)>,
    },
}

impl CacheOutcome {
    /// Returns `true` on [`CacheOutcome::Hit`].
    pub const fn is_hit(&self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }
}

/// Hit/miss counters of a [`SetAssocCache`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty evictions (writebacks).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

impl Observe for CacheStats {
    fn observe(&self, prefix: &str, frame: &mut MetricsFrame) {
        frame.add_counter(&format!("{prefix}.hits"), self.hits);
        frame.add_counter(&format!("{prefix}.misses"), self.misses);
        frame.add_counter(&format!("{prefix}.writebacks"), self.writebacks);
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64, // larger = more recently used
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    lru: 0,
};

/// An LRU set-associative cache of 64 B blocks.
///
/// Used as each socket's shared LLC: it filters the memory-access stream
/// (only misses reach the interconnect) and tracks dirty state so evictions
/// generate writeback traffic.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `config.sets` is not a power of two or `ways` is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.sets.is_power_of_two(),
            "set count must be a power of two, got {}",
            config.sets
        );
        assert!(config.ways > 0, "associativity must be positive");
        SetAssocCache {
            lines: vec![INVALID; config.sets * config.ways],
            config,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Returns the geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Returns hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_range(&self, block: BlockAddr) -> (usize, u64) {
        let set = (block.bfn() as usize) & (self.config.sets - 1);
        (set * self.config.ways, block.bfn())
    }

    /// Accesses `block`; `is_write` marks the line dirty on hit or fill.
    pub fn access(&mut self, block: BlockAddr, is_write: bool) -> CacheOutcome {
        self.tick += 1;
        let (base, tag) = self.set_range(block);
        let ways = self.config.ways;
        // Hit?
        for i in base..base + ways {
            let line = &mut self.lines[i];
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                line.dirty |= is_write;
                self.stats.hits += 1;
                return CacheOutcome::Hit;
            }
        }
        // Miss: find invalid way or LRU victim.
        self.stats.misses += 1;
        let mut victim = base;
        let mut victim_lru = u64::MAX;
        for i in base..base + ways {
            if !self.lines[i].valid {
                victim = i;
                break;
            }
            if self.lines[i].lru < victim_lru {
                victim = i;
                victim_lru = self.lines[i].lru;
            }
        }
        let old = self.lines[victim];
        let evicted = if old.valid {
            if old.dirty {
                self.stats.writebacks += 1;
            }
            Some((BlockAddr::new(old.tag), old.dirty))
        } else {
            None
        };
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: self.tick,
        };
        CacheOutcome::Miss { evicted }
    }

    /// Returns `true` if `block` is currently cached (no LRU update).
    pub fn contains(&self, block: BlockAddr) -> bool {
        let (base, tag) = self.set_range(block);
        self.lines[base..base + self.config.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates `block` if present; returns whether it was dirty.
    ///
    /// Used for coherence back-invalidations.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<bool> {
        let (base, tag) = self.set_range(block);
        for i in base..base + self.config.ways {
            let line = &mut self.lines[i];
            if line.valid && line.tag == tag {
                line.valid = false;
                return Some(line.dirty);
            }
        }
        None
    }

    /// Empties the cache and clears statistics.
    pub fn reset(&mut self) {
        self.lines.fill(INVALID);
        self.tick = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        SetAssocCache::new(CacheConfig::tiny(2, 2))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(BlockAddr::new(0), false).is_hit());
        assert!(c.access(BlockAddr::new(0), false).is_hit());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().miss_ratio(), 0.5);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Blocks 0, 2, 4 all map to set 0 (even bfn).
        c.access(BlockAddr::new(0), false);
        c.access(BlockAddr::new(2), false);
        c.access(BlockAddr::new(0), false); // 0 is now MRU
        let out = c.access(BlockAddr::new(4), false); // evicts 2
        assert_eq!(
            out,
            CacheOutcome::Miss {
                evicted: Some((BlockAddr::new(2), false))
            }
        );
        assert!(c.contains(BlockAddr::new(0)));
        assert!(!c.contains(BlockAddr::new(2)));
    }

    #[test]
    fn dirty_eviction_is_writeback() {
        let mut c = tiny();
        c.access(BlockAddr::new(0), true);
        c.access(BlockAddr::new(2), false);
        let out = c.access(BlockAddr::new(4), false); // evicts dirty 0
        assert_eq!(
            out,
            CacheOutcome::Miss {
                evicted: Some((BlockAddr::new(0), true))
            }
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(BlockAddr::new(0), false);
        c.access(BlockAddr::new(0), true); // now dirty
        c.access(BlockAddr::new(2), false); // 0 becomes LRU
        let out = c.access(BlockAddr::new(4), false); // evicts 0, dirty
        assert_eq!(
            out,
            CacheOutcome::Miss {
                evicted: Some((BlockAddr::new(0), true))
            }
        );
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(BlockAddr::new(0), true);
        assert_eq!(c.invalidate(BlockAddr::new(0)), Some(true));
        assert!(!c.contains(BlockAddr::new(0)));
        assert_eq!(c.invalidate(BlockAddr::new(0)), None);
    }

    #[test]
    fn sets_isolate_addresses() {
        let mut c = tiny();
        c.access(BlockAddr::new(0), false); // set 0
        c.access(BlockAddr::new(1), false); // set 1
        c.access(BlockAddr::new(3), false); // set 1
        c.access(BlockAddr::new(5), false); // set 1, evicts 1
        assert!(c.contains(BlockAddr::new(0)), "set 0 unaffected");
        assert!(!c.contains(BlockAddr::new(1)));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(BlockAddr::new(0), true);
        c.reset();
        assert!(!c.contains(BlockAddr::new(0)));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn scaled_llc_geometry() {
        let cfg = CacheConfig::scaled_llc();
        assert_eq!(cfg.capacity_blocks() * 64, 8 * 1024 * 1024); // 8 MiB
        let c = SetAssocCache::new(cfg);
        assert_eq!(c.config().ways, 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = SetAssocCache::new(CacheConfig::tiny(3, 2));
    }

    #[test]
    fn miss_ratio_zero_when_empty() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use starnuma_types::SimRng;

    /// The cache never holds more blocks than its capacity, and a
    /// just-filled block is always resident immediately afterwards.
    #[test]
    fn fill_then_resident() {
        let mut rng = SimRng::seed_from_u64(0x11c0);
        for _case in 0..64 {
            let len = rng.gen_range(1usize..200);
            let mut c = SetAssocCache::new(CacheConfig::tiny(4, 4));
            for _ in 0..len {
                let a = rng.gen_range(0u64..512);
                let b = BlockAddr::new(a);
                c.access(b, a.is_multiple_of(3));
                assert!(c.contains(b));
            }
        }
    }

    /// Hits + misses always equals total accesses; miss ratio is in [0,1].
    #[test]
    fn stats_are_consistent() {
        let mut rng = SimRng::seed_from_u64(0x11c1);
        for _case in 0..64 {
            let len = rng.gen_range(0usize..100);
            let mut c = SetAssocCache::new(CacheConfig::tiny(2, 2));
            for _ in 0..len {
                c.access(BlockAddr::new(rng.gen_range(0u64..64)), false);
            }
            let s = c.stats();
            assert_eq!(s.accesses(), len as u64);
            assert!((0.0..=1.0).contains(&s.miss_ratio()));
        }
    }

    /// Accessing a working set no larger than one set's associativity
    /// never evicts: everything stays resident (LRU is safe at capacity).
    #[test]
    fn small_working_set_never_evicts() {
        let mut rng = SimRng::seed_from_u64(0x11c2);
        for _case in 0..32 {
            let reps = rng.gen_range(1usize..20);
            let mut c = SetAssocCache::new(CacheConfig::tiny(1, 4));
            let ws: Vec<u64> = (0..4).collect();
            for _ in 0..reps {
                for &a in &ws {
                    c.access(BlockAddr::new(a), false);
                }
            }
            let s = c.stats();
            assert_eq!(s.misses, 4); // only the cold misses
        }
    }
}
