//! A compact binary on-disk format for phase traces.
//!
//! The paper's step A writes traces to files once and reuses them across
//! every simulated configuration (§IV-A1); this module provides the same
//! workflow: generate once with [`TraceGenerator`](crate::TraceGenerator),
//! persist with [`write_phase`], and replay with [`read_phase`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   b"SNTR"
//! version u32 (currently 1)
//! cores   u32
//! per core:
//!   count u64
//!   count × { addr u64, icount u64, kind u8 (0=read, 1=write) }
//! ```
//!
//! Core ids are implicit (dense, in order), so records are 17 bytes each.

use std::io::{self, Read, Write};

use starnuma_types::{AccessType, CoreId, MemAccess, PhysAddr};

use crate::generator::PhaseTrace;

const MAGIC: &[u8; 4] = b"SNTR";
const VERSION: u32 = 1;

/// Serializes a phase trace. Pass `&mut writer` to keep using the writer
/// afterwards.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
///
/// # Examples
///
/// ```
/// use starnuma_trace::{read_phase, write_phase, TraceGenerator, Workload};
///
/// # fn main() -> std::io::Result<()> {
/// let mut gen = TraceGenerator::new(&Workload::Tpcc.profile(), 16, 4, 1);
/// let phase = gen.generate_phase(2_000);
/// let mut buf = Vec::new();
/// write_phase(&mut buf, &phase)?;
/// let replayed = read_phase(&buf[..])?;
/// assert_eq!(phase.per_core, replayed.per_core);
/// # Ok(())
/// # }
/// ```
pub fn write_phase<W: Write>(mut w: W, trace: &PhaseTrace) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(trace.per_core.len() as u32).to_le_bytes())?;
    for stream in &trace.per_core {
        w.write_all(&(stream.len() as u64).to_le_bytes())?;
        for a in stream {
            w.write_all(&a.addr.raw().to_le_bytes())?;
            w.write_all(&a.icount.to_le_bytes())?;
            w.write_all(&[u8::from(a.kind.is_write())])?;
        }
    }
    Ok(())
}

/// Deserializes a phase trace written by [`write_phase`]. Pass `&mut reader`
/// to keep using the reader afterwards.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on a bad magic, version, or
/// record, and propagates I/O errors from `r`.
pub fn read_phase<R: Read>(mut r: R) -> io::Result<PhaseTrace> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a StarNUMA trace (bad magic)",
        ));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let cores = read_u32(&mut r)? as usize;
    if cores > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "implausible core count",
        ));
    }
    let mut per_core = Vec::with_capacity(cores);
    for core_idx in 0..cores {
        let count = read_u64(&mut r)? as usize;
        let mut stream = Vec::with_capacity(count.min(1 << 24));
        for _ in 0..count {
            let addr = read_u64(&mut r)?;
            let icount = read_u64(&mut r)?;
            let mut kind = [0u8; 1];
            r.read_exact(&mut kind)?;
            let kind = match kind[0] {
                0 => AccessType::Read,
                1 => AccessType::Write,
                k => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad access kind {k}"),
                    ))
                }
            };
            stream.push(MemAccess::new(
                CoreId::new(core_idx as u32),
                PhysAddr::new(addr),
                kind,
                icount,
            ));
        }
        per_core.push(stream);
    }
    Ok(PhaseTrace { per_core })
}

/// Metadata of a multi-phase trace run (the full step-A artifact for one
/// workload execution).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunHeader {
    /// Workload name the run was generated from.
    pub workload: String,
    /// Generator seed (runs are reproducible from name + seed alone).
    pub seed: u64,
}

const RUN_MAGIC: &[u8; 4] = b"SNRN";

/// Serializes a whole run: header plus one [`write_phase`] block per phase.
///
/// # Errors
///
/// Propagates I/O errors; rejects workload names longer than 255 bytes.
pub fn write_run<W: Write>(mut w: W, header: &RunHeader, phases: &[PhaseTrace]) -> io::Result<()> {
    w.write_all(RUN_MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let name = header.workload.as_bytes();
    if name.len() > 255 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "workload name too long",
        ));
    }
    w.write_all(&[name.len() as u8])?;
    w.write_all(name)?;
    w.write_all(&header.seed.to_le_bytes())?;
    w.write_all(&(phases.len() as u32).to_le_bytes())?;
    for phase in phases {
        write_phase(&mut w, phase)?;
    }
    Ok(())
}

/// Deserializes a run written by [`write_run`].
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on format violations and
/// propagates I/O errors.
pub fn read_run<R: Read>(mut r: R) -> io::Result<(RunHeader, Vec<PhaseTrace>)> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != RUN_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a StarNUMA run file (bad magic)",
        ));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported run version {version}"),
        ));
    }
    let mut len = [0u8; 1];
    r.read_exact(&mut len)?;
    let mut name = vec![0u8; len[0] as usize];
    r.read_exact(&mut name)?;
    let workload = String::from_utf8(name)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 workload name"))?;
    let seed = read_u64(&mut r)?;
    let count = read_u32(&mut r)? as usize;
    if count > 10_000 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "implausible phase count",
        ));
    }
    let mut phases = Vec::with_capacity(count);
    for _ in 0..count {
        phases.push(read_phase(&mut r)?);
    }
    Ok((RunHeader { workload, seed }, phases))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::profile::Workload;

    #[test]
    fn roundtrip_preserves_traces() {
        let mut gen = TraceGenerator::new(&Workload::Bfs.profile(), 16, 4, 9);
        let phase = gen.generate_phase(5_000);
        let mut buf = Vec::new();
        write_phase(&mut buf, &phase).expect("write to Vec cannot fail");
        let replayed = read_phase(&buf[..]).expect("roundtrip");
        assert_eq!(phase.per_core, replayed.per_core);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let phase = PhaseTrace::default();
        let mut buf = Vec::new();
        write_phase(&mut buf, &phase).unwrap();
        let replayed = read_phase(&buf[..]).unwrap();
        assert_eq!(replayed.per_core.len(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_phase(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"SNTR");
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_phase(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let mut gen = TraceGenerator::new(&Workload::Tc.profile(), 4, 2, 1);
        let phase = gen.generate_phase(2_000);
        let mut buf = Vec::new();
        write_phase(&mut buf, &phase).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_phase(&buf[..]).is_err());
    }

    #[test]
    fn bad_kind_byte_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"SNTR");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // one core
        buf.extend_from_slice(&1u64.to_le_bytes()); // one record
        buf.extend_from_slice(&0u64.to_le_bytes()); // addr
        buf.extend_from_slice(&5u64.to_le_bytes()); // icount
        buf.push(7); // invalid kind
        let err = read_phase(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("bad access kind"));
    }

    #[test]
    fn run_roundtrip() {
        let mut gen = TraceGenerator::new(&Workload::Cc.profile(), 16, 4, 5);
        let phases: Vec<PhaseTrace> = (0..3).map(|_| gen.generate_phase(2_000)).collect();
        let header = RunHeader {
            workload: "CC".into(),
            seed: 5,
        };
        let mut buf = Vec::new();
        write_run(&mut buf, &header, &phases).expect("write");
        let (h, ps) = read_run(&buf[..]).expect("read");
        assert_eq!(h, header);
        assert_eq!(ps.len(), 3);
        for (a, b) in phases.iter().zip(&ps) {
            assert_eq!(a.per_core, b.per_core);
        }
    }

    #[test]
    fn run_bad_magic_rejected() {
        assert!(read_run(&b"SNTRxxxx"[..]).is_err());
    }

    #[test]
    fn run_name_length_capped() {
        let header = RunHeader {
            workload: "x".repeat(300),
            seed: 0,
        };
        let err = write_run(Vec::new(), &header, &[]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn record_size_is_compact() {
        let mut gen = TraceGenerator::new(&Workload::Poa.profile(), 16, 4, 2);
        let phase = gen.generate_phase(3_000);
        let mut buf = Vec::new();
        write_phase(&mut buf, &phase).unwrap();
        let expected = 4 + 4 + 4 + 64 * 8 + phase.total_accesses() * 17;
        assert_eq!(buf.len(), expected);
    }
}
