//! The trace generator: turns a [`WorkloadProfile`] into per-core memory
//! access streams with the profile's sharing structure.

use starnuma_types::{
    AccessType, CoreId, MemAccess, PageId, PhysAddr, SimRng, SocketId, BLOCK_SIZE, PAGE_SIZE,
    REGION_PAGES, SOCKETS_PER_CHASSIS,
};

use crate::profile::WorkloadProfile;

/// One phase's worth of traces: a stream of accesses per core, icount-tagged
/// and sorted by icount (the per-thread memory traces of §IV-A1).
#[derive(Clone, Debug, Default)]
pub struct PhaseTrace {
    /// Indexed by global core id; each stream is sorted by `icount`.
    pub per_core: Vec<Vec<MemAccess>>,
}

impl PhaseTrace {
    /// Total number of accesses across all cores.
    pub fn total_accesses(&self) -> usize {
        self.per_core.iter().map(Vec::len).sum()
    }

    /// Iterates over all accesses of all cores (unordered across cores).
    pub fn iter(&self) -> impl Iterator<Item = &MemAccess> {
        self.per_core.iter().flatten()
    }
}

/// Deterministic synthetic trace generator (the step-A substitute).
///
/// Pages are laid out in contiguous class runs; sharer sets are assigned per
/// 512 KiB region group so that monitoring regions stay homogeneous. Each
/// core samples pages its socket shares, weighted by the profile's
/// per-class access fractions.
///
/// # Examples
///
/// ```
/// use starnuma_trace::{TraceGenerator, Workload};
///
/// let profile = Workload::Tpcc.profile();
/// let mut generator = TraceGenerator::new(&profile, 16, 4, 7);
/// let phase = generator.generate_phase(5_000);
/// assert!(phase.total_accesses() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    num_sockets: usize,
    cores_per_socket: usize,
    seed: u64,
    phase: u64,
    /// Class index of each page.
    page_class: Vec<u8>,
    /// Sharer set of each region-sized page group.
    group_sharers: Vec<Vec<SocketId>>,
    /// `[socket][class]` → hot pages of that class this socket shares.
    socket_pages_hot: Vec<Vec<Vec<PageId>>>,
    /// `[socket][class]` → cold pages of that class this socket shares.
    socket_pages_cold: Vec<Vec<Vec<PageId>>>,
    /// `[socket][class]` → cumulative access-probability weights.
    socket_cum_weights: Vec<Vec<f64>>,
}

impl TraceGenerator {
    /// Builds the page map and sampling tables for `profile` on an
    /// `num_sockets` × `cores_per_socket` system.
    ///
    /// # Panics
    ///
    /// Panics if `num_sockets` or `cores_per_socket` is zero.
    pub fn new(
        profile: &WorkloadProfile,
        num_sockets: usize,
        cores_per_socket: usize,
        seed: u64,
    ) -> Self {
        assert!(num_sockets > 0, "need at least one socket");
        assert!(cores_per_socket > 0, "need at least one core per socket");
        let mut rng = SimRng::seed_from_u64(seed ^ 0x5741_524e_554d_4131);
        let num_classes = profile.classes.len();
        let total_pages = profile.footprint_pages;
        let num_groups = total_pages.div_ceil(REGION_PAGES as u64) as usize;

        let mut page_class = vec![0u8; total_pages as usize];
        let mut group_sharers: Vec<Vec<SocketId>> = vec![Vec::new(); num_groups];
        let mut socket_pages_hot = vec![vec![Vec::new(); num_classes]; num_sockets];
        let mut socket_pages_cold = vec![vec![Vec::new(); num_classes]; num_sockets];

        // Assign whole 512 KiB region groups to classes, interleaved across
        // the address space by largest-remainder apportionment: real
        // applications interleave their data structures, and a contiguous
        // per-class layout would bias Algorithm 1's in-order metadata scan.
        let mut rr_socket = 0usize;
        let mut rr_chassis = 0usize;
        let mut owed = vec![0.0f64; num_classes];
        // Within-class hotness: `hot_page_frac` of each class's groups draw
        // `hot_access_frac` of its accesses (high-degree vertices, hot index
        // nodes). Largest-remainder again, per class, so hot groups are
        // spread through the address space.
        let mut hot_owed = vec![0.0f64; num_classes];
        #[allow(clippy::needless_range_loop)] // index used for address math
        for group_idx in 0..num_groups {
            for (c, class) in profile.classes.iter().enumerate() {
                owed[c] += class.page_frac;
            }
            let cls_idx = owed
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map_or(0, |(i, _)| i);
            owed[cls_idx] -= 1.0;
            let class = &profile.classes[cls_idx];
            let sharers = Self::pick_sharers(
                class.sharers.min,
                class.sharers.max,
                class.within_chassis,
                num_sockets,
                &mut rng,
                &mut rr_socket,
                &mut rr_chassis,
            );
            hot_owed[cls_idx] += profile.hot_page_frac;
            let hot = hot_owed[cls_idx] >= 1.0;
            if hot {
                hot_owed[cls_idx] -= 1.0;
            }
            let start = group_idx as u64 * REGION_PAGES as u64;
            let end = (start + REGION_PAGES as u64).min(total_pages);
            for page in start..end {
                page_class[page as usize] = cls_idx as u8;
                for &s in &sharers {
                    let lists = if hot {
                        &mut socket_pages_hot
                    } else {
                        &mut socket_pages_cold
                    };
                    lists[s.index() as usize][cls_idx].push(PageId::new(page));
                }
            }
            group_sharers[group_idx] = sharers;
        }

        // Per-socket cumulative class weights (a socket can only sample
        // classes it has pages in).
        let mut socket_cum_weights = vec![vec![0.0; num_classes]; num_sockets];
        for s in 0..num_sockets {
            let mut cum = 0.0;
            for c in 0..num_classes {
                // canonical order: ascending class index.
                if !socket_pages_hot[s][c].is_empty() || !socket_pages_cold[s][c].is_empty() {
                    cum += profile.classes[c].access_frac;
                }
                socket_cum_weights[s][c] = cum;
            }
            assert!(
                cum > 0.0,
                "socket {s} has no accessible pages; profile/socket-count mismatch"
            );
        }

        TraceGenerator {
            profile: profile.clone(),
            num_sockets,
            cores_per_socket,
            seed,
            phase: 0,
            page_class,
            group_sharers,
            socket_pages_hot,
            socket_pages_cold,
            socket_cum_weights,
        }
    }

    fn pick_sharers(
        min: u16,
        max: u16,
        within_chassis: bool,
        num_sockets: usize,
        rng: &mut SimRng,
        rr_socket: &mut usize,
        rr_chassis: &mut usize,
    ) -> Vec<SocketId> {
        let k = rng.gen_range(min..=max).min(num_sockets as u16) as usize;
        if k == 1 {
            // Round-robin for balance: every socket gets private data.
            let s = SocketId::new((*rr_socket % num_sockets) as u16);
            *rr_socket += 1;
            return vec![s];
        }
        let num_chassis = num_sockets.div_ceil(SOCKETS_PER_CHASSIS);
        if within_chassis && k <= SOCKETS_PER_CHASSIS && num_chassis > 1 {
            let chassis = *rr_chassis % num_chassis;
            *rr_chassis += 1;
            let base = (chassis * SOCKETS_PER_CHASSIS) as u16;
            let chassis_size = SOCKETS_PER_CHASSIS.min(num_sockets - chassis * SOCKETS_PER_CHASSIS);
            let mut within: Vec<u16> = (0..chassis_size as u16).collect();
            partial_shuffle(&mut within, k, rng);
            return within[..k]
                .iter()
                .map(|&i| SocketId::new(base + i))
                .collect();
        }
        let mut all: Vec<u16> = (0..num_sockets as u16).collect();
        partial_shuffle(&mut all, k, rng);
        let mut v: Vec<SocketId> = all[..k].iter().map(|&i| SocketId::new(i)).collect();
        v.sort_unstable();
        v
    }

    /// The profile this generator was built from.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Total system core count.
    pub fn total_cores(&self) -> usize {
        self.num_sockets * self.cores_per_socket
    }

    /// Number of sockets.
    pub fn num_sockets(&self) -> usize {
        self.num_sockets
    }

    /// The sockets sharing `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the footprint.
    pub fn page_sharers(&self, page: PageId) -> &[SocketId] {
        &self.group_sharers[(page.pfn() / REGION_PAGES as u64) as usize]
    }

    /// The class index of `page`.
    pub fn page_class(&self, page: PageId) -> usize {
        self.page_class[page.pfn() as usize] as usize
    }

    /// Generates the next phase: `instructions_per_core` instructions per
    /// core, producing LLC-miss-rate-calibrated access streams.
    pub fn generate_phase(&mut self, instructions_per_core: u64) -> PhaseTrace {
        let phase = self.phase;
        self.phase += 1;
        let ipm = self.profile.instructions_per_miss();
        let mut per_core = Vec::with_capacity(self.total_cores());
        for core_idx in 0..self.total_cores() as u32 {
            let core = CoreId::new(core_idx);
            let socket = core.socket(self.cores_per_socket);
            let mut rng = SimRng::seed_from_u64(
                self.seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((u64::from(core_idx) << 20) ^ phase),
            );
            let mut stream = Vec::new();
            let mut icount = 0u64;
            loop {
                // Geometric-ish gap around the mean instructions-per-miss.
                let gap = (ipm * (0.25 + 1.5 * rng.gen_f64())).max(1.0) as u64;
                icount += gap;
                if icount >= instructions_per_core {
                    break;
                }
                stream.push(self.sample_access(socket, core, icount, &mut rng));
            }
            per_core.push(stream);
        }
        PhaseTrace { per_core }
    }

    fn sample_access(
        &self,
        socket: SocketId,
        core: CoreId,
        icount: u64,
        rng: &mut SimRng,
    ) -> MemAccess {
        let s = socket.index() as usize;
        let weights = &self.socket_cum_weights[s];
        let total = weights.last().copied().unwrap_or(1.0);
        let x = rng.gen_f64() * total;
        let cls = weights.partition_point(|&w| w <= x).min(weights.len() - 1);
        let hot = &self.socket_pages_hot[s][cls];
        let cold = &self.socket_pages_cold[s][cls];
        let pages = if hot.is_empty() {
            cold
        } else if cold.is_empty() || rng.gen_f64() < self.profile.hot_access_frac {
            hot
        } else {
            cold
        };
        debug_assert!(!pages.is_empty());
        let page = pages[rng.gen_range(0..pages.len())];
        let block_in_page = rng.gen_range(0..(PAGE_SIZE / BLOCK_SIZE)) as u64;
        let addr = PhysAddr::new(page.pfn() * PAGE_SIZE as u64 + block_in_page * BLOCK_SIZE as u64);
        let kind = if rng.gen_f64() < self.profile.classes[cls].rw.read_fraction() {
            AccessType::Read
        } else {
            AccessType::Write
        };
        MemAccess::new(core, addr, kind, icount)
    }
}

/// Fisher–Yates for the first `k` elements.
fn partial_shuffle(v: &mut [u16], k: usize, rng: &mut SimRng) {
    let n = v.len();
    for i in 0..k.min(n.saturating_sub(1)) {
        let j = rng.gen_range(i..n);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Workload;
    use std::collections::HashSet;

    fn generator(w: Workload) -> TraceGenerator {
        TraceGenerator::new(&w.profile(), 16, 4, 42)
    }

    #[test]
    fn deterministic_across_constructions() {
        let mut a = generator(Workload::Bfs);
        let mut b = generator(Workload::Bfs);
        let pa = a.generate_phase(2_000);
        let pb = b.generate_phase(2_000);
        assert_eq!(pa.per_core, pb.per_core);
    }

    #[test]
    fn phases_differ() {
        let mut g = generator(Workload::Bfs);
        let p0 = g.generate_phase(2_000);
        let p1 = g.generate_phase(2_000);
        assert_ne!(p0.per_core, p1.per_core);
    }

    #[test]
    fn access_rate_tracks_mpki() {
        let mut g = generator(Workload::Bfs);
        let instr = 50_000u64;
        let phase = g.generate_phase(instr);
        let per_core = phase.total_accesses() as f64 / 64.0;
        let expected = instr as f64 * 32.0 / 1000.0;
        assert!(
            (per_core - expected).abs() / expected < 0.15,
            "got {per_core}, expected ≈{expected}"
        );
    }

    #[test]
    fn icounts_sorted_and_bounded() {
        let mut g = generator(Workload::Tc);
        let phase = g.generate_phase(30_000);
        for stream in &phase.per_core {
            for pair in stream.windows(2) {
                assert!(pair[0].icount < pair[1].icount);
            }
            if let Some(last) = stream.last() {
                assert!(last.icount < 30_000);
            }
        }
    }

    #[test]
    fn cores_access_only_their_sockets_pages() {
        let mut g = generator(Workload::Bfs);
        let phase = g.generate_phase(5_000);
        for (core_idx, stream) in phase.per_core.iter().enumerate() {
            let socket = CoreId::new(core_idx as u32).socket(4);
            for a in stream {
                let sharers = g.page_sharers(a.addr.page());
                assert!(
                    sharers.contains(&socket),
                    "core {core_idx} touched page not shared by its socket"
                );
            }
        }
    }

    #[test]
    fn poa_pages_are_socket_private() {
        let mut g = generator(Workload::Poa);
        let phase = g.generate_phase(5_000);
        let mut sharer_counts = HashSet::new();
        for a in phase.iter() {
            sharer_counts.insert(g.page_sharers(a.addr.page()).len());
        }
        assert_eq!(sharer_counts, HashSet::from([1]));
    }

    #[test]
    fn bfs_has_wide_sharers() {
        let g = generator(Workload::Bfs);
        let p = g.profile().footprint_pages;
        let wide = (0..p)
            .filter(|&pg| g.page_sharers(PageId::new(pg)).len() == 16)
            .count() as f64
            / p as f64;
        assert!(
            (wide - 0.02).abs() < 0.015,
            "expected ≈2% 16-sharer pages, got {wide}"
        );
    }

    #[test]
    fn within_chassis_classes_stay_in_one_chassis() {
        let g = generator(Workload::Tpcc);
        for pg in 0..g.profile().footprint_pages {
            let page = PageId::new(pg);
            let sharers = g.page_sharers(page);
            let cls = &g.profile().classes[g.page_class(page)];
            if cls.within_chassis && sharers.len() > 1 {
                let chassis: HashSet<u8> = sharers.iter().map(|s| s.chassis().index()).collect();
                assert_eq!(chassis.len(), 1, "within-chassis class spans chassis");
            }
        }
    }

    #[test]
    fn private_pages_balanced_across_sockets() {
        let g = generator(Workload::Poa);
        let mut counts = vec![0u64; 16];
        for pg in 0..g.profile().footprint_pages {
            let sharers = g.page_sharers(PageId::new(pg));
            counts[sharers[0].index() as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.3, "imbalanced private pages: {counts:?}");
    }

    #[test]
    fn single_socket_system_works() {
        let mut g = TraceGenerator::new(&Workload::Bfs.profile(), 4, 4, 1);
        let phase = g.generate_phase(5_000);
        assert_eq!(phase.per_core.len(), 16);
        assert!(phase.total_accesses() > 0);
    }

    #[test]
    fn reads_and_writes_both_present() {
        let mut g = generator(Workload::Masstree);
        let phase = g.generate_phase(20_000);
        let writes = phase.iter().filter(|a| a.kind.is_write()).count();
        let total = phase.total_accesses();
        let wf = writes as f64 / total as f64;
        // Masstree is ~50/50 on shared data, ~0.46 overall.
        assert!((0.35..0.60).contains(&wf), "write fraction {wf}");
    }

    #[test]
    #[should_panic(expected = "at least one socket")]
    fn rejects_zero_sockets() {
        let _ = TraceGenerator::new(&Workload::Bfs.profile(), 0, 4, 1);
    }
}
