//! The eight workload profiles, calibrated to the paper's characterization.

use starnuma_types::RwMix;

/// Inclusive range of sharer counts for a page class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SharerCount {
    /// Minimum sockets sharing a page of this class.
    pub min: u16,
    /// Maximum sockets sharing a page of this class.
    pub max: u16,
}

impl SharerCount {
    /// A fixed sharer count.
    pub const fn exactly(n: u16) -> Self {
        SharerCount { min: n, max: n }
    }

    /// An inclusive range of sharer counts.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or exceeds `max`.
    pub fn range(min: u16, max: u16) -> Self {
        assert!(min >= 1 && min <= max, "invalid sharer range {min}..={max}");
        SharerCount { min, max }
    }
}

/// One class of pages with a common sharing behavior: a fraction of the
/// footprint, the fraction of all accesses it attracts, how many sockets
/// share each page, the read/write mix, and whether sharers are clustered
/// within one chassis (graph partitions, warehouse locality) or spread
/// across the machine (vagabond data).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PageClass {
    /// Fraction of the footprint's pages in this class.
    pub page_frac: f64,
    /// Fraction of all memory accesses that target this class.
    pub access_frac: f64,
    /// Number of sockets sharing each page of the class.
    pub sharers: SharerCount,
    /// Read/write mixture of accesses to this class.
    pub rw: RwMix,
    /// If `true` (and the sharer count fits), sharers are chosen within a
    /// single chassis, so an intelligent NUMA policy could contain the
    /// traffic to intra-chassis links.
    pub within_chassis: bool,
}

/// The workloads evaluated in the paper (§IV-E).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Workload {
    /// GAP Single-Source Shortest Paths: the most memory-intensive graph
    /// kernel (LLC MPKI 73), heavily shared frontier and distance arrays.
    Sssp,
    /// GAP Breadth-First Search: bandwidth-bound, Fig. 2's exemplar of
    /// vagabond pages (2 % of pages draw 36 % of accesses, 16 sharers).
    Bfs,
    /// GAP Connected Components.
    Cc,
    /// GAP Triangle Counting: compute-bound, read-only shared graph
    /// (Fig. 13: 60 % of the dataset touched by all 16 sockets).
    Tc,
    /// Masstree key-value store, 100 GB dataset, uniform key popularity,
    /// 50/50 read/write mix.
    Masstree,
    /// TPC-C on the Silo in-memory DBMS, 64 warehouses: strong warehouse
    /// affinity plus globally shared tables.
    Tpcc,
    /// GenomicsBench FM-Index: compute-bound, read-mostly index with
    /// moderate sharing (only 47 % of its migrations go to the pool).
    Fmi,
    /// GenomicsBench Partial-Order Alignment: perfectly NUMA-partitioned;
    /// first-touch placement alone suffices (speedup 1.0× in the paper).
    Poa,
}

impl Workload {
    /// All eight workloads in the paper's presentation order.
    pub const ALL: [Workload; 8] = [
        Workload::Sssp,
        Workload::Bfs,
        Workload::Cc,
        Workload::Tc,
        Workload::Masstree,
        Workload::Tpcc,
        Workload::Fmi,
        Workload::Poa,
    ];

    /// The workload's display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Sssp => "SSSP",
            Workload::Bfs => "BFS",
            Workload::Cc => "CC",
            Workload::Tc => "TC",
            Workload::Masstree => "Masstree",
            Workload::Tpcc => "TPCC",
            Workload::Fmi => "FMI",
            Workload::Poa => "POA",
        }
    }

    /// Builds this workload's profile.
    pub fn profile(self) -> WorkloadProfile {
        let rw = RwMix::new;
        match self {
            // Table III: IPC 0.06 (0.56 single-socket), MPKI 73.
            // Skew: frontier/distance arrays of high-degree vertices.
            Workload::Sssp => skewed(
                0.2,
                0.75,
                WorkloadProfile::new(
                    self,
                    32_768,
                    73.0,
                    0.56,
                    12,
                    vec![
                        PageClass {
                            page_frac: 0.15,
                            access_frac: 0.06,
                            sharers: SharerCount::exactly(1),
                            rw: rw(0.65),
                            within_chassis: true,
                        },
                        PageClass {
                            page_frac: 0.55,
                            access_frac: 0.12,
                            sharers: SharerCount::range(2, 4),
                            rw: rw(0.65),
                            within_chassis: true,
                        },
                        PageClass {
                            page_frac: 0.18,
                            access_frac: 0.12,
                            sharers: SharerCount::range(5, 8),
                            rw: rw(0.65),
                            within_chassis: false,
                        },
                        PageClass {
                            page_frac: 0.08,
                            access_frac: 0.30,
                            sharers: SharerCount::range(9, 15),
                            rw: rw(0.60),
                            within_chassis: false,
                        },
                        PageClass {
                            page_frac: 0.04,
                            access_frac: 0.40,
                            sharers: SharerCount::exactly(16),
                            rw: rw(0.60),
                            within_chassis: false,
                        },
                    ],
                ),
            ),
            // Table III: IPC 0.10 (0.69), MPKI 32. Classes follow Fig. 2.
            Workload::Bfs => skewed(
                0.2,
                0.75,
                WorkloadProfile::new(
                    self,
                    32_768,
                    32.0,
                    0.69,
                    7,
                    vec![
                        PageClass {
                            page_frac: 0.17,
                            access_frac: 0.08,
                            sharers: SharerCount::exactly(1),
                            rw: rw(0.70),
                            within_chassis: true,
                        },
                        PageClass {
                            page_frac: 0.61,
                            access_frac: 0.14,
                            sharers: SharerCount::range(2, 4),
                            rw: rw(0.70),
                            within_chassis: true,
                        },
                        PageClass {
                            page_frac: 0.15,
                            access_frac: 0.10,
                            sharers: SharerCount::range(5, 8),
                            rw: rw(0.70),
                            within_chassis: false,
                        },
                        PageClass {
                            page_frac: 0.05,
                            access_frac: 0.32,
                            sharers: SharerCount::range(9, 15),
                            rw: rw(0.65),
                            within_chassis: false,
                        },
                        PageClass {
                            page_frac: 0.02,
                            access_frac: 0.36,
                            sharers: SharerCount::exactly(16),
                            rw: rw(0.65),
                            within_chassis: false,
                        },
                    ],
                ),
            ),
            // Table III: IPC 0.14 (0.78), MPKI 17.
            Workload::Cc => skewed(
                0.2,
                0.75,
                WorkloadProfile::new(
                    self,
                    32_768,
                    17.0,
                    0.78,
                    4,
                    vec![
                        PageClass {
                            page_frac: 0.20,
                            access_frac: 0.12,
                            sharers: SharerCount::exactly(1),
                            rw: rw(0.70),
                            within_chassis: true,
                        },
                        PageClass {
                            page_frac: 0.55,
                            access_frac: 0.18,
                            sharers: SharerCount::range(2, 4),
                            rw: rw(0.70),
                            within_chassis: true,
                        },
                        PageClass {
                            page_frac: 0.13,
                            access_frac: 0.10,
                            sharers: SharerCount::range(5, 8),
                            rw: rw(0.70),
                            within_chassis: false,
                        },
                        PageClass {
                            page_frac: 0.08,
                            access_frac: 0.25,
                            sharers: SharerCount::range(9, 15),
                            rw: rw(0.70),
                            within_chassis: false,
                        },
                        PageClass {
                            page_frac: 0.04,
                            access_frac: 0.35,
                            sharers: SharerCount::exactly(16),
                            rw: rw(0.70),
                            within_chassis: false,
                        },
                    ],
                ),
            ),
            // Table III: IPC 0.40 (1.7), MPKI 3.2. Fig. 13: read-only, widely
            // shared; latency-sensitive (low MLP), not bandwidth-bound.
            Workload::Tc => skewed(
                0.2,
                0.8,
                WorkloadProfile::new(
                    self,
                    32_768,
                    3.2,
                    1.70,
                    1,
                    vec![
                        PageClass {
                            page_frac: 0.10,
                            access_frac: 0.06,
                            sharers: SharerCount::exactly(1),
                            rw: rw(0.85),
                            within_chassis: true,
                        },
                        PageClass {
                            page_frac: 0.10,
                            access_frac: 0.07,
                            sharers: SharerCount::range(2, 7),
                            rw: rw(0.95),
                            within_chassis: true,
                        },
                        PageClass {
                            page_frac: 0.20,
                            access_frac: 0.17,
                            sharers: SharerCount::range(8, 15),
                            rw: RwMix::READ_ONLY,
                            within_chassis: false,
                        },
                        PageClass {
                            page_frac: 0.60,
                            access_frac: 0.70,
                            sharers: SharerCount::exactly(16),
                            rw: RwMix::READ_ONLY,
                            within_chassis: false,
                        },
                    ],
                ),
            ),
            // Table III: IPC 0.18 (0.89), MPKI 15. Uniform *key* popularity,
            // 50/50 reads/writes — but the trie's internal index nodes are a
            // small, intensely shared hot set (cache craftiness is the whole
            // point of Masstree), hence the strong within-class skew.
            Workload::Masstree => skewed(
                0.1,
                0.55,
                WorkloadProfile::new(
                    self,
                    49_152,
                    15.0,
                    0.89,
                    4,
                    vec![
                        PageClass {
                            page_frac: 0.08,
                            access_frac: 0.06,
                            sharers: SharerCount::exactly(1),
                            rw: rw(0.60),
                            within_chassis: true,
                        },
                        PageClass {
                            page_frac: 0.92,
                            access_frac: 0.94,
                            sharers: SharerCount::exactly(16),
                            rw: rw(0.50),
                            within_chassis: false,
                        },
                    ],
                ),
            ),
            // Table III: IPC 0.41 (1.12), MPKI 4.8. Warehouse partitioning
            // plus hot shared tables (93 % of migrations go to the pool).
            Workload::Tpcc => skewed(
                0.2,
                0.7,
                WorkloadProfile::new(
                    self,
                    16_384,
                    4.8,
                    1.12,
                    1,
                    vec![
                        PageClass {
                            page_frac: 0.55,
                            access_frac: 0.45,
                            sharers: SharerCount::exactly(1),
                            rw: rw(0.55),
                            within_chassis: true,
                        },
                        PageClass {
                            page_frac: 0.15,
                            access_frac: 0.10,
                            sharers: SharerCount::range(2, 4),
                            rw: rw(0.60),
                            within_chassis: true,
                        },
                        PageClass {
                            page_frac: 0.30,
                            access_frac: 0.45,
                            sharers: SharerCount::exactly(16),
                            rw: rw(0.60),
                            within_chassis: false,
                        },
                    ],
                ),
            ),
            // Table III: IPC 0.61 (1.45), MPKI 2.6. Read-mostly index with a
            // mix of chassis-level and global sharing (47 % pool migrations).
            Workload::Fmi => skewed(
                0.3,
                0.7,
                WorkloadProfile::new(
                    self,
                    16_384,
                    2.6,
                    1.45,
                    1,
                    vec![
                        PageClass {
                            page_frac: 0.30,
                            access_frac: 0.20,
                            sharers: SharerCount::exactly(1),
                            rw: rw(0.90),
                            within_chassis: true,
                        },
                        PageClass {
                            page_frac: 0.35,
                            access_frac: 0.35,
                            sharers: SharerCount::range(2, 4),
                            rw: rw(0.95),
                            within_chassis: true,
                        },
                        PageClass {
                            page_frac: 0.20,
                            access_frac: 0.20,
                            sharers: SharerCount::range(5, 8),
                            rw: rw(0.95),
                            within_chassis: false,
                        },
                        PageClass {
                            page_frac: 0.15,
                            access_frac: 0.25,
                            sharers: SharerCount::exactly(16),
                            rw: rw(0.95),
                            within_chassis: false,
                        },
                    ],
                ),
            ),
            // Table III: IPC 0.68 (0.68), MPKI 33. Completely NUMA-local.
            Workload::Poa => WorkloadProfile::new(
                self,
                16_384,
                33.0,
                0.68,
                8,
                vec![PageClass {
                    page_frac: 1.0,
                    access_frac: 1.0,
                    sharers: SharerCount::exactly(1),
                    rw: rw(0.70),
                    within_chassis: true,
                }],
            ),
        }
    }
}

/// Applies a within-class hotness skew to a profile (helper keeping the
/// per-workload tables readable).
fn skewed(hot_page_frac: f64, hot_access_frac: f64, profile: WorkloadProfile) -> WorkloadProfile {
    profile.with_skew(hot_page_frac, hot_access_frac)
}

/// Incremental builder for custom [`WorkloadProfile`]s.
///
/// The eight built-in profiles model the paper's workloads; downstream
/// users characterizing their *own* application build a profile from its
/// measured sharing structure:
///
/// ```
/// use starnuma_trace::{ProfileBuilder, SharerCount, Workload};
/// use starnuma_types::RwMix;
///
/// let profile = ProfileBuilder::new(Workload::Masstree) // closest archetype
///     .footprint_pages(16_384)
///     .mpki(12.0)
///     .ipc_single_socket(1.1)
///     .mlp(4)
///     .class(0.5, 0.3, SharerCount::exactly(1), RwMix::new(0.7), true)
///     .class(0.5, 0.7, SharerCount::range(8, 16), RwMix::new(0.5), false)
///     .skew(0.2, 0.7)
///     .build();
/// assert_eq!(profile.classes.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ProfileBuilder {
    workload: Workload,
    footprint_pages: u64,
    mpki: f64,
    ipc_single_socket: f64,
    mlp: usize,
    classes: Vec<PageClass>,
    skew: Option<(f64, f64)>,
}

impl ProfileBuilder {
    /// Starts a builder. `archetype` labels the profile (results and
    /// reports name workloads by this label).
    pub fn new(archetype: Workload) -> Self {
        ProfileBuilder {
            workload: archetype,
            footprint_pages: 16_384,
            mpki: 10.0,
            ipc_single_socket: 1.0,
            mlp: 4,
            classes: Vec::new(),
            skew: None,
        }
    }

    /// Sets the footprint in 4 KiB pages.
    pub fn footprint_pages(mut self, pages: u64) -> Self {
        self.footprint_pages = pages;
        self
    }

    /// Sets the target LLC misses per kilo-instruction.
    pub fn mpki(mut self, mpki: f64) -> Self {
        self.mpki = mpki;
        self
    }

    /// Sets the single-socket per-core IPC (the core model's base CPI).
    pub fn ipc_single_socket(mut self, ipc: f64) -> Self {
        self.ipc_single_socket = ipc;
        self
    }

    /// Sets the memory-level parallelism (max outstanding misses per core).
    pub fn mlp(mut self, mlp: usize) -> Self {
        self.mlp = mlp;
        self
    }

    /// Appends a page class.
    pub fn class(
        mut self,
        page_frac: f64,
        access_frac: f64,
        sharers: SharerCount,
        rw: RwMix,
        within_chassis: bool,
    ) -> Self {
        self.classes.push(PageClass {
            page_frac,
            access_frac,
            sharers,
            rw,
            within_chassis,
        });
        self
    }

    /// Sets the within-class hotness skew.
    pub fn skew(mut self, hot_page_frac: f64, hot_access_frac: f64) -> Self {
        self.skew = Some((hot_page_frac, hot_access_frac));
        self
    }

    /// Validates and builds the profile.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`WorkloadProfile::new`] (class
    /// fractions must each sum to 1, positive footprint/MLP) and
    /// [`WorkloadProfile::with_skew`].
    pub fn build(self) -> WorkloadProfile {
        let profile = WorkloadProfile::new(
            self.workload,
            self.footprint_pages,
            self.mpki,
            self.ipc_single_socket,
            self.mlp,
            self.classes,
        );
        match self.skew {
            Some((p, a)) => profile.with_skew(p, a),
            None => profile,
        }
    }
}

impl core::fmt::Display for Workload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The statistical description of one workload's memory behavior.
#[derive(Clone, PartialEq, Debug)]
pub struct WorkloadProfile {
    /// Which workload this profile models.
    pub workload: Workload,
    /// Footprint in 4 KiB pages (scaled down with the system, §IV-D).
    pub footprint_pages: u64,
    /// Target LLC misses per kilo-instruction on the 16-socket baseline.
    pub mpki: f64,
    /// Per-core IPC achieved with purely local memory (the parenthesized
    /// single-socket IPC of Table III); sets the core model's base CPI.
    pub ipc_single_socket: f64,
    /// Memory-level parallelism: maximum outstanding LLC misses one core
    /// sustains. High for bandwidth-bound streaming kernels (SSSP, BFS),
    /// low for dependent-access, latency-bound codes (TC, FMI, TPCC).
    pub mlp: usize,
    /// Page sharing classes; `page_frac` and `access_frac` each sum to 1.
    pub classes: Vec<PageClass>,
    /// Within-class hotness skew: the fraction of each class's regions that
    /// are "hot" (e.g. high-degree vertices, hot index nodes).
    pub hot_page_frac: f64,
    /// The fraction of each class's accesses drawn by its hot regions.
    /// Equal to `hot_page_frac` means a uniform distribution.
    pub hot_access_frac: f64,
}

impl WorkloadProfile {
    /// Creates and validates a profile.
    ///
    /// # Panics
    ///
    /// Panics if class fractions do not sum to 1 (±1 %), the footprint is
    /// zero, or `mlp` is zero.
    pub fn new(
        workload: Workload,
        footprint_pages: u64,
        mpki: f64,
        ipc_single_socket: f64,
        mlp: usize,
        classes: Vec<PageClass>,
    ) -> Self {
        assert!(footprint_pages > 0, "footprint must be positive");
        assert!(mlp > 0, "mlp must be positive");
        assert!(!classes.is_empty(), "at least one page class required");
        let page_sum: f64 = classes.iter().map(|c| c.page_frac).sum();
        let access_sum: f64 = classes.iter().map(|c| c.access_frac).sum();
        assert!(
            (page_sum - 1.0).abs() < 0.01,
            "page fractions sum to {page_sum}, expected 1.0"
        );
        assert!(
            (access_sum - 1.0).abs() < 0.01,
            "access fractions sum to {access_sum}, expected 1.0"
        );
        WorkloadProfile {
            workload,
            footprint_pages,
            mpki,
            ipc_single_socket,
            mlp,
            classes,
            hot_page_frac: 0.2,
            hot_access_frac: 0.2, // uniform by default
        }
    }

    /// Sets the within-class hotness skew: `hot_page_frac` of each class's
    /// regions draw `hot_access_frac` of its accesses.
    ///
    /// # Panics
    ///
    /// Panics if either fraction is outside `(0, 1)` or the skew is inverted
    /// (`hot_access_frac < hot_page_frac`).
    pub fn with_skew(mut self, hot_page_frac: f64, hot_access_frac: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&hot_page_frac) && hot_page_frac > 0.0,
            "hot_page_frac must be in (0, 1)"
        );
        assert!(
            (hot_page_frac..1.0).contains(&hot_access_frac),
            "hot_access_frac must be in [hot_page_frac, 1)"
        );
        self.hot_page_frac = hot_page_frac;
        self.hot_access_frac = hot_access_frac;
        self
    }

    /// Base cycles-per-instruction of the core model (the inverse of the
    /// single-socket IPC: it folds in compute and local-memory effects).
    pub fn base_cpi(&self) -> f64 {
        1.0 / self.ipc_single_socket
    }

    /// Mean instructions between two generated LLC misses.
    pub fn instructions_per_miss(&self) -> f64 {
        1000.0 / self.mpki
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for w in Workload::ALL {
            let p = w.profile();
            assert_eq!(p.workload, w);
            assert!(p.mpki > 0.0);
            assert!(p.base_cpi() > 0.0);
            assert!(!w.name().is_empty());
        }
    }

    #[test]
    fn table3_mpki_ordering_preserved() {
        // SSSP > POA > BFS > CC > Masstree > TPCC > TC > FMI.
        let mpki: Vec<f64> = [
            Workload::Sssp,
            Workload::Poa,
            Workload::Bfs,
            Workload::Cc,
            Workload::Masstree,
            Workload::Tpcc,
            Workload::Tc,
            Workload::Fmi,
        ]
        .iter()
        .map(|w| w.profile().mpki)
        .collect();
        for pair in mpki.windows(2) {
            assert!(pair[0] > pair[1], "MPKI ordering violated: {mpki:?}");
        }
    }

    #[test]
    fn bfs_matches_fig2_shape() {
        let p = Workload::Bfs.profile();
        // 17 % single-sharer pages; 2 % pages shared by all 16 sockets
        // drawing 36 % of accesses (Fig. 2).
        let private = &p.classes[0];
        assert_eq!(private.sharers, SharerCount::exactly(1));
        assert!((private.page_frac - 0.17).abs() < 1e-9);
        let all16 = p.classes.last().unwrap();
        assert_eq!(all16.sharers, SharerCount::exactly(16));
        assert!((all16.page_frac - 0.02).abs() < 1e-9);
        assert!((all16.access_frac - 0.36).abs() < 1e-9);
        // >8-sharer pages draw 68 % of accesses.
        let wide: f64 = p
            .classes
            .iter()
            .filter(|c| c.sharers.min >= 9)
            .map(|c| c.access_frac)
            .sum();
        assert!((wide - 0.68).abs() < 1e-9);
    }

    #[test]
    fn tc_matches_fig13_shape() {
        let p = Workload::Tc.profile();
        // 60 % of the dataset touched by 16 sockets, 80 % by 8+ (Fig. 13),
        // and the shared classes are read-only.
        let by16: f64 = p
            .classes
            .iter()
            .filter(|c| c.sharers.min == 16)
            .map(|c| c.page_frac)
            .sum();
        assert!((by16 - 0.60).abs() < 1e-9);
        let by8plus: f64 = p
            .classes
            .iter()
            .filter(|c| c.sharers.min >= 8)
            .map(|c| c.page_frac)
            .sum();
        assert!((by8plus - 0.80).abs() < 1e-9);
        for c in p.classes.iter().filter(|c| c.sharers.min >= 8) {
            assert_eq!(c.rw, RwMix::READ_ONLY);
        }
    }

    #[test]
    fn poa_is_fully_private() {
        let p = Workload::Poa.profile();
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.classes[0].sharers, SharerCount::exactly(1));
        // POA is NUMA-insensitive: single- and 16-socket IPC match (Table III).
        assert_eq!(p.ipc_single_socket, 0.68);
    }

    #[test]
    fn sharer_count_constructors() {
        assert_eq!(SharerCount::exactly(4), SharerCount { min: 4, max: 4 });
        assert_eq!(SharerCount::range(2, 4), SharerCount { min: 2, max: 4 });
    }

    #[test]
    #[should_panic(expected = "invalid sharer range")]
    fn sharer_range_rejects_inverted() {
        let _ = SharerCount::range(5, 2);
    }

    #[test]
    #[should_panic(expected = "page fractions sum")]
    fn profile_rejects_bad_fractions() {
        let _ = WorkloadProfile::new(
            Workload::Bfs,
            1024,
            10.0,
            1.0,
            4,
            vec![PageClass {
                page_frac: 0.5,
                access_frac: 1.0,
                sharers: SharerCount::exactly(1),
                rw: RwMix::default(),
                within_chassis: true,
            }],
        );
    }

    #[test]
    fn derived_rates() {
        let p = Workload::Bfs.profile();
        assert!((p.instructions_per_miss() - 31.25).abs() < 1e-9);
        assert!((p.base_cpi() - 1.0 / 0.69).abs() < 1e-9);
    }
}
