//! Access-pattern analyzers that regenerate Fig. 2 and Fig. 13 of the paper:
//! distribution of page sharing degree, and distribution of accesses over
//! sharing-degree bins, split into read-only and read-write pages.

use std::collections::BTreeMap;

use starnuma_types::PageId;

use crate::generator::PhaseTrace;

/// One sharing-degree bin of the Fig. 2 / Fig. 13 histograms.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct SharingBin {
    /// Fraction of touched pages whose observed sharer count falls in the
    /// bin (Fig. 2a / Fig. 13a).
    pub page_frac: f64,
    /// Fraction of all accesses that target pages in the bin
    /// (Fig. 2b / Fig. 13b).
    pub access_frac: f64,
    /// Of the bin's accesses, the fraction targeting read-write pages
    /// (pages that saw at least one store).
    pub rw_access_frac: f64,
}

/// Sharing-degree histogram over the paper's bins: 1, 2–4, 5–8, 9–15, 16
/// sharers.
#[derive(Clone, PartialEq, Debug)]
pub struct SharingHistogram {
    bins: [SharingBin; 5],
    /// Number of distinct pages observed.
    pub touched_pages: u64,
    /// Total accesses analyzed.
    pub total_accesses: u64,
}

impl SharingHistogram {
    /// Bin labels, in order.
    pub const LABELS: [&'static str; 5] = ["1", "2-4", "5-8", "9-15", "16"];

    /// Computes the histogram from a phase trace. The sharer count of a page
    /// is the number of distinct *sockets* that accessed it in the trace
    /// (LLC-missing operations, as in the paper's Fig. 2 caption).
    pub fn from_trace(trace: &PhaseTrace, cores_per_socket: usize) -> Self {
        struct PageObs {
            sockets: u32,
            accesses: u64,
            written: bool,
        }
        let mut pages: BTreeMap<PageId, PageObs> = BTreeMap::new();
        let mut total = 0u64;
        for a in trace.iter() {
            let socket = a.core.socket(cores_per_socket);
            let e = pages.entry(a.addr.page()).or_insert(PageObs {
                sockets: 0,
                accesses: 0,
                written: false,
            });
            e.sockets |= 1u32 << socket.index();
            e.accesses += 1;
            e.written |= a.kind.is_write();
            total += 1;
        }
        let mut bins = [SharingBin::default(); 5];
        let mut bin_rw_accesses = [0u64; 5];
        let mut bin_accesses = [0u64; 5];
        let mut bin_pages = [0u64; 5];
        for obs in pages.values() {
            let sharers = obs.sockets.count_ones();
            let b = Self::bin_of(sharers);
            bin_pages[b] += 1;
            bin_accesses[b] += obs.accesses;
            if obs.written {
                bin_rw_accesses[b] += obs.accesses;
            }
        }
        let touched = pages.len() as u64;
        for i in 0..5 {
            bins[i].page_frac = if touched == 0 {
                0.0
            } else {
                bin_pages[i] as f64 / touched as f64
            };
            bins[i].access_frac = if total == 0 {
                0.0
            } else {
                bin_accesses[i] as f64 / total as f64
            };
            bins[i].rw_access_frac = if bin_accesses[i] == 0 {
                0.0
            } else {
                bin_rw_accesses[i] as f64 / bin_accesses[i] as f64
            };
        }
        SharingHistogram {
            bins,
            touched_pages: touched,
            total_accesses: total,
        }
    }

    /// Like [`SharingHistogram::from_trace`], but bins each page by its
    /// *assigned* sharer count (`sharers_of`) instead of the sharers observed
    /// in the window.
    ///
    /// The paper's Fig. 2/Fig. 13 are measured over one billion instructions
    /// per core; at the scaled-down window lengths used here, low-MPKI
    /// workloads do not touch every page from every sharing socket, so the
    /// observed histogram under-reports sharing degree. Using the
    /// generator's ground-truth sharer sets recovers the long-run
    /// distribution the paper reports.
    pub fn from_trace_with_truth(
        trace: &PhaseTrace,
        mut sharers_of: impl FnMut(PageId) -> u32,
    ) -> Self {
        struct PageObs {
            accesses: u64,
            written: bool,
        }
        let mut pages: BTreeMap<PageId, PageObs> = BTreeMap::new();
        let mut total = 0u64;
        for a in trace.iter() {
            let e = pages.entry(a.addr.page()).or_insert(PageObs {
                accesses: 0,
                written: false,
            });
            e.accesses += 1;
            e.written |= a.kind.is_write();
            total += 1;
        }
        let mut bins = [SharingBin::default(); 5];
        let mut bin_rw_accesses = [0u64; 5];
        let mut bin_accesses = [0u64; 5];
        let mut bin_pages = [0u64; 5];
        for (page, obs) in &pages {
            let b = Self::bin_of(sharers_of(*page));
            bin_pages[b] += 1;
            bin_accesses[b] += obs.accesses;
            if obs.written {
                bin_rw_accesses[b] += obs.accesses;
            }
        }
        let touched = pages.len() as u64;
        for i in 0..5 {
            bins[i].page_frac = if touched == 0 {
                0.0
            } else {
                bin_pages[i] as f64 / touched as f64
            };
            bins[i].access_frac = if total == 0 {
                0.0
            } else {
                bin_accesses[i] as f64 / total as f64
            };
            bins[i].rw_access_frac = if bin_accesses[i] == 0 {
                0.0
            } else {
                bin_rw_accesses[i] as f64 / bin_accesses[i] as f64
            };
        }
        SharingHistogram {
            bins,
            touched_pages: touched,
            total_accesses: total,
        }
    }

    fn bin_of(sharers: u32) -> usize {
        match sharers {
            0 | 1 => 0,
            2..=4 => 1,
            5..=8 => 2,
            9..=15 => 3,
            _ => 4,
        }
    }

    /// The five bins, in [`SharingHistogram::LABELS`] order.
    pub fn bins(&self) -> &[SharingBin; 5] {
        &self.bins
    }

    /// Fraction of accesses to pages with more than eight sharers (the
    /// paper's "68 % of all memory accesses" observation for BFS).
    pub fn wide_access_frac(&self) -> f64 {
        self.bins[3].access_frac + self.bins[4].access_frac
    }

    /// Fraction of pages accessed by a single socket (17 % for BFS).
    pub fn private_page_frac(&self) -> f64 {
        self.bins[0].page_frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::profile::Workload;

    fn histogram(w: Workload, instr: u64) -> SharingHistogram {
        let mut g = TraceGenerator::new(&w.profile(), 16, 4, 11);
        let t = g.generate_phase(instr);
        SharingHistogram::from_trace(&t, 4)
    }

    #[test]
    fn bins_sum_to_one() {
        let h = histogram(Workload::Bfs, 40_000);
        let pages: f64 = h.bins().iter().map(|b| b.page_frac).sum();
        let accesses: f64 = h.bins().iter().map(|b| b.access_frac).sum();
        assert!((pages - 1.0).abs() < 1e-9);
        assert!((accesses - 1.0).abs() < 1e-9);
        assert!(h.touched_pages > 0);
    }

    #[test]
    fn bfs_reproduces_fig2_concentration() {
        // Long enough trace for observed sharing to approach the profile.
        let h = histogram(Workload::Bfs, 120_000);
        // Fig. 2: >8-sharer pages draw ~68 % of accesses.
        assert!(
            (h.wide_access_frac() - 0.68).abs() < 0.10,
            "wide access frac {}",
            h.wide_access_frac()
        );
        // 16-sharer accesses ≈ 36 %.
        assert!(
            (h.bins()[4].access_frac - 0.36).abs() < 0.08,
            "16-sharer access frac {}",
            h.bins()[4].access_frac
        );
    }

    #[test]
    fn tc_is_read_only_in_wide_bins() {
        // TC's low MPKI means a scaled window cannot observe full sharing;
        // use the generator's ground-truth sharer sets (see
        // `from_trace_with_truth`'s documentation).
        let mut g = TraceGenerator::new(&Workload::Tc.profile(), 16, 4, 11);
        let t = g.generate_phase(200_000);
        let h = SharingHistogram::from_trace_with_truth(&t, |p| g.page_sharers(p).len() as u32);
        // Fig. 13: widely shared TC pages are read-only and draw most accesses.
        assert!(h.bins()[4].rw_access_frac < 0.05);
        assert!(
            (h.bins()[4].access_frac - 0.70).abs() < 0.08,
            "16-sharer access frac {}",
            h.bins()[4].access_frac
        );
    }

    #[test]
    fn poa_is_all_private() {
        let h = histogram(Workload::Poa, 40_000);
        assert!((h.private_page_frac() - 1.0).abs() < 1e-9);
        assert!((h.bins()[0].access_frac - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bfs_writes_make_wide_pages_read_write() {
        let h = histogram(Workload::Bfs, 120_000);
        // Fig. 2b: most wide-sharing BFS accesses hit read-write pages.
        assert!(h.bins()[4].rw_access_frac > 0.9);
    }

    #[test]
    fn empty_trace_yields_zero_histogram() {
        let t = PhaseTrace::default();
        let h = SharingHistogram::from_trace(&t, 4);
        assert_eq!(h.total_accesses, 0);
        assert_eq!(h.touched_pages, 0);
        assert_eq!(h.wide_access_frac(), 0.0);
    }

    #[test]
    fn bin_boundaries() {
        assert_eq!(SharingHistogram::bin_of(1), 0);
        assert_eq!(SharingHistogram::bin_of(2), 1);
        assert_eq!(SharingHistogram::bin_of(4), 1);
        assert_eq!(SharingHistogram::bin_of(5), 2);
        assert_eq!(SharingHistogram::bin_of(8), 2);
        assert_eq!(SharingHistogram::bin_of(9), 3);
        assert_eq!(SharingHistogram::bin_of(15), 3);
        assert_eq!(SharingHistogram::bin_of(16), 4);
    }
}
