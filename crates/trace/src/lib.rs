//! Synthetic workload traces: the reproduction's substitute for step A of
//! the paper's methodology (§IV-A1).
//!
//! The paper collects Pin-based instruction and memory traces of GAP graph
//! workloads, GenomicsBench pipelines, Masstree, and Silo-TPCC on real
//! hardware. Those traces (and that hardware) are not available here, so
//! this crate generates *statistically equivalent* memory-access streams:
//! each of the eight workloads is described by a [`WorkloadProfile`] whose
//! page-sharing-degree distribution, access-concentration skew, read/write
//! mix, LLC miss intensity (MPKI) and base CPI are calibrated to the paper's
//! published characterization (Table III, Fig. 2, Fig. 13).
//!
//! The decisive property for StarNUMA is *which fraction of accesses target
//! pages shared by how many sockets* — that is exactly what the paper's own
//! motivation section uses to characterize these workloads, and what the
//! profiles encode. Pages are assigned to sharing classes in contiguous runs
//! (mirroring real data-structure layout) so that 512 KiB monitoring regions
//! remain mostly homogeneous, as the paper's region-granularity mechanism
//! implicitly assumes.
//!
//! # Examples
//!
//! ```
//! use starnuma_trace::{TraceGenerator, Workload};
//!
//! let profile = Workload::Bfs.profile();
//! let mut generator = TraceGenerator::new(&profile, 16, 4, 42);
//! let phase = generator.generate_phase(10_000);
//! assert_eq!(phase.per_core.len(), 64);
//! assert!(!phase.per_core[0].is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod file;
mod generator;
mod profile;
pub mod stats;

pub use file::{read_phase, read_run, write_phase, write_run, RunHeader};
pub use generator::{PhaseTrace, TraceGenerator};
pub use profile::{PageClass, ProfileBuilder, SharerCount, Workload, WorkloadProfile};
pub use stats::{SharingBin, SharingHistogram};
