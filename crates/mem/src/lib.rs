//! Memory-system building blocks: bandwidth servers and DRAM channel models.
//!
//! The simulator models every bandwidth-limited resource — UPI links,
//! NUMALinks, CXL links, DRAM channels — as FIFO servers: a transfer of `b`
//! bytes occupies the server for `b / bandwidth` cycles, and later transfers
//! queue behind it. Queuing delay therefore *emerges* from offered load, which
//! is how the paper's "Contention Delay" AMAT component (Fig. 8b) arises.
//!
//! Two levels of detail are provided:
//!
//! * [`FifoServer`]: a single-queue bandwidth server (used for links);
//! * [`DramChannel`] / [`MemoryModule`]: a banked DRAM channel with a shared
//!   data bus, and an address-interleaved group of channels (used for socket
//!   memory and the pool's multi-channel MHD, §III-A).
//!
//! Both add **contention delay only**: the fixed (unloaded) access latency is
//! accounted analytically by `starnuma-topology`'s latency model, so the
//! paper's unloaded numbers are preserved exactly at zero load.
//!
//! # Examples
//!
//! ```
//! use starnuma_mem::FifoServer;
//! use starnuma_types::{Cycles, GbPerSec};
//!
//! let mut link = FifoServer::new(GbPerSec::new(24.0)); // 10 B/cycle
//! let first = link.enqueue(Cycles::new(0), 64);
//! assert_eq!(first, Cycles::ZERO); // empty server: no queuing
//! let second = link.enqueue(Cycles::new(0), 64);
//! assert_eq!(second, Cycles::new(7)); // waits behind the first transfer
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dram;
mod server;

pub use dram::{DramChannel, DramTimings, MemoryModule};
pub use server::{FifoServer, ServerStats};
