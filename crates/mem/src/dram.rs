//! Banked DRAM channel and interleaved multi-channel module models.

use starnuma_types::{BlockAddr, Cycles, GbPerSec};

use crate::server::{FifoServer, ServerStats};

/// DRAM bank/bus timing parameters.
///
/// Only parameters that create *contention* are modeled — fixed access
/// latency is part of the topology latency model's 80 ns `mem_base`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DramTimings {
    /// Number of banks per channel.
    pub banks: usize,
    /// Bank occupancy of a row-buffer hit (cycles the bank is unavailable).
    pub bank_hit_occupancy: Cycles,
    /// Bank occupancy of a row-buffer miss (precharge + activate + CAS).
    pub bank_miss_occupancy: Cycles,
    /// Number of consecutive blocks mapped to the same DRAM row.
    pub blocks_per_row: u64,
}

impl DramTimings {
    /// DDR5-4800-like timings at the simulator's 2.4 GHz timebase:
    /// 32 banks (8 bank groups × 4), ~16 ns hit / ~45 ns (tRC) miss
    /// occupancy, 2 KiB rows. Throughput is bank-limited for random rows
    /// (32 banks / 108 cycles ≈ 45 GB/s) and bus-limited for streaming.
    pub fn ddr5_4800() -> Self {
        DramTimings {
            banks: 32,
            bank_hit_occupancy: Cycles::new(38),   // ~16 ns
            bank_miss_occupancy: Cycles::new(108), // ~45 ns (tRC)
            blocks_per_row: 32,                    // 2 KiB rows of 64 B blocks
        }
    }
}

impl Default for DramTimings {
    fn default() -> Self {
        Self::ddr5_4800()
    }
}

/// One DRAM channel: a shared data bus (FIFO bandwidth server) plus per-bank
/// occupancy with a last-row row-buffer model.
///
/// [`DramChannel::access`] returns the *contention delay* the access suffers
/// (bank busy and/or bus busy); the fixed DRAM access latency is part of the
/// analytic unloaded latency.
#[derive(Clone, Debug)]
pub struct DramChannel {
    bus: FifoServer,
    timings: DramTimings,
    bank_busy_until: Vec<Cycles>,
    bank_open_row: Vec<Option<u64>>,
    row_hits: u64,
    row_misses: u64,
}

impl DramChannel {
    /// Creates an idle channel with the given data-bus bandwidth and timings.
    pub fn new(bandwidth: GbPerSec, timings: DramTimings) -> Self {
        DramChannel {
            bus: FifoServer::new(bandwidth),
            bank_busy_until: vec![Cycles::ZERO; timings.banks],
            bank_open_row: vec![None; timings.banks],
            timings,
            row_hits: 0,
            row_misses: 0,
        }
    }

    /// Services a 64 B block access arriving at `now`; returns its contention
    /// delay.
    pub fn access(&mut self, now: Cycles, block: BlockAddr) -> Cycles {
        let row = block.bfn() / self.timings.blocks_per_row;
        let bank = (row as usize) % self.timings.banks;
        let hit = self.bank_open_row[bank] == Some(row);
        if hit {
            self.row_hits += 1;
        } else {
            self.row_misses += 1;
        }
        let occupancy = if hit {
            self.timings.bank_hit_occupancy
        } else {
            self.timings.bank_miss_occupancy
        };
        // Wait for the bank, then for the data bus.
        let bank_ready = self.bank_busy_until[bank].max(now);
        let bank_wait = bank_ready - now;
        self.bank_busy_until[bank] = bank_ready + occupancy;
        self.bank_open_row[bank] = Some(row);
        let bus_wait = self.bus.enqueue(bank_ready, 64);
        bank_wait + bus_wait
    }

    /// Row-buffer hit rate observed so far (0 if no accesses).
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Data-bus statistics.
    pub fn bus_stats(&self) -> ServerStats {
        self.bus.stats()
    }

    /// Resets the channel to idle and clears statistics.
    pub fn reset(&mut self) {
        self.bus.reset();
        self.bank_busy_until.fill(Cycles::ZERO);
        self.bank_open_row.fill(None);
        self.row_hits = 0;
        self.row_misses = 0;
    }
}

/// A group of DRAM channels with block-address interleaving: one socket's
/// local memory (1 channel scaled down / 6 full scale) or the pool's MHD
/// (2 channels scaled down / 16 full scale, §III-A).
#[derive(Clone, Debug)]
pub struct MemoryModule {
    channels: Vec<DramChannel>,
}

impl MemoryModule {
    /// Creates a module of `channels` identical DRAM channels, splitting
    /// `total_bandwidth` evenly among them.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize, total_bandwidth: GbPerSec, timings: DramTimings) -> Self {
        assert!(channels > 0, "a memory module needs at least one channel");
        let per_channel = total_bandwidth / channels as f64;
        MemoryModule {
            channels: (0..channels)
                .map(|_| DramChannel::new(per_channel, timings))
                .collect(),
        }
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Services a block access arriving at `now`; returns its contention
    /// delay. Blocks are interleaved across channels.
    pub fn access(&mut self, now: Cycles, block: BlockAddr) -> Cycles {
        let idx = (block.bfn() % self.channels.len() as u64) as usize;
        self.channels[idx].access(now, block)
    }

    /// Aggregated data-bus statistics across all channels.
    pub fn stats(&self) -> ServerStats {
        let mut agg = ServerStats::default();
        for ch in &self.channels {
            let s = ch.bus_stats();
            agg.transfers += s.transfers;
            agg.bytes += s.bytes;
            agg.busy_cycles += s.busy_cycles;
            agg.wait_cycles += s.wait_cycles;
        }
        agg
    }

    /// Resets all channels.
    pub fn reset(&mut self) {
        for ch in &mut self.channels {
            ch.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> DramChannel {
        DramChannel::new(GbPerSec::new(25.0), DramTimings::ddr5_4800())
    }

    #[test]
    fn first_access_only_pays_bus_if_idle() {
        let mut ch = channel();
        // Idle bank and bus: zero contention delay.
        assert_eq!(ch.access(Cycles::new(0), BlockAddr::new(0)), Cycles::ZERO);
    }

    #[test]
    fn same_bank_accesses_serialize() {
        let mut ch = channel();
        ch.access(Cycles::new(0), BlockAddr::new(0));
        // Same row → same bank: second access waits for the bank (hit occ. is
        // charged to the *first* access's occupancy window).
        let wait = ch.access(Cycles::new(0), BlockAddr::new(1));
        assert!(wait > Cycles::ZERO);
    }

    #[test]
    fn different_banks_overlap() {
        let mut ch = channel();
        ch.access(Cycles::new(0), BlockAddr::new(0)); // row 0 → bank 0
        let wait = ch.access(Cycles::new(0), BlockAddr::new(32)); // row 1 → bank 1
                                                                  // Only possible wait is the shared bus, which is cheaper than a bank.
        assert!(wait < DramTimings::ddr5_4800().bank_hit_occupancy);
    }

    #[test]
    fn row_buffer_hits_tracked() {
        let mut ch = channel();
        ch.access(Cycles::new(0), BlockAddr::new(0)); // miss (cold)
        ch.access(Cycles::new(1000), BlockAddr::new(1)); // hit (same row)
        ch.access(Cycles::new(2000), BlockAddr::new(32 * 16)); // same bank, new row: miss
        assert!((ch.row_hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_channel() {
        let mut ch = channel();
        ch.access(Cycles::new(0), BlockAddr::new(0));
        ch.reset();
        assert_eq!(ch.row_hit_rate(), 0.0);
        assert_eq!(ch.bus_stats().transfers, 0);
    }

    #[test]
    fn module_interleaves_blocks() {
        let mut m = MemoryModule::new(2, GbPerSec::new(50.0), DramTimings::ddr5_4800());
        assert_eq!(m.channel_count(), 2);
        // Consecutive blocks land on different channels: both see idle state.
        assert_eq!(m.access(Cycles::new(0), BlockAddr::new(0)), Cycles::ZERO);
        assert_eq!(m.access(Cycles::new(0), BlockAddr::new(1)), Cycles::ZERO);
        assert_eq!(m.stats().transfers, 2);
    }

    #[test]
    fn module_aggregates_stats_and_resets() {
        let mut m = MemoryModule::new(2, GbPerSec::new(50.0), DramTimings::ddr5_4800());
        for i in 0..10 {
            m.access(Cycles::new(0), BlockAddr::new(i));
        }
        assert_eq!(m.stats().transfers, 10);
        assert_eq!(m.stats().bytes, 640);
        m.reset();
        assert_eq!(m.stats().transfers, 0);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn module_rejects_zero_channels() {
        let _ = MemoryModule::new(0, GbPerSec::new(25.0), DramTimings::ddr5_4800());
    }

    #[test]
    fn heavy_load_builds_queuing() {
        let mut m = MemoryModule::new(1, GbPerSec::new(25.0), DramTimings::ddr5_4800());
        let mut total_wait = Cycles::ZERO;
        for i in 0..1000u64 {
            // All arriving at once: deep queue must form.
            total_wait += m.access(Cycles::new(0), BlockAddr::new(i * 64));
        }
        assert!(total_wait.raw() > 100_000, "expected heavy queuing");
    }
}
