//! A FIFO bandwidth server: the primitive behind every link and channel.

use starnuma_obs::{MetricsFrame, Observe};
use starnuma_types::{Cycles, GbPerSec};

/// Cumulative utilization statistics of a [`FifoServer`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServerStats {
    /// Total transfers serviced.
    pub transfers: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Total cycles the server was busy transferring.
    pub busy_cycles: Cycles,
    /// Total cycles transfers spent waiting for the server.
    pub wait_cycles: Cycles,
}

impl ServerStats {
    /// Mean queuing delay per transfer in cycles (0 if no transfers).
    pub fn mean_wait(&self) -> f64 {
        if self.transfers == 0 {
            0.0
        } else {
            self.wait_cycles.raw() as f64 / self.transfers as f64
        }
    }

    /// Server utilization over `elapsed` (0 if `elapsed` is zero).
    pub fn utilization(&self, elapsed: Cycles) -> f64 {
        if elapsed == Cycles::ZERO {
            0.0
        } else {
            self.busy_cycles.raw() as f64 / elapsed.raw() as f64
        }
    }
}

impl Observe for ServerStats {
    fn observe(&self, prefix: &str, frame: &mut MetricsFrame) {
        frame.add_counter(&format!("{prefix}.transfers"), self.transfers);
        frame.add_counter(&format!("{prefix}.bytes"), self.bytes);
        frame.add_counter(&format!("{prefix}.busy_cycles"), self.busy_cycles.raw());
        frame.add_counter(&format!("{prefix}.wait_cycles"), self.wait_cycles.raw());
    }
}

/// A work-conserving FIFO server with a fixed per-direction bandwidth.
///
/// A transfer of `b` bytes occupies the server for `ceil(b / rate)` cycles;
/// a transfer arriving while the server is busy waits until it drains. The
/// returned value of [`FifoServer::enqueue`] is that *waiting time* — the
/// contention delay the transfer suffers before its (separately accounted)
/// propagation latency.
///
/// Transfers must be enqueued in nondecreasing arrival-time order per server;
/// the discrete-event simulator guarantees this by processing events in
/// timestamp order.
#[derive(Clone, Debug)]
pub struct FifoServer {
    bandwidth: GbPerSec,
    busy_until: Cycles,
    stats: ServerStats,
}

impl FifoServer {
    /// Creates an idle server with the given per-direction bandwidth.
    pub fn new(bandwidth: GbPerSec) -> Self {
        FifoServer {
            bandwidth,
            busy_until: Cycles::ZERO,
            stats: ServerStats::default(),
        }
    }

    /// Returns the configured bandwidth.
    pub fn bandwidth(&self) -> GbPerSec {
        self.bandwidth
    }

    /// Returns the time the server becomes idle.
    pub fn busy_until(&self) -> Cycles {
        self.busy_until
    }

    /// Enqueues a transfer of `bytes` arriving at `now` and returns the
    /// queuing delay it suffers (0 when the server is idle).
    pub fn enqueue(&mut self, now: Cycles, bytes: u64) -> Cycles {
        let start = self.busy_until.max(now);
        let wait = start - now;
        let occupancy = self.bandwidth.service_cycles(bytes);
        self.busy_until = start + occupancy;
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        self.stats.busy_cycles += occupancy;
        self.stats.wait_cycles += wait;
        wait
    }

    /// Returns cumulative statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Resets the server to idle and clears statistics (used between
    /// simulation phases).
    pub fn reset(&mut self) {
        self.busy_until = Cycles::ZERO;
        self.stats = ServerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> FifoServer {
        // 24 GB/s at 2.4 GHz = 10 bytes/cycle → 64 B occupies 7 cycles.
        FifoServer::new(GbPerSec::new(24.0))
    }

    #[test]
    fn idle_server_no_wait() {
        let mut s = server();
        assert_eq!(s.enqueue(Cycles::new(100), 64), Cycles::ZERO);
        assert_eq!(s.busy_until(), Cycles::new(107));
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut s = server();
        assert_eq!(s.enqueue(Cycles::new(0), 64), Cycles::ZERO);
        assert_eq!(s.enqueue(Cycles::new(0), 64), Cycles::new(7));
        assert_eq!(s.enqueue(Cycles::new(0), 64), Cycles::new(14));
        assert_eq!(s.busy_until(), Cycles::new(21));
    }

    #[test]
    fn spaced_transfers_do_not_queue() {
        let mut s = server();
        assert_eq!(s.enqueue(Cycles::new(0), 64), Cycles::ZERO);
        assert_eq!(s.enqueue(Cycles::new(50), 64), Cycles::ZERO);
        assert_eq!(s.busy_until(), Cycles::new(57));
    }

    #[test]
    fn partial_overlap() {
        let mut s = server();
        s.enqueue(Cycles::new(0), 64); // busy until 7
        assert_eq!(s.enqueue(Cycles::new(4), 64), Cycles::new(3));
    }

    #[test]
    fn stats_accumulate() {
        let mut s = server();
        s.enqueue(Cycles::new(0), 64);
        s.enqueue(Cycles::new(0), 64);
        let st = s.stats();
        assert_eq!(st.transfers, 2);
        assert_eq!(st.bytes, 128);
        assert_eq!(st.busy_cycles, Cycles::new(14));
        assert_eq!(st.wait_cycles, Cycles::new(7));
        assert_eq!(st.mean_wait(), 3.5);
        assert_eq!(st.utilization(Cycles::new(28)), 0.5);
    }

    #[test]
    fn reset_clears_state() {
        let mut s = server();
        s.enqueue(Cycles::new(0), 64);
        s.reset();
        assert_eq!(s.busy_until(), Cycles::ZERO);
        assert_eq!(s.stats().transfers, 0);
        assert_eq!(s.stats().mean_wait(), 0.0);
    }

    #[test]
    fn utilization_handles_zero_elapsed() {
        let s = server();
        assert_eq!(s.stats().utilization(Cycles::ZERO), 0.0);
    }

    #[test]
    fn wait_scales_inversely_with_bandwidth() {
        let mut slow = FifoServer::new(GbPerSec::new(3.0)); // scaled UPI
        let mut fast = FifoServer::new(GbPerSec::new(12.0)); // 4× NUMALink bundle
        slow.enqueue(Cycles::new(0), 64);
        fast.enqueue(Cycles::new(0), 64);
        let w_slow = slow.enqueue(Cycles::new(0), 64);
        let w_fast = fast.enqueue(Cycles::new(0), 64);
        assert!(w_slow.raw() > 3 * w_fast.raw());
    }
}
