//! Terminal bar charts for harness output.
//!
//! The paper's figures are bar charts; these helpers render the regenerated
//! data as horizontal ASCII bars so `cargo bench` output is readable as
//! figures, not just tables.

/// One bar of a chart.
#[derive(Clone, Debug)]
pub struct Bar {
    /// Row label (workload name, configuration, ...).
    pub label: String,
    /// Bar value.
    pub value: f64,
    /// Short value annotation printed after the bar (e.g. `1.54x`).
    pub annotation: String,
}

impl Bar {
    /// Creates a bar with a formatted annotation.
    pub fn new(label: impl Into<String>, value: f64, annotation: impl Into<String>) -> Self {
        Bar {
            label: label.into(),
            value,
            annotation: annotation.into(),
        }
    }
}

/// Renders a horizontal bar chart into a `String`.
///
/// Bars are scaled so the maximum value spans `width` cells; a `baseline`
/// (e.g. speedup 1.0) is drawn as a `|` marker inside each bar when it
/// falls within range. Non-finite or negative values render as empty bars.
///
/// # Examples
///
/// ```
/// use starnuma::chart::{render_bars, Bar};
///
/// let chart = render_bars(
///     &[
///         Bar::new("BFS", 1.71, "1.71x"),
///         Bar::new("POA", 1.00, "1.00x"),
///     ],
///     30,
///     Some(1.0),
/// );
/// assert!(chart.contains("BFS"));
/// assert!(chart.lines().count() >= 2);
/// ```
pub fn render_bars(bars: &[Bar], width: usize, baseline: Option<f64>) -> String {
    let width = width.max(8);
    let max = bars
        .iter()
        .map(|b| if b.value.is_finite() { b.value } else { 0.0 })
        .fold(0.0f64, f64::max)
        .max(baseline.unwrap_or(0.0));
    let label_w = bars.iter().map(|b| b.label.len()).max().unwrap_or(0);
    let mut out = String::new();
    for bar in bars {
        let v = if bar.value.is_finite() && bar.value > 0.0 {
            bar.value
        } else {
            0.0
        };
        let filled = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        let mut cells: Vec<char> = vec!['#'; filled.min(width)];
        cells.resize(width, ' ');
        if let Some(base) = baseline {
            if base > 0.0 && base <= max {
                let pos = ((base / max) * width as f64).round() as usize;
                let pos = pos.min(width - 1);
                cells[pos] = '|';
            }
        }
        let bar_str: String = cells.into_iter().collect();
        out.push_str(&format!(
            "{:<label_w$} {} {}\n",
            bar.label, bar_str, bar.annotation
        ));
    }
    out
}

/// Convenience: renders a speedup chart (baseline marker at 1.0,
/// annotations like `1.54x`).
pub fn speedup_chart(rows: &[(&str, f64)], width: usize) -> String {
    let bars: Vec<Bar> = rows
        .iter()
        .map(|(label, v)| Bar::new(*label, *v, format!("{v:.2}x")))
        .collect();
    render_bars(&bars, width, Some(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let chart = render_bars(
            &[Bar::new("a", 2.0, "2"), Bar::new("b", 1.0, "1")],
            10,
            None,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        let hashes_a = lines[0].matches('#').count();
        let hashes_b = lines[1].matches('#').count();
        assert_eq!(hashes_a, 10);
        assert_eq!(hashes_b, 5);
    }

    #[test]
    fn baseline_marker_drawn() {
        let chart = render_bars(&[Bar::new("x", 2.0, "2x")], 10, Some(1.0));
        assert!(chart.contains('|'));
    }

    #[test]
    fn degenerate_values_render_empty() {
        let chart = render_bars(
            &[Bar::new("nan", f64::NAN, "-"), Bar::new("neg", -3.0, "-")],
            10,
            None,
        );
        assert_eq!(chart.matches('#').count(), 0);
    }

    #[test]
    fn labels_aligned() {
        let chart = speedup_chart(&[("short", 1.5), ("a-longer-label", 1.2)], 20);
        let lines: Vec<&str> = chart.lines().collect();
        let bar_starts: Vec<usize> = lines
            .iter()
            .map(|l| l.find(['#', ' ']).unwrap_or(0))
            .collect();
        let _ = bar_starts;
        assert!(lines[0].starts_with("short         "));
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert_eq!(render_bars(&[], 20, None), "");
    }
}
