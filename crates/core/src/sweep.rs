//! Parameter-sweep helpers: speedup as a function of one design knob.
//!
//! The paper samples two points per knob (Fig. 10: 100/190 ns; Fig. 12:
//! 1/5 and 1/17 capacity); these helpers trace the whole curve, which is
//! what an architect provisioning a real MHD wants — in particular the
//! *break-even pool latency*, beyond which StarNUMA stops paying off.

use starnuma_sim::Runner;
use starnuma_topology::SystemParams;
use starnuma_trace::Workload;
use starnuma_types::Nanos;

use crate::experiment::{Experiment, SystemKind};
use crate::scale::ScaleConfig;

/// One sweep sample.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SweepPoint {
    /// The knob value (ns of one-way CXL latency, or pool capacity
    /// fraction, depending on the sweep).
    pub x: f64,
    /// Speedup over the §IV-C baseline at that value.
    pub speedup: f64,
}

/// Sweeps the one-way CXL latency (ns) and returns the speedup curve.
///
/// The default design point is 50 ns one-way (100 ns roundtrip penalty,
/// 180 ns end-to-end); 140 ns one-way makes the pool exactly as slow as a
/// 2-hop access.
pub fn sweep_cxl_latency(
    workload: Workload,
    scale: &ScaleConfig,
    one_way_ns: &[f64],
) -> Vec<SweepPoint> {
    let base = Experiment::new(workload, SystemKind::Baseline, scale.clone()).run();
    one_way_ns
        .iter()
        .map(|&ns| {
            let mut cfg =
                Experiment::new(workload, SystemKind::StarNuma, scale.clone()).run_config();
            cfg.params = SystemParams::scaled_starnuma().with_cxl_one_way(Nanos::new(ns));
            let r = Runner::new(workload.profile(), cfg).run();
            SweepPoint {
                x: ns,
                speedup: r.ipc / base.ipc,
            }
        })
        .collect()
}

/// Sweeps the pool capacity (as a fraction of the footprint).
pub fn sweep_pool_capacity(
    workload: Workload,
    scale: &ScaleConfig,
    fractions: &[f64],
) -> Vec<SweepPoint> {
    let base = Experiment::new(workload, SystemKind::Baseline, scale.clone()).run();
    fractions
        .iter()
        .map(|&frac| {
            let mut cfg =
                Experiment::new(workload, SystemKind::StarNuma, scale.clone()).run_config();
            cfg.pool_capacity_frac = frac;
            let r = Runner::new(workload.profile(), cfg).run();
            SweepPoint {
                x: frac,
                speedup: r.ipc / base.ipc,
            }
        })
        .collect()
}

/// Linear-interpolated `x` where a descending sweep crosses `speedup = 1.0`,
/// if it does.
pub fn break_even(points: &[SweepPoint]) -> Option<f64> {
    for pair in points.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if (a.speedup - 1.0) * (b.speedup - 1.0) <= 0.0 && a.speedup != b.speedup {
            let t = (1.0 - a.speedup) / (b.speedup - a.speedup);
            return Some(a.x + t * (b.x - a.x));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn break_even_interpolates() {
        let pts = [
            SweepPoint {
                x: 50.0,
                speedup: 1.5,
            },
            SweepPoint {
                x: 150.0,
                speedup: 1.1,
            },
            SweepPoint {
                x: 250.0,
                speedup: 0.9,
            },
        ];
        let be = break_even(&pts).expect("crosses 1.0");
        assert!((be - 200.0).abs() < 1e-9);
    }

    #[test]
    fn break_even_none_when_always_winning() {
        let pts = [
            SweepPoint {
                x: 1.0,
                speedup: 1.5,
            },
            SweepPoint {
                x: 2.0,
                speedup: 1.2,
            },
        ];
        assert!(break_even(&pts).is_none());
    }

    #[test]
    fn capacity_sweep_runs_quick() {
        let scale = ScaleConfig {
            phases: 1,
            instructions_per_phase: 8_000,
            warmup_instructions: 0,
            ..ScaleConfig::quick()
        };
        let pts = sweep_pool_capacity(Workload::Bfs, &scale, &[0.05, 0.2]);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.speedup > 0.0));
    }
}
