//! Parameter-sweep helpers: speedup as a function of one design knob.
//!
//! The paper samples two points per knob (Fig. 10: 100/190 ns; Fig. 12:
//! 1/5 and 1/17 capacity); these helpers trace the whole curve, which is
//! what an architect provisioning a real MHD wants — in particular the
//! *break-even pool latency*, beyond which StarNUMA stops paying off.

use starnuma_sim::{RunConfig, Runner};
use starnuma_trace::Workload;
use starnuma_types::Nanos;

use crate::experiment::{Experiment, SystemKind};
use crate::pool::JobPool;
use crate::scale::ScaleConfig;

/// One sweep sample.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SweepPoint {
    /// The knob value (ns of one-way CXL latency, or pool capacity
    /// fraction, depending on the sweep).
    pub x: f64,
    /// Speedup over the §IV-C baseline at that value.
    pub speedup: f64,
}

/// Sweeps the one-way CXL latency (ns) and returns the speedup curve.
///
/// The default design point is 50 ns one-way (100 ns roundtrip penalty,
/// 180 ns end-to-end); 140 ns one-way makes the pool exactly as slow as a
/// 2-hop access.
pub fn sweep_cxl_latency(
    workload: Workload,
    scale: &ScaleConfig,
    one_way_ns: &[f64],
) -> Vec<SweepPoint> {
    let configs = one_way_ns
        .iter()
        .map(|&ns| (ns, latency_point_config(workload, scale, ns)))
        .collect();
    run_sweep(workload, scale, configs)
}

/// The [`RunConfig`] for one latency-sweep point: the StarNUMA system at
/// `scale` with only the one-way CXL latency overridden. Everything else —
/// including the §V-G scale preset (SC3 doubles the machine) — is kept.
fn latency_point_config(workload: Workload, scale: &ScaleConfig, one_way_ns: f64) -> RunConfig {
    let mut cfg = Experiment::new(workload, SystemKind::StarNuma, scale.clone()).run_config();
    cfg.params = cfg.params.with_cxl_one_way(Nanos::new(one_way_ns));
    cfg
}

/// Sweeps the pool capacity (as a fraction of the footprint).
pub fn sweep_pool_capacity(
    workload: Workload,
    scale: &ScaleConfig,
    fractions: &[f64],
) -> Vec<SweepPoint> {
    let configs = fractions
        .iter()
        .map(|&frac| {
            let mut cfg =
                Experiment::new(workload, SystemKind::StarNuma, scale.clone()).run_config();
            cfg.pool_capacity_frac = frac;
            (frac, cfg)
        })
        .collect();
    run_sweep(workload, scale, configs)
}

/// Runs the baseline plus every `(x, config)` point on the global
/// [`JobPool`] and normalizes each point's IPC to the baseline's. Results
/// are in input order and bit-identical to a sequential sweep.
fn run_sweep(
    workload: Workload,
    scale: &ScaleConfig,
    configs: Vec<(f64, RunConfig)>,
) -> Vec<SweepPoint> {
    let base = Experiment::new(workload, SystemKind::Baseline, scale.clone()).run();
    let profile = workload.profile();
    JobPool::global().run(configs, |_, (x, cfg)| {
        let r = Runner::new(profile.clone(), cfg).run();
        SweepPoint {
            x,
            speedup: r.ipc / base.ipc,
        }
    })
}

/// Linear-interpolated `x` where a descending sweep crosses `speedup = 1.0`,
/// if it does.
pub fn break_even(points: &[SweepPoint]) -> Option<f64> {
    for pair in points.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if (a.speedup - 1.0) * (b.speedup - 1.0) <= 0.0 && a.speedup != b.speedup {
            let t = (1.0 - a.speedup) / (b.speedup - a.speedup);
            return Some(a.x + t * (b.x - a.x));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn break_even_interpolates() {
        let pts = [
            SweepPoint {
                x: 50.0,
                speedup: 1.5,
            },
            SweepPoint {
                x: 150.0,
                speedup: 1.1,
            },
            SweepPoint {
                x: 250.0,
                speedup: 0.9,
            },
        ];
        let be = break_even(&pts).expect("crosses 1.0");
        assert!((be - 200.0).abs() < 1e-9);
    }

    #[test]
    fn break_even_none_when_always_winning() {
        let pts = [
            SweepPoint {
                x: 1.0,
                speedup: 1.5,
            },
            SweepPoint {
                x: 2.0,
                speedup: 1.2,
            },
        ];
        assert!(break_even(&pts).is_none());
    }

    #[test]
    fn latency_sweep_honors_scale_preset() {
        use starnuma_topology::ScalePreset;
        // Regression: the sweep used to rebuild SystemParams from scratch,
        // silently dropping the SC3 machine-doubling preset.
        let sc1 = ScaleConfig::quick();
        let sc3 = ScaleConfig::quick().with_preset(ScalePreset::Sc3);
        let cfg1 = latency_point_config(Workload::Bfs, &sc1, 70.0);
        let cfg3 = latency_point_config(Workload::Bfs, &sc3, 70.0);
        assert_eq!(
            cfg3.params.cores_per_socket,
            2 * cfg1.params.cores_per_socket,
            "SC3 must double the machine in latency-sweep configs"
        );
        assert!(cfg3.params.cxl_bw.raw() > cfg1.params.cxl_bw.raw());
        // And the knob itself is still applied on both.
        assert_eq!(cfg1.params.cxl_one_way.raw(), 70.0);
        assert_eq!(cfg3.params.cxl_one_way.raw(), 70.0);
    }

    #[test]
    fn capacity_sweep_runs_quick() {
        let scale = ScaleConfig {
            phases: 1,
            instructions_per_phase: 8_000,
            warmup_instructions: 0,
            ..ScaleConfig::quick()
        };
        let pts = sweep_pool_capacity(Workload::Bfs, &scale, &[0.05, 0.2]);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.speedup > 0.0));
    }
}
