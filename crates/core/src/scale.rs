//! Simulation-scale presets: how many phases, how long each is.

use starnuma_topology::ScalePreset;
use starnuma_types::{ConfigError, StarNumaError};

/// Controls simulation length and the §V-G methodology preset.
///
/// The paper simulates 5–10 checkpoints of 100 M instructions per core; this
/// reproduction scales those windows down so the full table/figure harness
/// runs on a laptop. `STARNUMA_SCALE=quick|default|full` selects a preset at
/// bench time via [`ScaleConfig::from_env`].
#[derive(Clone, PartialEq, Debug)]
pub struct ScaleConfig {
    /// Number of phases (checkpoints).
    pub phases: usize,
    /// Instructions per core per phase.
    pub instructions_per_phase: u64,
    /// Warm-up instructions per core.
    pub warmup_instructions: u64,
    /// RNG seed.
    pub seed: u64,
    /// The §V-G simulation-configuration preset (SC1/SC2/SC3).
    pub preset: ScalePreset,
}

impl ScaleConfig {
    /// Tiny runs for unit/integration tests (~seconds per experiment).
    pub fn quick() -> Self {
        ScaleConfig {
            phases: 2,
            instructions_per_phase: 20_000,
            warmup_instructions: 4_000,
            seed: 42,
            preset: ScalePreset::Sc1,
        }
    }

    /// The default harness scale: long enough for migration dynamics to
    /// settle and contention to develop.
    pub fn default_scale() -> Self {
        ScaleConfig {
            phases: 5,
            instructions_per_phase: 100_000,
            warmup_instructions: 10_000,
            seed: 42,
            preset: ScalePreset::Sc1,
        }
    }

    /// A heavier scale for final numbers (several minutes per figure).
    pub fn full() -> Self {
        ScaleConfig {
            phases: 8,
            instructions_per_phase: 250_000,
            warmup_instructions: 25_000,
            seed: 42,
            preset: ScalePreset::Sc1,
        }
    }

    /// Reads `STARNUMA_SCALE` (`quick`, `default`, `full`); unset defaults
    /// to [`ScaleConfig::default_scale`].
    ///
    /// # Errors
    ///
    /// Returns [`StarNumaError::Config`] on any other value — a typo like
    /// `ful` must fail the run, not silently fall back to the default and
    /// mislabel an entire benchmark campaign.
    pub fn from_env() -> Result<Self, StarNumaError> {
        match std::env::var("STARNUMA_SCALE").as_deref() {
            Err(_) => Ok(Self::default_scale()),
            Ok("quick") => Ok(Self::quick()),
            Ok("default") => Ok(Self::default_scale()),
            Ok("full") => Ok(Self::full()),
            Ok(other) => Err(StarNumaError::Config(ConfigError::new(format!(
                "unknown STARNUMA_SCALE '{other}' (quick|default|full)"
            )))),
        }
    }

    /// Applies a §V-G methodology preset: SC2 triples the detailed window;
    /// SC3 doubles the machine (handled in the system parameters).
    ///
    /// Idempotent and reversible: re-applying the current preset is a
    /// no-op, and switching away from SC2 restores the SC1/SC3 window
    /// length instead of compounding the tripling.
    pub fn with_preset(mut self, preset: ScalePreset) -> Self {
        if self.preset == preset {
            return self;
        }
        if self.preset == ScalePreset::Sc2 {
            self.instructions_per_phase /= 3;
        }
        if preset == ScalePreset::Sc2 {
            self.instructions_per_phase *= 3;
        }
        self.preset = preset;
        self
    }
}

impl Default for ScaleConfig {
    fn default() -> Self {
        Self::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let q = ScaleConfig::quick();
        let d = ScaleConfig::default_scale();
        let f = ScaleConfig::full();
        assert!(q.instructions_per_phase < d.instructions_per_phase);
        assert!(d.instructions_per_phase < f.instructions_per_phase);
        assert!(q.phases <= d.phases && d.phases <= f.phases);
    }

    #[test]
    fn sc2_triples_instructions() {
        let base = ScaleConfig::quick();
        let sc2 = ScaleConfig::quick().with_preset(ScalePreset::Sc2);
        assert_eq!(sc2.instructions_per_phase, 3 * base.instructions_per_phase);
        let sc3 = ScaleConfig::quick().with_preset(ScalePreset::Sc3);
        assert_eq!(sc3.instructions_per_phase, base.instructions_per_phase);
        assert_eq!(sc3.preset, ScalePreset::Sc3);
    }

    #[test]
    fn with_preset_is_idempotent_and_reversible() {
        let base = ScaleConfig::quick();
        // Regression: applying SC2 twice used to 9x the window.
        let twice = ScaleConfig::quick()
            .with_preset(ScalePreset::Sc2)
            .with_preset(ScalePreset::Sc2);
        assert_eq!(
            twice.instructions_per_phase,
            3 * base.instructions_per_phase
        );
        // Switching away from SC2 restores the original window.
        let back = twice.with_preset(ScalePreset::Sc1);
        assert_eq!(back.instructions_per_phase, base.instructions_per_phase);
        assert_eq!(back.preset, ScalePreset::Sc1);
        let via_sc3 = ScaleConfig::quick()
            .with_preset(ScalePreset::Sc2)
            .with_preset(ScalePreset::Sc3);
        assert_eq!(via_sc3.instructions_per_phase, base.instructions_per_phase);
    }

    #[test]
    fn from_env_rejects_unknown_values() {
        // One test owns the variable end-to-end: env mutation must not
        // race with a second test reading it.
        std::env::set_var("STARNUMA_SCALE", "quick");
        assert_eq!(ScaleConfig::from_env(), Ok(ScaleConfig::quick()));
        std::env::set_var("STARNUMA_SCALE", "default");
        assert_eq!(ScaleConfig::from_env(), Ok(ScaleConfig::default_scale()));
        std::env::set_var("STARNUMA_SCALE", "full");
        assert_eq!(ScaleConfig::from_env(), Ok(ScaleConfig::full()));
        std::env::set_var("STARNUMA_SCALE", "ful");
        let err = ScaleConfig::from_env();
        assert!(err.is_err(), "typo must be rejected, got {err:?}");
        assert!(format!("{}", err.unwrap_err()).contains("ful"));
        std::env::remove_var("STARNUMA_SCALE");
        assert_eq!(ScaleConfig::from_env(), Ok(ScaleConfig::default_scale()));
    }
}
