//! # StarNUMA: Mitigating NUMA Challenges with Memory Pooling
//!
//! A from-scratch reproduction of the MICRO 2024 paper *StarNUMA:
//! Mitigating NUMA Challenges with Memory Pooling* (Cho & Daglis): a
//! 16-socket hierarchical NUMA system augmented with a CXL-attached,
//! coherently shared memory pool that hosts *vagabond pages* — pages
//! actively shared by many sockets with no good home — converting slow
//! 2-hop inter-chassis accesses (360 ns, bandwidth-starved) into fast pool
//! accesses (180 ns, over dedicated CXL links).
//!
//! This crate is the public facade: it maps the paper's experimental
//! configurations onto the substrate crates —
//!
//! * [`starnuma_topology`]: the 4-chassis interconnect, link database,
//!   latency model;
//! * [`starnuma_mem`]: DRAM channels and bandwidth servers;
//! * [`starnuma_cache`]: LLCs and the TLB counter annex;
//! * [`starnuma_coherence`]: the distributed MESI directory;
//! * [`starnuma_trace`]: synthetic workload generation (step A);
//! * [`starnuma_migration`]: region trackers, Algorithm 1, oracles;
//! * [`starnuma_sim`]: the discrete-event timing simulator (steps B+C);
//! * [`starnuma_obs`] (re-exported as [`obs`]): the zero-dependency
//!   observability layer — per-socket latency histograms, substrate
//!   counters, and the structured event journal with JSONL / Chrome
//!   `trace_event` exporters.
//!
//! # Quick start
//!
//! ```
//! use starnuma::{Experiment, ScaleConfig, SystemKind, Workload};
//!
//! let scale = ScaleConfig::quick();
//! let base = Experiment::new(Workload::Bfs, SystemKind::Baseline, scale.clone()).run();
//! let star = Experiment::new(Workload::Bfs, SystemKind::StarNuma, scale).run();
//! let speedup = star.ipc / base.ipc;
//! assert!(speedup > 1.0, "the pool accelerates BFS (paper: 1.7x)");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chart;
mod experiment;
pub mod pool;
pub mod report;
mod scale;
pub mod sweep;

pub use experiment::{speedup_vs_baseline, speedup_vs_baseline_observed, Experiment, SystemKind};
pub use pool::{set_global_jobs, set_progress, JobPool};
pub use scale::ScaleConfig;

pub use starnuma_obs as obs;
pub use starnuma_prof as prof;

pub use starnuma_sim::{MigrationMode, Modality, PhaseStats, RunConfig, RunResult, Runner};
pub use starnuma_topology::{
    AccessClass, BandwidthVariant, CxlLatencyBreakdown, LatencyModel, Network, ScalePreset,
    SystemParams,
};
pub use starnuma_trace::{
    PhaseTrace, SharingBin, SharingHistogram, TraceGenerator, Workload, WorkloadProfile,
};

/// Geometric mean of a non-empty slice (used for speedup summaries).
///
/// # Examples
///
/// ```
/// assert!((starnuma::geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of an empty slice");
    assert!(
        values.iter().all(|v| *v > 0.0),
        "geomean requires positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 8.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_rejects_empty() {
        let _ = geomean(&[]);
    }
}
