//! The paper's experimental configurations as a single enum, and the
//! experiment runner.

use starnuma_obs::ObsReport;
use starnuma_sim::{MigrationMode, Modality, RunConfig, RunResult, Runner};
use starnuma_topology::{BandwidthVariant, SystemParams};
use starnuma_trace::Workload;

use crate::pool::JobPool;
use crate::scale::ScaleConfig;

/// Every system configuration evaluated in the paper, by section:
///
/// | Variant | Paper experiment |
/// |---|---|
/// | `Baseline` | §V-A baseline: perfect-knowledge dynamic migration |
/// | `BaselineFirstTouch` | first-touch only (reference point) |
/// | `BaselineIsoBw` / `Baseline2xBw` | §V-D bandwidth provisioning |
/// | `BaselineStaticOracle` | §V-B static oracular placement, no pool |
/// | `StarNuma` | §V-A StarNUMA with the `T_16` tracker |
/// | `StarNumaT0` | §V-A with the `T_0` tracker |
/// | `StarNumaHalfBw` | §V-D x4 CXL links |
/// | `StarNumaCxlSwitch` | §V-C 190 ns pool penalty (CXL switch) |
/// | `StarNumaSmallPool` | §V-E pool capacity 1/17 of footprint |
/// | `StarNumaStaticOracle` | §V-B static oracular placement with pool |
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SystemKind {
    /// Baseline 16-socket system with perfect-knowledge dynamic migration,
    /// tuned per workload as in §IV-C: the better of the oracle policy and
    /// the zero-migration limit is reported.
    Baseline,
    /// Baseline with first-touch placement only.
    BaselineFirstTouch,
    /// Baseline with coherent links raised by StarNUMA's aggregate CXL
    /// bandwidth (UPI 26.4, NUMALink 17 GB/s full-scale).
    BaselineIsoBw,
    /// Baseline with every coherent link doubled.
    Baseline2xBw,
    /// Baseline with §V-B oracular static placement.
    BaselineStaticOracle,
    /// StarNUMA with the `T_16` hardware tracker (the default system).
    StarNuma,
    /// StarNUMA with the `T_0` (touched-bits-only) tracker.
    StarNumaT0,
    /// StarNUMA with halved CXL link bandwidth (x4 links).
    StarNumaHalfBw,
    /// StarNUMA with an intermediate CXL switch (270 ns pool access).
    StarNumaCxlSwitch,
    /// StarNUMA with a single-socket-sized pool (1/17 of the footprint).
    StarNumaSmallPool,
    /// StarNUMA with §V-B oracular static placement.
    StarNumaStaticOracle,
}

impl SystemKind {
    /// All variants, in a stable presentation order.
    pub const ALL: [SystemKind; 11] = [
        SystemKind::Baseline,
        SystemKind::BaselineFirstTouch,
        SystemKind::BaselineIsoBw,
        SystemKind::Baseline2xBw,
        SystemKind::BaselineStaticOracle,
        SystemKind::StarNuma,
        SystemKind::StarNumaT0,
        SystemKind::StarNumaHalfBw,
        SystemKind::StarNumaCxlSwitch,
        SystemKind::StarNumaSmallPool,
        SystemKind::StarNumaStaticOracle,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Baseline => "Baseline",
            SystemKind::BaselineFirstTouch => "Baseline (first-touch)",
            SystemKind::BaselineIsoBw => "Baseline ISO-BW",
            SystemKind::Baseline2xBw => "Baseline 2xBW",
            SystemKind::BaselineStaticOracle => "Baseline static-oracle",
            SystemKind::StarNuma => "StarNUMA (T16)",
            SystemKind::StarNumaT0 => "StarNUMA (T0)",
            SystemKind::StarNumaHalfBw => "StarNUMA Half-BW",
            SystemKind::StarNumaCxlSwitch => "StarNUMA +CXL switch",
            SystemKind::StarNumaSmallPool => "StarNUMA small pool (1/17)",
            SystemKind::StarNumaStaticOracle => "StarNUMA static-oracle",
        }
    }

    /// Whether this is a pool-bearing (StarNUMA) configuration.
    pub fn has_pool(self) -> bool {
        matches!(
            self,
            SystemKind::StarNuma
                | SystemKind::StarNumaT0
                | SystemKind::StarNumaHalfBw
                | SystemKind::StarNumaCxlSwitch
                | SystemKind::StarNumaSmallPool
                | SystemKind::StarNumaStaticOracle
        )
    }

    fn system_params(self) -> SystemParams {
        match self {
            SystemKind::Baseline
            | SystemKind::BaselineFirstTouch
            | SystemKind::BaselineStaticOracle => SystemParams::scaled_baseline(),
            SystemKind::BaselineIsoBw => SystemParams::scaled_baseline()
                .with_bandwidth_variant(BandwidthVariant::BaselineIsoBw),
            SystemKind::Baseline2xBw => SystemParams::scaled_baseline()
                .with_bandwidth_variant(BandwidthVariant::Baseline2xBw),
            SystemKind::StarNuma
            | SystemKind::StarNumaT0
            | SystemKind::StarNumaSmallPool
            | SystemKind::StarNumaStaticOracle => SystemParams::scaled_starnuma(),
            SystemKind::StarNumaHalfBw => SystemParams::scaled_starnuma()
                .with_bandwidth_variant(BandwidthVariant::StarNumaHalfBw),
            SystemKind::StarNumaCxlSwitch => SystemParams::scaled_starnuma().with_cxl_switch(),
        }
    }

    fn migration_mode(self) -> MigrationMode {
        match self {
            SystemKind::Baseline | SystemKind::BaselineIsoBw | SystemKind::Baseline2xBw => {
                MigrationMode::OracleDynamic
            }
            SystemKind::BaselineFirstTouch => MigrationMode::FirstTouchOnly,
            SystemKind::BaselineStaticOracle | SystemKind::StarNumaStaticOracle => {
                MigrationMode::StaticOracle
            }
            SystemKind::StarNumaT0 => MigrationMode::Threshold { t0: true },
            _ => MigrationMode::Threshold { t0: false },
        }
    }

    fn pool_capacity_frac(self) -> f64 {
        match self {
            SystemKind::StarNumaSmallPool => 1.0 / 17.0,
            _ => 0.20,
        }
    }
}

impl core::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// One (workload, system, scale) experiment.
///
/// # Examples
///
/// ```
/// use starnuma::{Experiment, ScaleConfig, SystemKind, Workload};
///
/// let r = Experiment::new(Workload::Poa, SystemKind::StarNuma, ScaleConfig::quick()).run();
/// assert_eq!(r.pages_to_pool, 0); // POA's pages are all private
/// ```
#[derive(Clone, Debug)]
pub struct Experiment {
    workload: Workload,
    system: SystemKind,
    scale: ScaleConfig,
}

impl Experiment {
    /// Creates the experiment.
    pub fn new(workload: Workload, system: SystemKind, scale: ScaleConfig) -> Self {
        Experiment {
            workload,
            system,
            scale,
        }
    }

    /// The underlying simulator configuration this experiment resolves to.
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            params: self
                .system
                .system_params()
                .with_scale_preset(self.scale.preset),
            phases: self.scale.phases,
            instructions_per_phase: self.scale.instructions_per_phase,
            warmup_instructions: self.scale.warmup_instructions,
            migration: self.system.migration_mode(),
            pool_capacity_frac: self.system.pool_capacity_frac(),
            migration_limit_pages: 8_192,
            modeled_migration_fraction: 1.0,
            modality: Modality::AllDetailed,
            seed: self.scale.seed,
            replication: None,
        }
    }

    /// Runs the experiment to completion.
    ///
    /// For the baseline systems this follows the paper's §IV-C protocol of
    /// *choosing the best-performing migration limit per workload-system
    /// combination, from 0 upward*: both the perfect-knowledge dynamic
    /// policy and the no-migration (limit 0, first-touch) variant are run
    /// — in parallel on the global [`JobPool`], since each is a pure
    /// function of its config — and the better one is the baseline.
    pub fn run(&self) -> RunResult {
        let profile = self.workload.profile();
        let tunes_limit = matches!(
            self.system,
            SystemKind::Baseline | SystemKind::BaselineIsoBw | SystemKind::Baseline2xBw
        );
        if tunes_limit {
            let mut dynamic_cfg = self.run_config();
            dynamic_cfg.migration = MigrationMode::OracleDynamic;
            let mut zero_cfg = self.run_config();
            zero_cfg.migration = MigrationMode::FirstTouchOnly;
            let mut results = JobPool::global().run(vec![dynamic_cfg, zero_cfg], |_, cfg| {
                Runner::new(profile.clone(), cfg).run()
            });
            // The pool returns exactly one result per job, in input order.
            let zero = results.remove(1);
            let dynamic = results.remove(0);
            if zero.ipc > dynamic.ipc {
                zero
            } else {
                dynamic
            }
        } else {
            Runner::new(profile, self.run_config()).run()
        }
    }

    /// Like [`Experiment::run`], but with the observability layer enabled:
    /// also returns the run's [`ObsReport`] (per-socket latency histograms,
    /// substrate counters, and the structured event journal).
    ///
    /// For the limit-tuned baselines both candidate runs are observed and
    /// the winner's report is returned, so the report always describes the
    /// result that is reported.
    pub fn run_observed(&self) -> (RunResult, ObsReport) {
        self.run_observed_faulted(None)
    }

    /// [`Experiment::run_observed`] with an optional one-shot injected
    /// monitor fault (`Some(monitor_name)`), armed on every candidate
    /// run's sink — the deterministic hook `--inject-monitor-fault` and
    /// the failure-injection tests use to prove violations surface.
    pub fn run_observed_faulted(&self, fault: Option<&str>) -> (RunResult, ObsReport) {
        let profile = self.workload.profile();
        let tunes_limit = matches!(
            self.system,
            SystemKind::Baseline | SystemKind::BaselineIsoBw | SystemKind::Baseline2xBw
        );
        if tunes_limit {
            let mut dynamic_cfg = self.run_config();
            dynamic_cfg.migration = MigrationMode::OracleDynamic;
            let mut zero_cfg = self.run_config();
            zero_cfg.migration = MigrationMode::FirstTouchOnly;
            let fault: Option<String> = fault.map(str::to_string);
            let mut results = JobPool::global().run(vec![dynamic_cfg, zero_cfg], move |_, cfg| {
                Runner::new(profile.clone(), cfg).run_with_obs_faulted(fault.as_deref())
            });
            // The pool returns exactly one result per job, in input order.
            let zero = results.remove(1);
            let dynamic = results.remove(0);
            if zero.0.ipc > dynamic.0.ipc {
                zero
            } else {
                dynamic
            }
        } else {
            Runner::new(profile, self.run_config()).run_with_obs_faulted(fault)
        }
    }
}

/// Runs `workload` on `system` and on the §V-A baseline (in parallel on
/// the global [`JobPool`]), returning
/// `(speedup, system result, baseline result)`.
pub fn speedup_vs_baseline(
    workload: Workload,
    system: SystemKind,
    scale: &ScaleConfig,
) -> (f64, RunResult, RunResult) {
    let mut results = JobPool::global().run(vec![SystemKind::Baseline, system], |_, kind| {
        Experiment::new(workload, kind, scale.clone()).run()
    });
    // The pool returns exactly one result per job, in input order.
    let sys = results.remove(1);
    let base = results.remove(0);
    let speedup = if base.ipc > 0.0 {
        sys.ipc / base.ipc
    } else {
        0.0
    };
    (speedup, sys, base)
}

/// [`speedup_vs_baseline`] with the observability layer enabled on **both**
/// runs, returning `(speedup, system result, baseline result, system
/// report, baseline report)`. Harness paths that honor `--trace-out` /
/// `--metrics-out` use this; everything else keeps the report-free variant.
pub fn speedup_vs_baseline_observed(
    workload: Workload,
    system: SystemKind,
    scale: &ScaleConfig,
) -> (f64, RunResult, RunResult, ObsReport, ObsReport) {
    let mut results = JobPool::global().run(vec![SystemKind::Baseline, system], |_, kind| {
        Experiment::new(workload, kind, scale.clone()).run_observed()
    });
    // The pool returns exactly one result per job, in input order.
    let (sys, sys_report) = results.remove(1);
    let (base, base_report) = results.remove(0);
    let speedup = if base.ipc > 0.0 {
        sys.ipc / base.ipc
    } else {
        0.0
    };
    (speedup, sys, base, sys_report, base_report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_consistent_configs() {
        for kind in SystemKind::ALL {
            let e = Experiment::new(Workload::Bfs, kind, ScaleConfig::quick());
            let cfg = e.run_config();
            assert_eq!(cfg.params.has_pool, kind.has_pool(), "{kind}");
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn iso_bw_raises_links() {
        let iso = Experiment::new(
            Workload::Bfs,
            SystemKind::BaselineIsoBw,
            ScaleConfig::quick(),
        )
        .run_config();
        let base =
            Experiment::new(Workload::Bfs, SystemKind::Baseline, ScaleConfig::quick()).run_config();
        assert!(iso.params.upi_bw.raw() > base.params.upi_bw.raw());
        assert!(iso.params.numalink_bw.raw() > base.params.numalink_bw.raw());
    }

    #[test]
    fn small_pool_uses_one_seventeenth() {
        let e = Experiment::new(
            Workload::Bfs,
            SystemKind::StarNumaSmallPool,
            ScaleConfig::quick(),
        );
        let cfg = e.run_config();
        assert!((cfg.pool_capacity_frac - 1.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn cxl_switch_raises_pool_latency() {
        let cfg = Experiment::new(
            Workload::Tc,
            SystemKind::StarNumaCxlSwitch,
            ScaleConfig::quick(),
        )
        .run_config();
        assert_eq!(cfg.params.cxl_one_way.raw(), 95.0);
    }
}
