//! Deterministic parallel execution of independent experiment runs.
//!
//! The paper's evaluation is dozens of independent `(profile, RunConfig) →
//! RunResult` simulations — per workload, per system variant, per sweep
//! point. Each run is a pure function of its configuration and seed (the
//! same-seed bit-identity guarantee from the audit PR), so fanning them out
//! across threads cannot change any result; it only changes wall-clock
//! time. [`JobPool`] exploits that: a zero-dependency work-sharing pool
//! over [`std::thread::scope`] that executes a job list on a bounded
//! number of workers and returns results **in input order**, byte-for-byte
//! identical to a sequential run.
//!
//! Worker count resolution, strongest first:
//!
//! 1. [`set_global_jobs`] (the CLI's `--jobs` flag, test harnesses);
//! 2. the `STARNUMA_JOBS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! Harness entry points validate `STARNUMA_JOBS` via [`JobPool::from_env`]
//! and fail loudly on garbage; [`JobPool::global`], which can be reached
//! from deep inside library code, treats an unparsable value as unset
//! rather than panicking.
//!
//! No wall-clock feeds any *result* (SN002): the pool schedules *host*
//! threads, while every simulated timestamp stays virtual and is derived
//! only from the run's own configuration. The one deliberate exception is
//! the opt-in progress meter ([`set_progress`], the CLI's `--progress`
//! flag), which uses host time purely for the operator-facing ETA printed
//! to stderr — it never touches a simulated quantity.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant; // audit:allow(SN002) — ProgressMeter's operator ETA only

use starnuma_types::{ConfigError, StarNumaError};

/// Process-wide worker-count override; 0 means "not set".
static GLOBAL_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Whether top-level fan-outs report progress on stderr.
static PROGRESS: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Whether the current thread is itself a pool worker. Nested
    /// [`JobPool::run`] calls (a sweep point whose experiment tunes its
    /// baseline pair, say) then run inline: the worker budget is global,
    /// not per-level, so `--jobs 4` means at most 4 concurrent runs — not
    /// 4 × 2 × 2 threads time-slicing each other off the same cores.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Overrides the worker count used by [`JobPool::global`] for the rest of
/// the process (clamped to at least 1). Intended for harness entry points:
/// the CLI's `--jobs` flag and determinism tests. Later calls win.
pub fn set_global_jobs(workers: usize) {
    GLOBAL_JOBS.store(workers.max(1), Ordering::SeqCst);
}

/// Enables (or disables) progress reporting for the rest of the process:
/// every subsequent *top-level* [`JobPool::run`] fan-out of more than one
/// job prints `k/n runs complete` lines with an ETA to stderr as results
/// land. Nested fan-outs (a sweep point tuning its baseline pair) stay
/// silent — only the outermost job list is the operator-visible unit of
/// work. Off by default; the CLI's `--progress` flag turns it on.
pub fn set_progress(enabled: bool) {
    PROGRESS.store(enabled, Ordering::SeqCst);
}

/// Counts completed jobs of one top-level fan-out and prints progress/ETA
/// lines to stderr. Host wall-clock is used *only* here, for the operator
/// ETA — it never feeds a simulated quantity.
struct ProgressMeter {
    total: usize,
    done: AtomicUsize,
    start: Instant, // audit:allow(SN002) — operator ETA only
}

impl ProgressMeter {
    fn new(total: usize) -> Self {
        ProgressMeter {
            total,
            done: AtomicUsize::new(0),
            start: Instant::now(), // audit:allow(SN002) — operator ETA only
        }
    }

    /// Records one finished job and reports. Called from worker threads;
    /// `eprintln!` takes a lock per call, so concurrent lines never shear.
    fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::SeqCst) + 1;
        let elapsed = self.start.elapsed().as_secs_f64();
        if done < self.total {
            let eta = elapsed / done as f64 * (self.total - done) as f64;
            // audit:allow(SN005) — operator-facing progress, stderr only
            eprintln!(
                "starnuma: {done}/{} runs complete, ETA ~{eta:.0}s",
                self.total
            );
        } else {
            // audit:allow(SN005) — operator-facing progress, stderr only
            eprintln!(
                "starnuma: {done}/{} runs complete in {elapsed:.1}s",
                self.total
            );
        }
    }
}

/// Parses `STARNUMA_JOBS`; `Ok(None)` when unset.
///
/// # Errors
///
/// Returns [`StarNumaError::Config`] when the variable is set but is not a
/// positive integer — a misconfigured harness run must not silently fall
/// back to a default.
fn env_jobs() -> Result<Option<usize>, StarNumaError> {
    match std::env::var("STARNUMA_JOBS") {
        Err(_) => Ok(None),
        Ok(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(StarNumaError::Config(ConfigError::new(format!(
                "invalid STARNUMA_JOBS '{v}' (expected a positive integer)"
            )))),
        },
    }
}

/// The host's available parallelism, defaulting to 1 when unknown.
fn default_parallelism() -> usize {
    // audit:allow(SN008) sizes the worker pool only; merge order is fixed, results never differ.
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A bounded, order-preserving parallel runner for independent jobs.
///
/// # Examples
///
/// ```
/// use starnuma::JobPool;
///
/// let squares = JobPool::new(4).run(vec![1u64, 2, 3, 4, 5], |_, n| n * n);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JobPool {
    workers: usize,
}

impl JobPool {
    /// Creates a pool with a fixed worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        JobPool {
            workers: workers.max(1),
        }
    }

    /// Creates a pool from `STARNUMA_JOBS`, defaulting to the host's
    /// available parallelism when unset. Harness entry points call this
    /// once so a typo in the variable fails the run instead of silently
    /// changing the worker count.
    ///
    /// # Errors
    ///
    /// Returns [`StarNumaError::Config`] when `STARNUMA_JOBS` is set to
    /// anything but a positive integer.
    pub fn from_env() -> Result<Self, StarNumaError> {
        Ok(match env_jobs()? {
            Some(n) => JobPool::new(n),
            None => JobPool::new(default_parallelism()),
        })
    }

    /// The pool every multi-run library path uses: the [`set_global_jobs`]
    /// override if set, else `STARNUMA_JOBS`, else available parallelism.
    /// An unparsable `STARNUMA_JOBS` counts as unset here — validation
    /// happens at harness entry via [`JobPool::from_env`].
    pub fn global() -> Self {
        let n = GLOBAL_JOBS.load(Ordering::SeqCst);
        if n > 0 {
            return JobPool::new(n);
        }
        match env_jobs() {
            Ok(Some(n)) => JobPool::new(n),
            _ => JobPool::new(default_parallelism()),
        }
    }

    /// The worker count this pool fans out to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every job and returns the results **in input order**.
    ///
    /// Jobs are handed to workers dynamically (a shared queue, so a slow
    /// job does not idle the other workers), but each result is written to
    /// the slot of its input index: the output is independent of worker
    /// count and scheduling, and — because every job is a pure function of
    /// its input — bit-identical to a sequential run. `f` also receives
    /// the job's input index for labelling.
    ///
    /// With one worker, at most one job, or when called from inside
    /// another pool's worker (nesting — see the module docs), everything
    /// runs inline on the caller's thread and no threads are spawned.
    ///
    /// # Panics
    ///
    /// If `f` panics on any job, the panic is re-raised on the calling
    /// thread (after the remaining workers wind down) with its original
    /// payload.
    pub fn run<T, R, F>(&self, jobs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = jobs.len();
        let workers = self.workers.min(n);
        let nested = IN_WORKER.with(Cell::get);
        let meter =
            (PROGRESS.load(Ordering::SeqCst) && !nested && n > 1).then(|| ProgressMeter::new(n));
        if workers <= 1 || nested {
            return jobs
                .into_iter()
                .enumerate()
                .map(|(i, j)| {
                    let r = f(i, j);
                    if let Some(m) = &meter {
                        m.tick();
                    }
                    r
                })
                .collect();
        }
        let queue = Mutex::new(jobs.into_iter().enumerate());
        let queue = &queue;
        let f = &f;
        let meter = &meter;
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(move || {
                        IN_WORKER.with(|flag| flag.set(true));
                        let mut done: Vec<(usize, R)> = Vec::new();
                        loop {
                            let next = match queue.lock() {
                                Ok(mut q) => q.next(),
                                // A poisoned queue means another worker
                                // panicked mid-`next`; stop taking work and
                                // let the join below propagate the panic.
                                Err(_) => None,
                            };
                            let Some((i, job)) = next else { break };
                            done.push((i, f(i, job)));
                            if let Some(m) = meter {
                                m.tick();
                            }
                        }
                        // Merge this worker's profiler tables before the
                        // scoped thread exits (no-op when profiling is off);
                        // the caller's `take_report` then sees every
                        // worker's counts, merged in canonical site order.
                        starnuma_prof::flush_thread();
                        done
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(done) => {
                        for (i, r) in done {
                            slots[i] = Some(r);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        let out: Vec<R> = slots.into_iter().flatten().collect();
        assert_eq!(out.len(), n, "JobPool lost results");
        out
    }
}

impl Default for JobPool {
    /// Equivalent to [`JobPool::global`].
    fn default() -> Self {
        JobPool::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let jobs: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = jobs.iter().map(|n| n * 3 + 1).collect();
        for workers in [1, 2, 4, 16, 200] {
            let got = JobPool::new(workers).run(jobs.clone(), |_, n| n * 3 + 1);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn passes_the_input_index() {
        let got = JobPool::new(4).run(vec!["a", "b", "c"], |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_and_single_job_lists_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(JobPool::new(8).run(empty, |_, n: u32| n).is_empty());
        assert_eq!(JobPool::new(8).run(vec![7u32], |_, n| n + 1), vec![8]);
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(JobPool::new(0).workers(), 1);
        assert_eq!(JobPool::new(3).workers(), 3);
    }

    #[test]
    #[should_panic(expected = "job 2 exploded")]
    fn worker_panics_propagate_to_the_caller() {
        let _ = JobPool::new(2).run(vec![0u32, 1, 2, 3], |_, n| {
            if n == 2 {
                panic!("job {n} exploded");
            }
            n
        });
    }

    #[test]
    fn nested_pools_run_inline_and_stay_ordered() {
        // Outer fan-out parallel, inner calls inline on the worker: total
        // live threads stay bounded by the outer worker count, and results
        // keep input order at both levels.
        let outer = JobPool::new(4).run(vec![10u64, 20, 30], |_, base| {
            JobPool::new(4).run(vec![1u64, 2, 3], move |_, off| base + off)
        });
        assert_eq!(
            outer,
            vec![vec![11, 12, 13], vec![21, 22, 23], vec![31, 32, 33]]
        );
    }

    #[test]
    fn global_override_wins() {
        set_global_jobs(3);
        assert_eq!(JobPool::global().workers(), 3);
        set_global_jobs(0); // clamps to 1, still an override
        assert_eq!(JobPool::global().workers(), 1);
    }

    #[test]
    fn env_values_are_validated() {
        // Serialized within this one test: env mutation must not race.
        std::env::set_var("STARNUMA_JOBS", "6");
        assert_eq!(
            JobPool::from_env().map(|p| p.workers()),
            Ok(JobPool::new(6).workers())
        );
        std::env::set_var("STARNUMA_JOBS", "zero");
        let err = JobPool::from_env().map(|p| p.workers());
        assert!(err.is_err(), "bad STARNUMA_JOBS must error, got {err:?}");
        std::env::set_var("STARNUMA_JOBS", "0");
        assert!(JobPool::from_env().is_err());
        std::env::remove_var("STARNUMA_JOBS");
        assert!(JobPool::from_env().map(|p| p.workers() >= 1).is_ok());
    }
}
