//! Machine-readable experiment reports.
//!
//! A tiny, dependency-free JSON emitter for [`RunResult`]s and experiment
//! summaries, so harness output can be consumed by plotting scripts or CI
//! checks. Only the subset of JSON we need is produced (objects, arrays,
//! strings, finite numbers) — and everything emitted here is
//! ASCII-escaped, so the output is always valid UTF-8 JSON.

use starnuma_sim::RunResult;
use starnuma_topology::AccessClass;
use starnuma_trace::Workload;

use crate::experiment::SystemKind;
use crate::sweep::SweepPoint;

/// A minimal JSON value builder.
#[derive(Clone, Debug)]
pub enum Json {
    /// A JSON number (must be finite).
    Num(f64),
    /// A JSON string.
    Str(String),
    /// A JSON boolean.
    Bool(bool),
    /// A JSON array.
    Arr(Vec<Json>),
    /// A JSON object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serializes the value.
    ///
    /// # Panics
    ///
    /// Panics if a number is not finite (JSON cannot represent NaN/∞).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Num(n) => {
                assert!(n.is_finite(), "JSON numbers must be finite, got {n}");
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Renders one run result as a JSON object.
pub fn run_result_json(workload: Workload, system: SystemKind, r: &RunResult) -> Json {
    let classes: Vec<Json> = AccessClass::ALL
        .iter()
        .enumerate()
        .map(|(i, c)| {
            Json::Obj(vec![
                ("class".into(), Json::Str(c.label().into())),
                ("fraction".into(), Json::Num(r.class_fracs[i])),
                ("mean_latency_ns".into(), Json::Num(r.class_mean_ns[i])),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("workload".into(), Json::Str(workload.name().into())),
        ("system".into(), Json::Str(system.label().into())),
        ("ipc".into(), Json::Num(r.ipc)),
        ("amat_ns".into(), Json::Num(r.amat_ns)),
        ("unloaded_amat_ns".into(), Json::Num(r.unloaded_amat_ns)),
        ("contention_ns".into(), Json::Num(r.contention_ns)),
        ("mpki".into(), Json::Num(r.mpki)),
        ("pages_migrated".into(), Json::Num(r.pages_migrated as f64)),
        ("pages_to_pool".into(), Json::Num(r.pages_to_pool as f64)),
        (
            "pool_migration_fraction".into(),
            Json::Num(r.pool_migration_frac()),
        ),
        ("access_breakdown".into(), Json::Arr(classes)),
        (
            "directory".into(),
            Json::Obj(vec![
                (
                    "transactions".into(),
                    Json::Num(r.directory.transactions as f64),
                ),
                (
                    "pool_transactions".into(),
                    Json::Num(r.directory.pool_transactions as f64),
                ),
                ("bt_socket".into(), Json::Num(r.directory.bt_socket as f64)),
                ("bt_pool".into(), Json::Num(r.directory.bt_pool as f64)),
                (
                    "invalidations".into(),
                    Json::Num(r.directory.invalidations as f64),
                ),
            ]),
        ),
        ("phases".into(), Json::Num(r.phases.len() as f64)),
    ])
}

/// Renders a sweep curve as a JSON object: `{"knob": ..., "points":
/// [{"x": ..., "speedup": ...}, ...]}`. `knob` names the swept parameter
/// (e.g. `cxl_one_way_ns`, `pool_capacity_frac`).
pub fn sweep_points_json(knob: &str, points: &[SweepPoint]) -> Json {
    Json::Obj(vec![
        ("knob".into(), Json::Str(knob.into())),
        (
            "points".into(),
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("x".into(), Json::Num(p.x)),
                            ("speedup".into(), Json::Num(p.speedup)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Experiment, ScaleConfig};

    #[test]
    fn json_primitives() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).render(),
            "\"a\\\"b\\\\c\\nd\""
        );
        assert_eq!(
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]).render(),
            "[1,2]"
        );
        assert_eq!(
            Json::Obj(vec![("k".into(), Json::Num(1.0))]).render(),
            "{\"k\":1}"
        );
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rejected() {
        let _ = Json::Num(f64::NAN).render();
    }

    #[test]
    fn sweep_points_serialize() {
        let pts = [
            SweepPoint {
                x: 50.0,
                speedup: 1.5,
            },
            SweepPoint {
                x: 140.0,
                speedup: 1.0,
            },
        ];
        assert_eq!(
            sweep_points_json("cxl_one_way_ns", &pts).render(),
            "{\"knob\":\"cxl_one_way_ns\",\"points\":[{\"x\":50,\"speedup\":1.5},{\"x\":140,\"speedup\":1}]}"
        );
    }

    #[test]
    fn run_result_round_trips_structure() {
        let r = Experiment::new(Workload::Poa, SystemKind::StarNuma, ScaleConfig::quick()).run();
        let json = run_result_json(Workload::Poa, SystemKind::StarNuma, &r).render();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"workload\":\"POA\""));
        assert!(json.contains("\"access_breakdown\":["));
        assert!(json.contains("\"pool_migration_fraction\":0"));
        // Balanced braces (a weak well-formedness check without a parser).
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
    }
}
