//! Step-B checkpoints on disk.
//!
//! The paper's memory-trace simulation (step B) emits, per phase, a
//! *checkpoint*: "the page-to-socket mapping at the end of each phase as
//! well as a list of migrations that should occur in the upcoming phase"
//! (§IV-A2), and each checkpoint seeds an independent timing simulation.
//! This module persists exactly that pair, so step C runs can be farmed out
//! or replayed without re-running step B.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  b"SNCK"; version u32
//! pool_capacity_pages u64; footprint_pages u64
//! footprint × u16 location (socket index, or 0xFFFF for the pool)
//! move_count u64 × { page u64, from u16, to u16 }
//! ```

use std::io::{self, Read, Write};

use starnuma_migration::{MigrationPlan, PageMap, PageMove};
use starnuma_types::{Location, PageId, SocketId};

const MAGIC: &[u8; 4] = b"SNCK";
const VERSION: u32 = 1;
const POOL_TAG: u16 = 0xFFFF;
/// Upper bound on `Vec` capacity taken on faith from a header length field
/// (64 Ki entries ≈ 1 MiB of `PageMove`s); larger vectors grow as data
/// actually arrives.
const PREALLOC_CAP: u64 = 1 << 16;
/// Sanity bound on the plan size: a phase plan never moves any page more
/// than a handful of times, so `move_count` beyond this multiple of the
/// footprint indicates corruption.
const MAX_MOVES_PER_PAGE: u64 = 8;

/// One step-B checkpoint: the phase-start placement plus the phase's
/// migration plan.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Page placement at the start of the phase.
    pub map: PageMap,
    /// Migrations to model during the phase.
    pub plan: MigrationPlan,
}

fn encode_location(l: Location) -> u16 {
    match l {
        Location::Pool => POOL_TAG,
        Location::Socket(s) => s.index(),
    }
}

fn decode_location(raw: u16) -> Location {
    if raw == POOL_TAG {
        Location::Pool
    } else {
        Location::Socket(SocketId::new(raw))
    }
}

impl Checkpoint {
    /// Serializes the checkpoint. Pass `&mut writer` to keep the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&self.map.pool_capacity_pages().to_le_bytes())?;
        w.write_all(&self.map.len().to_le_bytes())?;
        for pfn in 0..self.map.len() {
            let loc = encode_location(self.map.location(PageId::new(pfn)));
            w.write_all(&loc.to_le_bytes())?;
        }
        w.write_all(&(self.plan.moves.len() as u64).to_le_bytes())?;
        for mv in &self.plan.moves {
            w.write_all(&mv.page.pfn().to_le_bytes())?;
            w.write_all(&encode_location(mv.from).to_le_bytes())?;
            w.write_all(&encode_location(mv.to).to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserializes a checkpoint written by [`Checkpoint::write`].
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on bad magic/version or an
    /// inconsistent body, and propagates I/O errors.
    pub fn read<R: Read>(mut r: R) -> io::Result<Checkpoint> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a StarNUMA checkpoint (bad magic)",
            ));
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported checkpoint version {version}"),
            ));
        }
        let pool_capacity = read_u64(&mut r)?;
        let footprint = read_u64(&mut r)?;
        if footprint > 1 << 32 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("implausible footprint {footprint} pages"),
            ));
        }
        // Never pre-allocate from a length field alone: a corrupt header
        // claiming 2^32 pages would demand gigabytes before the first body
        // byte is validated. Capacity is capped and the vector grows only
        // as actual input arrives, so a truncated file fails after reading
        // at most `PREALLOC_CAP` entries' worth of bytes.
        let mut locations = Vec::with_capacity(footprint.min(PREALLOC_CAP) as usize);
        for _ in 0..footprint {
            locations.push(decode_location(read_u16(&mut r)?));
        }
        let pool_used = locations.iter().filter(|l| l.is_pool()).count() as u64;
        if pool_used > pool_capacity {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "checkpoint exceeds its own pool capacity",
            ));
        }
        let map = PageMap::from_fn(footprint, pool_capacity, |p| locations[p.pfn() as usize]);
        let move_count = read_u64(&mut r)?;
        if move_count > footprint.max(1) * MAX_MOVES_PER_PAGE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("implausible move count {move_count} for {footprint} pages"),
            ));
        }
        let mut moves = Vec::with_capacity(move_count.min(PREALLOC_CAP) as usize);
        for _ in 0..move_count {
            let page = PageId::new(read_u64(&mut r)?);
            let from = decode_location(read_u16(&mut r)?);
            let to = decode_location(read_u16(&mut r)?);
            if page.pfn() >= footprint {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("move references page {} outside footprint", page.pfn()),
                ));
            }
            moves.push(PageMove { page, from, to });
        }
        Ok(Checkpoint {
            map,
            plan: MigrationPlan { moves },
        })
    }
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let map = PageMap::from_fn(512, 256, |p| {
            if p.pfn() < 128 {
                Location::Pool
            } else {
                Location::Socket(SocketId::new((p.pfn() % 16) as u16))
            }
        });
        let plan = MigrationPlan {
            moves: vec![
                PageMove {
                    page: PageId::new(200),
                    from: Location::Socket(SocketId::new(8)),
                    to: Location::Pool,
                },
                PageMove {
                    page: PageId::new(5),
                    from: Location::Pool,
                    to: Location::Socket(SocketId::new(3)),
                },
            ],
        };
        Checkpoint { map, plan }
    }

    #[test]
    fn roundtrip() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write(&mut buf).expect("write to Vec");
        let back = Checkpoint::read(&buf[..]).expect("roundtrip");
        assert_eq!(back.map.len(), ck.map.len());
        assert_eq!(back.map.pool_capacity_pages(), 256);
        assert_eq!(back.map.pool_pages(), 128);
        for pfn in 0..ck.map.len() {
            assert_eq!(
                back.map.location(PageId::new(pfn)),
                ck.map.location(PageId::new(pfn))
            );
        }
        assert_eq!(back.plan, ck.plan);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(Checkpoint::read(&b"XXXX\x01\x00\x00\x00"[..]).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write(&mut buf).expect("write to Vec");
        buf.truncate(buf.len() / 2);
        assert!(Checkpoint::read(&buf[..]).is_err());
    }

    fn header(pool_capacity: u64, footprint: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"SNCK");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&pool_capacity.to_le_bytes());
        buf.extend_from_slice(&footprint.to_le_bytes());
        buf
    }

    /// Regression (PR 5): `read` used to `Vec::with_capacity(footprint)`
    /// straight from the header — a corrupt file claiming 2^32 pages
    /// demanded a 16 GB allocation before any body byte was validated.
    /// Length fields must be bounded against actual input.
    #[test]
    fn huge_claimed_footprint_with_empty_body_fails_fast() {
        // Largest footprint the plausibility check admits, but zero body
        // bytes: must fail with a read error, not allocate gigabytes.
        let buf = header(1 << 20, 1 << 32);
        let err = Checkpoint::read(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // Beyond the plausibility bound: structured InvalidData.
        let buf = header(1 << 20, (1 << 32) + 1);
        let err = Checkpoint::read(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("footprint"));
    }

    #[test]
    fn implausible_move_count_rejected() {
        let mut buf = header(8, 4);
        for _ in 0..4 {
            buf.extend_from_slice(&0u16.to_le_bytes());
        }
        // Claims far more moves than 8 per page of footprint.
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = Checkpoint::read(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("move count"));
    }

    #[test]
    fn move_outside_footprint_rejected() {
        let mut buf = header(8, 4);
        for _ in 0..4 {
            buf.extend_from_slice(&0u16.to_le_bytes());
        }
        buf.extend_from_slice(&1u64.to_le_bytes()); // one move …
        buf.extend_from_slice(&99u64.to_le_bytes()); // … of page 99 ∉ 0..4
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&0xFFFFu16.to_le_bytes());
        let err = Checkpoint::read(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("outside footprint"));
    }

    /// Fuzz-ish: every strict prefix of a valid checkpoint must error
    /// (never panic, hang, or return Ok), and bit-flips in the length
    /// fields must not cause unbounded allocation.
    #[test]
    fn every_truncation_prefix_errors_cleanly() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write(&mut buf).expect("write to Vec");
        for cut in 0..buf.len() {
            assert!(
                Checkpoint::read(&buf[..cut]).is_err(),
                "prefix of {cut}/{} bytes unexpectedly accepted",
                buf.len()
            );
        }
        // Flip each byte of the footprint field; accept any outcome but a
        // crash/OOM — the reader must stay bounded by the body it can read.
        for byte in 12..20 {
            let mut corrupt = buf.clone();
            corrupt[byte] ^= 0xFF;
            let _ = Checkpoint::read(&corrupt[..]);
        }
    }

    #[test]
    fn over_capacity_body_rejected() {
        // Hand-craft a body where more pages claim the pool than capacity.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"SNCK");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes()); // capacity 1
        buf.extend_from_slice(&2u64.to_le_bytes()); // 2 pages
        buf.extend_from_slice(&0xFFFFu16.to_le_bytes()); // pool
        buf.extend_from_slice(&0xFFFFu16.to_le_bytes()); // pool
        buf.extend_from_slice(&0u64.to_le_bytes()); // no moves
        let err = Checkpoint::read(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("pool capacity"));
    }
}
