//! Run configuration: which system, how many phases, which migration policy.

use starnuma_topology::SystemParams;
use starnuma_types::{Diagnostic, SocketId};

/// Which data-placement machinery runs during the simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MigrationMode {
    /// First-touch placement only; no runtime migration (POA-style).
    FirstTouchOnly,
    /// The favored baseline of §IV-C: zero-cost, perfect per-socket
    /// knowledge of every 4 KiB page's accesses, migrating each hot page to
    /// its dominant socket. Never uses the pool.
    OracleDynamic,
    /// StarNUMA's Algorithm 1 over the hardware tracking stack (TLB counter
    /// annex → metadata region). `t0` selects the `T_0` tracker design.
    /// On a pool-less system this degrades to socket-to-socket migration.
    Threshold {
        /// Use the `T_0` (touched-bits only) tracker instead of `T_16`.
        t0: bool,
    },
    /// The §V-B oracular *static* placement: a single a-priori layout
    /// computed from whole-run access knowledge; no runtime migration.
    /// Uses the pool if the system has one.
    StaticOracle,
    /// A design-space ablation of Algorithm 1's selection criterion
    /// (hotness-only / sharing-only / random pool fill). Uses perfect
    /// region-level tracking so only the *selection* differs.
    Ablation(starnuma_migration::AblationPolicy),
}

/// Socket modeling detail (§IV-B).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Modality {
    /// Every socket's cores run the detailed core model. Strictly more
    /// faithful than the paper's mixed modality and affordable with this
    /// simulator's lean core model; the default.
    AllDetailed,
    /// The paper's mixed-modality simulation: one socket is detailed, the
    /// rest are "light" endpoints that inject their traces at a rate
    /// regulated by the detailed socket's measured IPC (updated per phase).
    Mixed {
        /// The socket simulated in detail.
        detailed_socket: SocketId,
    },
}

/// Full configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Hardware parameters (Table I/II plus variants).
    pub params: SystemParams,
    /// Number of phases (checkpoints); the paper uses 5–10.
    pub phases: usize,
    /// Instructions per core per phase (the paper's 100 M-instruction
    /// detailed windows, scaled down).
    pub instructions_per_phase: u64,
    /// Warm-up instructions per core before the first phase: populates LLCs
    /// and directory state; excluded from statistics (§IV-A3).
    pub warmup_instructions: u64,
    /// Placement/migration machinery.
    pub migration: MigrationMode,
    /// Pool capacity as a fraction of the workload footprint (0.20 default;
    /// 1/17 in the §V-E study). Ignored on pool-less systems.
    pub pool_capacity_frac: f64,
    /// Algorithm 1's per-phase migration limit in 4 KiB pages.
    pub migration_limit_pages: u64,
    /// Fraction of each phase's migration plan modeled in detail during
    /// timing simulation (§IV-C: the paper's 100 M-instruction windows cover
    /// the first 10 % of each billion-instruction phase; here the simulated
    /// window *is* the phase, so the default is 1.0).
    pub modeled_migration_fraction: f64,
    /// Socket modeling detail.
    pub modality: Modality,
    /// RNG seed: runs are bit-for-bit reproducible.
    pub seed: u64,
    /// Optional §V-F selective replication of read-only, widely shared
    /// regions (complementary to — and combinable with — pooling).
    pub replication: Option<starnuma_migration::ReplicationConfig>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            params: SystemParams::scaled_starnuma(),
            phases: 4,
            instructions_per_phase: 120_000,
            warmup_instructions: 10_000,
            migration: MigrationMode::Threshold { t0: false },
            pool_capacity_frac: 0.20,
            migration_limit_pages: 16_384,
            modeled_migration_fraction: 1.0,
            modality: Modality::AllDetailed,
            seed: 42,
            replication: None,
        }
    }
}

impl RunConfig {
    /// Pool capacity in pages for a given footprint.
    pub fn pool_capacity_pages(&self, footprint_pages: u64) -> u64 {
        if self.params.has_pool {
            ((footprint_pages as f64) * self.pool_capacity_frac).round() as u64
        } else {
            0
        }
    }

    /// Pre-run model validation (audit Pass 2).
    ///
    /// Aggregates [`SystemParams::diagnostics`] with run-level checks:
    /// `SN102` for a pool-capacity fraction outside `[0, 1]` and `SN106`
    /// for run-shape problems (empty runs, a migration fraction outside
    /// `[0, 1]`, a detailed socket that does not exist).
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = self.params.diagnostics();
        if !self.pool_capacity_frac.is_finite() || !(0.0..=1.0).contains(&self.pool_capacity_frac) {
            out.push(Diagnostic::error(
                "SN102",
                "RunConfig.pool_capacity_frac",
                format!(
                    "pool capacity fraction must lie in [0, 1], got {}",
                    self.pool_capacity_frac
                ),
                "the paper sizes the pool at 20% of the footprint (1/17 in the small-pool study)",
            ));
        }
        if !self.modeled_migration_fraction.is_finite()
            || !(0.0..=1.0).contains(&self.modeled_migration_fraction)
        {
            out.push(Diagnostic::error(
                "SN106",
                "RunConfig.modeled_migration_fraction",
                format!(
                    "modeled migration fraction must lie in [0, 1], got {}",
                    self.modeled_migration_fraction
                ),
                "1.0 models the whole plan in timing simulation; 0.1 mimics the paper's windows",
            ));
        }
        if self.phases == 0 || self.instructions_per_phase == 0 {
            // An error (not a warning) since PR 4: an empty run produces no
            // phase statistics, so `RunResult::from_phases` has nothing to
            // aggregate (SN107) — reject the shape before simulating.
            out.push(Diagnostic::error(
                "SN106",
                "RunConfig.phases",
                format!(
                    "empty run: {} phase(s) of {} instruction(s) simulate nothing",
                    self.phases, self.instructions_per_phase
                ),
                "the paper simulates 5-10 phases; the scaled default is 4 x 120 K instructions",
            ));
        }
        if let Modality::Mixed { detailed_socket } = self.modality {
            if usize::from(detailed_socket.index()) >= self.params.num_sockets {
                out.push(Diagnostic::error(
                    "SN106",
                    "RunConfig.modality",
                    format!(
                        "detailed socket {} does not exist in a {}-socket system",
                        detailed_socket.index(),
                        self.params.num_sockets
                    ),
                    "pick a detailed socket below num_sockets",
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_starnuma_t16() {
        let c = RunConfig::default();
        assert!(c.params.has_pool);
        assert_eq!(c.migration, MigrationMode::Threshold { t0: false });
        assert_eq!(c.modality, Modality::AllDetailed);
        assert!((c.pool_capacity_frac - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_run_shape_is_an_error() {
        let c = RunConfig {
            phases: 0,
            ..RunConfig::default()
        };
        assert!(c
            .diagnostics()
            .iter()
            .any(|d| d.code == "SN106" && d.is_error()));
    }

    #[test]
    fn pool_capacity_scales_with_footprint() {
        let c = RunConfig::default();
        assert_eq!(c.pool_capacity_pages(1000), 200);
        let baseline = RunConfig {
            params: SystemParams::scaled_baseline(),
            ..RunConfig::default()
        };
        assert_eq!(baseline.pool_capacity_pages(1000), 0);
    }
}
