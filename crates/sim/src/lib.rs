//! The StarNUMA multi-socket memory-system simulator.
//!
//! Implements the paper's evaluation methodology (§IV) end to end:
//!
//! * **Step A** (tracing) is provided by `starnuma-trace`'s synthetic
//!   generators;
//! * **Step B** (memory-trace simulation) feeds each phase's accesses
//!   through the hardware tracking model (per-core TLB counter annexes →
//!   metadata region) or the oracle counters, runs the configured migration
//!   policy, and produces a *checkpoint*: the page map at phase start plus
//!   the migrations to model during the phase;
//! * **Step C** (timing simulation) replays the phase against the full
//!   memory-system model — per-socket LLCs, the distributed MESI directory,
//!   FIFO-server links and DRAM channels — and measures IPC, AMAT (split
//!   into unloaded latency and contention delay, Fig. 8b), and the
//!   access-type breakdown (Fig. 8c).
//!
//! The core model is deliberately lean: each core retires instructions at
//! the workload's single-socket CPI and sustains a bounded number of
//! outstanding LLC misses (its MLP); only latency *beyond* an unloaded local
//! access occupies a miss slot, so a perfectly local run reproduces the
//! single-socket IPC by construction and NUMA/contention effects slow the
//! core exactly as they would a ROB-limited machine.
//!
//! # Examples
//!
//! ```
//! use starnuma_sim::{MigrationMode, RunConfig, Runner};
//! use starnuma_topology::SystemParams;
//! use starnuma_trace::Workload;
//!
//! let config = RunConfig {
//!     params: SystemParams::scaled_starnuma(),
//!     phases: 2,
//!     instructions_per_phase: 20_000,
//!     warmup_instructions: 2_000,
//!     migration: MigrationMode::Threshold { t0: false },
//!     ..RunConfig::default()
//! };
//! let result = Runner::new(Workload::Bfs.profile(), config).run();
//! assert!(result.ipc > 0.0);
//! assert!(result.amat_ns >= 80.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod checkpoint;
mod config;
mod pipeline;
mod stats;
mod timing;

pub use checkpoint::Checkpoint;
pub use config::{MigrationMode, Modality, RunConfig};
pub use pipeline::Runner;
pub use stats::{PhaseStats, RunResult};
pub use timing::TimingSim;

/// The [`starnuma_topology::AccessClass::ALL`] labels in Fig. 8c order —
/// the column names the observability layer keys its per-socket latency
/// histograms by.
pub fn access_class_labels() -> [&'static str; 6] {
    let mut out = [""; 6];
    for (i, c) in starnuma_topology::AccessClass::ALL.iter().enumerate() {
        out[i] = c.label();
    }
    out
}
