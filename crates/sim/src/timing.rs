//! Step C: cycle-level timing simulation of one phase.
//!
//! Every core replays its access stream against the full memory-system
//! model. Cores retire instructions at the workload's single-socket CPI and
//! sustain up to `mlp` outstanding LLC misses; only latency *beyond* an
//! unloaded local access occupies a miss slot (the base CPI already folds in
//! local-memory time), so NUMA latency and queuing slow a core exactly to
//! the extent they exceed the local baseline.
//!
//! All bandwidth-limited resources — UPI/NUMALink/CXL links and DRAM
//! channels — are FIFO servers; an access's *contention delay* is the sum of
//! the waits it accrues along its route, and its measured latency is the
//! analytic unloaded latency plus that delay (the Fig. 8b decomposition).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use starnuma_cache::{CacheConfig, CacheOutcome, SetAssocCache};
use starnuma_coherence::{Directory, TransferKind};
use starnuma_mem::{DramTimings, FifoServer, MemoryModule};
use starnuma_migration::{MigrationCosts, PageMap, PageMove, ReplicaMap};
use starnuma_obs::ObsSink;
use starnuma_prof::{ProfScope, Site};
use starnuma_topology::{AccessClass, Network};
use starnuma_trace::PhaseTrace;
use starnuma_types::{Cycles, DetMap, GbPerSec, Location, MemAccess, PageId, SocketId};

use crate::config::Modality;
use crate::stats::PhaseStats;

/// Bytes on the wire for a request message (command + address).
const REQ_BYTES: u64 = 16;
/// Bytes on the wire for a data-carrying message (64 B block + header).
const DATA_BYTES: u64 = 72;

/// The reusable timing simulator for one system configuration.
///
/// Holds all stateful hardware models (LLCs, directory, link servers, DRAM
/// channels); [`TimingSim::run_phase`] replays one phase trace against them.
pub struct TimingSim {
    net: Network,
    links: Vec<FifoServer>,
    socket_mem: Vec<MemoryModule>,
    pool_mem: Option<MemoryModule>,
    llcs: Vec<SetAssocCache>,
    dir: Directory,
    cores_per_socket: usize,
    local_unloaded_cycles: u64,
    costs: MigrationCosts,
    /// CPI used by light sockets in mixed modality (regulated per phase).
    light_cpi: f64,
}

struct CoreRun<'a> {
    stream: &'a [MemAccess],
    next: usize,
    /// Core-local clock: cycle at which the previous access was issued.
    time: f64,
    last_icount: u64,
    /// Completion times of outstanding misses (min-heap).
    outstanding: BinaryHeap<Reverse<u64>>,
    light: bool,
}

impl TimingSim {
    /// Builds the hardware models for `net`'s configuration.
    pub fn new(net: Network, costs: MigrationCosts) -> Self {
        let params = net.params().clone();
        let links = net
            .link_ids()
            .map(|id| FifoServer::new(GbPerSec::new(net.link_bandwidth_gbps(id))))
            .collect();
        let timings = DramTimings::ddr5_4800();
        // The configured memory bandwidths are *effective* (≈65 % of the
        // 38.4 GB/s DDR5-4800 peak); the channel model enforces efficiency
        // through bank occupancy, so its data bus runs at the raw rate.
        const RAW_OVER_EFFECTIVE: f64 = 38.4 / 25.0;
        let socket_mem = (0..params.num_sockets)
            .map(|_| MemoryModule::new(1, params.socket_mem_bw.scale(RAW_OVER_EFFECTIVE), timings))
            .collect();
        let pool_mem = params
            .has_pool
            .then(|| MemoryModule::new(2, params.pool_mem_bw.scale(RAW_OVER_EFFECTIVE), timings));
        let llcs = (0..params.num_sockets)
            .map(|_| SetAssocCache::new(CacheConfig::scaled_llc()))
            .collect();
        let dir = Directory::new(params.num_sockets);
        let local_unloaded_cycles = net
            .latency()
            .demand_access(SocketId::new(0), Location::Socket(SocketId::new(0)))
            .to_cycles()
            .raw();
        let base_cpi_placeholder = 1.0;
        TimingSim {
            net,
            links,
            socket_mem,
            pool_mem,
            llcs,
            dir,
            cores_per_socket: params.cores_per_socket,
            local_unloaded_cycles,
            costs,
            light_cpi: base_cpi_placeholder,
        }
    }

    /// The network this simulator models.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Coherence directory statistics accumulated so far.
    pub fn directory_stats(&self) -> starnuma_coherence::DirectoryStats {
        self.dir.stats()
    }

    /// Aggregated LLC statistics across all sockets (cumulative since
    /// construction; caches persist across phases like real hardware).
    pub fn llc_stats(&self) -> starnuma_cache::CacheStats {
        let mut agg = starnuma_cache::CacheStats::default();
        for llc in &self.llcs {
            let st = llc.stats();
            agg.hits += st.hits;
            agg.misses += st.misses;
            agg.writebacks += st.writebacks;
        }
        agg
    }

    /// Aggregated per-link-kind server statistics since the last
    /// [`TimingSim::reset_servers`] (UPI, NUMALink, CXL order).
    pub fn link_stats(&self) -> [starnuma_mem::ServerStats; 3] {
        let mut agg = [starnuma_mem::ServerStats::default(); 3];
        for id in self.net.link_ids() {
            let idx = match self.net.link_kind(id) {
                starnuma_topology::LinkKind::Upi => 0,
                starnuma_topology::LinkKind::NumaLink => 1,
                starnuma_topology::LinkKind::Cxl => 2,
            };
            let st = self.links[id.index()].stats();
            agg[idx].transfers += st.transfers;
            agg[idx].bytes += st.bytes;
            agg[idx].busy_cycles += st.busy_cycles;
            agg[idx].wait_cycles += st.wait_cycles;
        }
        agg
    }

    /// Aggregated DRAM statistics `(all sockets, pool)` since the last
    /// server reset.
    pub fn memory_stats(&self) -> (starnuma_mem::ServerStats, Option<starnuma_mem::ServerStats>) {
        let mut sockets = starnuma_mem::ServerStats::default();
        for m in &self.socket_mem {
            let st = m.stats();
            sockets.transfers += st.transfers;
            sockets.bytes += st.bytes;
            sockets.busy_cycles += st.busy_cycles;
            sockets.wait_cycles += st.wait_cycles;
        }
        (sockets, self.pool_mem.as_ref().map(|p| p.stats()))
    }

    /// Sets the light-socket injection CPI for mixed modality (regulated by
    /// the detailed socket's measured IPC of the previous phase, §IV-B).
    pub fn set_light_cpi(&mut self, cpi: f64) {
        self.light_cpi = cpi.max(0.01);
    }

    /// Resets transient contention state between phases (servers drain;
    /// caches and directory state persist, as in a real machine).
    pub fn reset_servers(&mut self) {
        for l in &mut self.links {
            l.reset();
        }
        for m in &mut self.socket_mem {
            m.reset();
        }
        if let Some(p) = &mut self.pool_mem {
            p.reset();
        }
    }

    /// Replays one phase.
    ///
    /// * `map` is the page placement at phase start; the first
    ///   `modeled_moves` of the plan are applied during the phase with
    ///   initiator cost, data movement, and in-flight stalls (§IV-C).
    /// * `cpi`/`mlp` come from the workload profile.
    /// * When `collect` is false the phase is a warm-up: hardware state is
    ///   updated but statistics are discarded.
    #[allow(clippy::too_many_arguments)] // mirrors the checkpoint inputs of §IV-A3
    pub fn run_phase(
        &mut self,
        trace: &PhaseTrace,
        map: &mut PageMap,
        modeled_moves: &[PageMove],
        cpi: f64,
        mlp: usize,
        instructions_per_core: u64,
        modality: Modality,
        collect: bool,
    ) -> PhaseStats {
        self.run_phase_with_replicas(
            trace,
            map,
            modeled_moves,
            cpi,
            mlp,
            instructions_per_core,
            modality,
            collect,
            None,
        )
    }

    /// [`TimingSim::run_phase`] with an optional §V-F replica directory:
    /// reads served by a local replica cost a local access; writes to a
    /// replicated region collapse its replicas (invalidation traffic to
    /// every holder) before proceeding.
    #[allow(clippy::too_many_arguments)]
    pub fn run_phase_with_replicas(
        &mut self,
        trace: &PhaseTrace,
        map: &mut PageMap,
        modeled_moves: &[PageMove],
        cpi: f64,
        mlp: usize,
        instructions_per_core: u64,
        modality: Modality,
        collect: bool,
        replicas: Option<&mut ReplicaMap>,
    ) -> PhaseStats {
        self.run_phase_observed(
            trace,
            map,
            modeled_moves,
            cpi,
            mlp,
            instructions_per_core,
            modality,
            collect,
            replicas,
            &mut ObsSink::disabled(),
        )
    }

    /// [`TimingSim::run_phase_with_replicas`] recording per-access latency
    /// samples into `obs` (one histogram per socket × access class). The
    /// disabled sink costs one branch per collected access.
    #[allow(clippy::too_many_arguments)]
    pub fn run_phase_observed(
        &mut self,
        trace: &PhaseTrace,
        map: &mut PageMap,
        modeled_moves: &[PageMove],
        cpi: f64,
        mlp: usize,
        instructions_per_core: u64,
        modality: Modality,
        collect: bool,
        mut replicas: Option<&mut ReplicaMap>,
        obs: &mut ObsSink,
    ) -> PhaseStats {
        // One scope for the whole step-C replay; the per-access substrate
        // scopes in `one_access` nest under it.
        let _prof = ProfScope::enter(Site::Timing);
        let mut stats = PhaseStats::default();
        // --- Schedule the modeled migrations (serialized on the initiator,
        // 3 k cycles per page; data moves over the interconnect). A page in
        // flight stalls its accessors until it lands (§IV-C); accesses
        // *before* the move simply go to the old location. ---
        struct InFlight {
            start: u64,
            done: u64,
            from: Location,
        }
        let mut in_flight: DetMap<PageId, InFlight> = DetMap::new();
        let mut t_mig = 0u64;
        for mv in modeled_moves {
            let start = t_mig;
            t_mig += self.costs.initiator_cycles_per_page.raw();
            let mut wait = 0u64;
            for link in self.net.leg(mv.from, mv.to) {
                wait += self.links[link.index()]
                    .enqueue(Cycles::new(start), self.costs.bytes_per_page)
                    .raw();
            }
            let one_way = self.net.latency().one_way(mv.from, mv.to).to_cycles().raw();
            let done = t_mig + wait + one_way;
            in_flight.insert(
                mv.page,
                InFlight {
                    start,
                    done,
                    from: mv.from,
                },
            );
            map.move_page(mv.page, mv.to);
            if collect {
                stats.migrations_modeled += 1;
            }
        }

        // --- Set up per-core replay state. ---
        let mut cores: Vec<CoreRun<'_>> = trace
            .per_core
            .iter()
            .enumerate()
            .map(|(i, stream)| {
                let core = u32::try_from(i).unwrap_or(u32::MAX);
                let socket = starnuma_types::CoreId::new(core).socket(self.cores_per_socket);
                let light = match modality {
                    Modality::AllDetailed => false,
                    Modality::Mixed { detailed_socket } => socket != detailed_socket,
                };
                CoreRun {
                    stream,
                    next: 0,
                    time: 0.0,
                    last_icount: 0,
                    outstanding: BinaryHeap::new(),
                    light,
                }
            })
            .collect();

        // --- Event loop: pop the core with the earliest next issue. ---
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.stream.is_empty())
            .map(|(i, _)| Reverse((0u64, i)))
            .collect();
        while let Some(Reverse((event_t, ci))) = heap.pop() {
            let core = &mut cores[ci];
            let a = core.stream[core.next];
            let eff_cpi = if core.light { self.light_cpi } else { cpi };
            // Time instruction progress reaches this access.
            let mut t = core.time + (a.icount - core.last_icount) as f64 * eff_cpi;
            // MLP limit: detailed cores wait for a free miss slot.
            if !core.light {
                while let Some(&Reverse(done)) = core.outstanding.peek() {
                    if (done as f64) <= t {
                        core.outstanding.pop();
                    } else {
                        break;
                    }
                }
                if core.outstanding.len() >= mlp {
                    if let Some(&Reverse(done)) = core.outstanding.peek() {
                        t = t.max(done as f64);
                    }
                }
            }
            // In-flight migration stall: only while the page is moving.
            let mut home_override = None;
            if let Some(f) = in_flight.get(&a.addr.page()) {
                if t < f.start as f64 {
                    home_override = Some(f.from); // not yet moved
                } else if t < f.done as f64 {
                    t = f.done as f64; // stall until the migration lands
                }
            }
            // Keep link-server arrivals (approximately) time-ordered: if the
            // issue time jumped past the next pending event (an MLP or
            // migration stall), defer this core and let earlier accesses
            // enqueue first. Without this, far-future enqueues inflate every
            // earlier access's queuing delay, a runaway feedback.
            if let Some(&Reverse((next_t, _))) = heap.peek() {
                if (t as u64) > next_t && (t as u64) > event_t {
                    heap.push(Reverse((t as u64, ci)));
                    continue;
                }
            }
            if !core.light && core.outstanding.len() >= mlp {
                core.outstanding.pop();
            }
            let now = Cycles::new(t as u64);
            // §V-F replication: local replica reads; write-collapse.
            if let Some(reps) = replicas.as_deref_mut() {
                let region = a.addr.page().region();
                let socket = a.core.socket(self.cores_per_socket);
                if a.kind.is_write() {
                    for victim in reps.collapse_on_write(region) {
                        // Software-coherence invalidation message per holder.
                        for link in self
                            .net
                            .leg(Location::Socket(socket), Location::Socket(victim))
                        {
                            self.links[link.index()].enqueue(now, REQ_BYTES);
                        }
                    }
                } else if reps.has_replica(region, socket) {
                    home_override = Some(Location::Socket(socket));
                }
            }
            let (hit, class, unloaded_ns, measured_cycles) =
                self.one_access(now, &a, map, home_override);
            if collect {
                if hit {
                    stats.llc_hits += 1;
                } else {
                    let idx = class.index();
                    stats.class_counts[idx] += 1;
                    stats.unloaded_ns_sum += unloaded_ns;
                    let measured_ns = measured_cycles as f64 / starnuma_types::CORE_GHZ;
                    stats.measured_ns_sum += measured_ns;
                    stats.class_measured_ns[idx] += measured_ns;
                    obs.record_access(
                        a.core.socket(self.cores_per_socket).index() as usize,
                        idx,
                        measured_ns,
                    );
                }
            }
            if !core.light && !hit {
                let extra = measured_cycles.saturating_sub(self.local_unloaded_cycles);
                if extra > 0 {
                    core.outstanding.push(Reverse(t as u64 + extra));
                }
            }
            core.time = t;
            core.last_icount = a.icount;
            core.next += 1;
            if core.next < core.stream.len() {
                let next_icount = core.stream[core.next].icount;
                let est = t + (next_icount - a.icount) as f64 * eff_cpi;
                heap.push(Reverse((est as u64, ci)));
            }
        }

        // --- Finish: cores retire their remaining instructions. ---
        if collect {
            for core in &cores {
                let eff_cpi = if core.light { self.light_cpi } else { cpi };
                let mut finish =
                    core.time + (instructions_per_core - core.last_icount) as f64 * eff_cpi;
                if let Some(&Reverse(done)) = core.outstanding.iter().max_by_key(|r| r.0) {
                    finish = finish.max(done as f64);
                }
                stats.core_cycles_sum += finish as u64;
                stats.cores += 1;
                stats.instructions += instructions_per_core;
            }
        }
        stats
    }

    /// Simulates one LLC-missing access at `now`; returns
    /// `(llc_hit, class, unloaded_ns, measured_cycles)`.
    fn one_access(
        &mut self,
        now: Cycles,
        a: &MemAccess,
        map: &PageMap,
        home_override: Option<Location>,
    ) -> (bool, AccessClass, f64, u64) {
        let socket = a.core.socket(self.cores_per_socket);
        let block = a.addr.block();
        // LLC filter + dirty/eviction tracking.
        let outcome = {
            let _prof = ProfScope::enter(Site::Llc);
            self.llcs[socket.index() as usize].access(block, a.kind.is_write())
        };
        match outcome {
            CacheOutcome::Hit => {
                return (true, AccessClass::Local, 0.0, 0);
            }
            CacheOutcome::Miss { evicted } => {
                if let Some((victim, dirty)) = evicted {
                    {
                        let _prof = ProfScope::enter(Site::Directory);
                        self.dir.evict(victim, socket, dirty);
                    }
                    if dirty && victim.page().pfn() < map.len() {
                        // Writeback traffic to the victim's home (off the
                        // critical path; consumes bandwidth + a DRAM write).
                        let home = map.location(victim.page());
                        {
                            let _prof = ProfScope::enter(Site::Coherence);
                            for link in self.net.leg(Location::Socket(socket), home) {
                                self.links[link.index()].enqueue(now, DATA_BYTES);
                            }
                        }
                        let _prof = ProfScope::enter(Site::Dram);
                        self.memory_contention(now, home, victim);
                    }
                }
            }
        }
        let home = home_override.unwrap_or_else(|| map.location(a.addr.page()));
        let coh = {
            let _prof = ProfScope::enter(Site::Directory);
            self.dir.access(block, socket, a.kind.is_write(), home)
        };
        // Invalidations: traffic + back-invalidation of remote LLC copies
        // (off the critical path, as writes complete on ownership grant).
        if !coh.invalidations.is_empty() {
            let _prof = ProfScope::enter(Site::Coherence);
            for inv in &coh.invalidations {
                self.llcs[inv.index() as usize].invalidate(block);
                for link in self.net.leg(home, Location::Socket(*inv)) {
                    self.links[link.index()].enqueue(now, REQ_BYTES);
                }
            }
        }
        let lat = self.net.latency().clone();
        match coh.transfer {
            TransferKind::FromMemory => {
                let class = self.net.classify(socket, home);
                let unloaded = lat.demand_access(socket, home);
                let src = Location::Socket(socket);
                let req_prop = lat.one_way(src, home).to_cycles().raw();
                // All stages are charged at the issue time: a first-order
                // queuing approximation that keeps every server's backlog
                // bounded by its offered load (enqueueing at inflated
                // downstream arrival times would let queuing delays compound
                // across links into a runaway feedback).
                let _ = req_prop;
                let mut wait = 0u64;
                {
                    let _prof = ProfScope::enter(Site::Coherence);
                    for link in self.net.leg(src, home) {
                        wait += self.links[link.index()].enqueue(now, REQ_BYTES).raw();
                    }
                }
                {
                    let _prof = ProfScope::enter(Site::Dram);
                    wait += self.memory_contention(now, home, block);
                }
                {
                    let _prof = ProfScope::enter(Site::Coherence);
                    for link in self.net.leg(home, src) {
                        wait += self.links[link.index()].enqueue(now, DATA_BYTES).raw();
                    }
                }
                let measured = unloaded.to_cycles().raw() + wait;
                (false, class, unloaded.raw(), measured)
            }
            TransferKind::CacheToCache { owner } => {
                let r = Location::Socket(socket);
                let o = Location::Socket(owner);
                let (class, legs, unloaded_ns) = match home {
                    Location::Pool => {
                        // 4-hop via the pool: R→H, H→O, O→H, H→R.
                        let legs = vec![
                            (r, home, REQ_BYTES),
                            (home, o, REQ_BYTES),
                            (o, home, DATA_BYTES),
                            (home, r, DATA_BYTES),
                        ];
                        let unloaded = lat.four_hop_pool_transfer() + self.net.params().mem_base;
                        (AccessClass::BtPool, legs, unloaded)
                    }
                    Location::Socket(h) => {
                        // 3-hop: R→H, H→O (forward), O→R (data).
                        let legs = vec![
                            (r, home, REQ_BYTES),
                            (home, o, REQ_BYTES),
                            (o, r, DATA_BYTES),
                        ];
                        let unloaded =
                            lat.three_hop_transfer(socket, h, owner) + self.net.params().mem_base;
                        (AccessClass::BtSocket, legs, unloaded)
                    }
                };
                // No DRAM access: the data comes from the owner's cache and
                // the home's coherence directory is SRAM (its 20 ns lookup is
                // part of the unloaded latency, Fig. 3 / §V-A accounting).
                let mut wait = 0u64;
                {
                    let _prof = ProfScope::enter(Site::Coherence);
                    for (from, to, bytes) in legs {
                        for link in self.net.leg(from, to) {
                            wait += self.links[link.index()].enqueue(now, bytes).raw();
                        }
                    }
                }
                let measured = unloaded_ns.to_cycles().raw() + wait;
                (false, class, unloaded_ns.raw(), measured)
            }
        }
    }

    /// Charges one block access to the home node's memory; returns the
    /// contention delay in cycles.
    fn memory_contention(
        &mut self,
        now: Cycles,
        home: Location,
        block: starnuma_types::BlockAddr,
    ) -> u64 {
        match home {
            Location::Socket(s) => self.socket_mem[s.index() as usize].access(now, block).raw(),
            Location::Pool => match &mut self.pool_mem {
                Some(pool) => pool.access(now, block).raw(),
                None => 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starnuma_topology::SystemParams;
    use starnuma_trace::{TraceGenerator, Workload};

    fn sim(params: SystemParams) -> TimingSim {
        TimingSim::new(Network::new(&params), MigrationCosts::paper())
    }

    fn all_local_map(footprint: u64, cores_per_socket: usize) -> PageMap {
        // Used with POA-style traces where page ownership is derivable; for
        // generic traces tests build maps from the generator's sharers.
        let _ = cores_per_socket;
        PageMap::from_fn(footprint, 0, |p| {
            Location::Socket(SocketId::new((p.region().index() % 16) as u16))
        })
    }

    #[test]
    fn local_run_matches_single_socket_ipc() {
        // POA with first-touch-equivalent placement: every access is local,
        // so measured IPC must equal the profile's single-socket IPC and
        // AMAT must sit at the 80 ns local latency (plus mild DRAM queuing).
        let profile = Workload::Poa.profile();
        let mut g = TraceGenerator::new(&profile, 16, 4, 3);
        let trace = g.generate_phase(20_000);
        let map_src = g.clone();
        let mut map = PageMap::from_fn(profile.footprint_pages, 0, |p| {
            Location::Socket(map_src.page_sharers(p)[0])
        });
        let mut sim = sim(SystemParams::scaled_baseline());
        let stats = sim.run_phase(
            &trace,
            &mut map,
            &[],
            profile.base_cpi(),
            profile.mlp,
            20_000,
            Modality::AllDetailed,
            true,
        );
        let local_frac = stats.class_counts[0] as f64 / stats.memory_accesses() as f64;
        assert!(local_frac > 0.999, "POA accesses must be local");
        assert!(
            (stats.unloaded_amat_ns() - 80.0).abs() < 1e-6,
            "unloaded AMAT {}",
            stats.unloaded_amat_ns()
        );
        let ipc = stats.ipc();
        assert!(
            (ipc - profile.ipc_single_socket).abs() / profile.ipc_single_socket < 0.25,
            "IPC {ipc} vs single-socket {}",
            profile.ipc_single_socket
        );
    }

    #[test]
    fn remote_placement_slows_cores_down() {
        let profile = Workload::Bfs.profile();
        let mut g = TraceGenerator::new(&profile, 16, 4, 3);
        let trace = g.generate_phase(20_000);
        // All pages on socket 0: 15 of 16 sockets go remote.
        let mut remote_map = PageMap::from_fn(profile.footprint_pages, 0, |_| {
            Location::Socket(SocketId::new(0))
        });
        // Spread placement: regions round-robin across sockets (sharer
        // sets are sorted, so sharers[0] would bias toward low sockets).
        let mut owner_map = PageMap::from_fn(profile.footprint_pages, 0, |p| {
            Location::Socket(SocketId::new((p.region().index() % 16) as u16))
        });
        let mut sim1 = sim(SystemParams::scaled_baseline());
        let remote = sim1.run_phase(
            &trace,
            &mut remote_map,
            &[],
            profile.base_cpi(),
            profile.mlp,
            20_000,
            Modality::AllDetailed,
            true,
        );
        let mut sim2 = sim(SystemParams::scaled_baseline());
        let spread = sim2.run_phase(
            &trace,
            &mut owner_map,
            &[],
            profile.base_cpi(),
            profile.mlp,
            20_000,
            Modality::AllDetailed,
            true,
        );
        assert!(
            remote.amat_ns() > spread.amat_ns(),
            "centralized placement must have worse AMAT: {} vs {}",
            remote.amat_ns(),
            spread.amat_ns()
        );
        assert!(remote.ipc() < spread.ipc());
    }

    #[test]
    fn pool_placement_beats_two_hop_for_shared_pages() {
        let profile = Workload::Bfs.profile();
        let mut g = TraceGenerator::new(&profile, 16, 4, 3);
        let trace = g.generate_phase(20_000);
        let fp = profile.footprint_pages;
        let gen = g.clone();
        // Baseline: widely shared pages parked on socket 0.
        let mut base_map = PageMap::from_fn(fp, 0, |p| Location::Socket(gen.page_sharers(p)[0]));
        // StarNUMA: widely shared pages in the pool.
        let gen2 = g.clone();
        let mut star_map = PageMap::from_fn(fp, fp, |p| {
            if gen2.page_sharers(p).len() >= 8 {
                Location::Pool
            } else {
                Location::Socket(gen2.page_sharers(p)[0])
            }
        });
        let mut sim_base = sim(SystemParams::scaled_baseline());
        let base = sim_base.run_phase(
            &trace,
            &mut base_map,
            &[],
            profile.base_cpi(),
            profile.mlp,
            20_000,
            Modality::AllDetailed,
            true,
        );
        let mut sim_star = sim(SystemParams::scaled_starnuma());
        let star = sim_star.run_phase(
            &trace,
            &mut star_map,
            &[],
            profile.base_cpi(),
            profile.mlp,
            20_000,
            Modality::AllDetailed,
            true,
        );
        assert!(
            star.amat_ns() < base.amat_ns(),
            "pool placement must reduce AMAT: star {} vs base {}",
            star.amat_ns(),
            base.amat_ns()
        );
        assert!(star.ipc() > base.ipc());
        assert!(star.class_counts[3] > 0, "pool accesses present");
    }

    #[test]
    fn migration_stalls_and_costs_are_modeled() {
        let profile = Workload::Bfs.profile();
        let mut g = TraceGenerator::new(&profile, 16, 4, 3);
        let trace = g.generate_phase(5_000);
        let fp = profile.footprint_pages;
        let mut map = PageMap::from_fn(fp, fp, |_| Location::Socket(SocketId::new(0)));
        let moves: Vec<PageMove> = (0..64)
            .map(|i| PageMove {
                page: PageId::new(i),
                from: Location::Socket(SocketId::new(0)),
                to: Location::Pool,
            })
            .collect();
        let mut s = sim(SystemParams::scaled_starnuma());
        let stats = s.run_phase(
            &trace,
            &mut map,
            &moves,
            profile.base_cpi(),
            profile.mlp,
            5_000,
            Modality::AllDetailed,
            true,
        );
        assert_eq!(stats.migrations_modeled, 64);
        for i in 0..64 {
            assert!(map.location(PageId::new(i)).is_pool());
        }
    }

    #[test]
    fn warmup_collects_nothing() {
        let profile = Workload::Tpcc.profile();
        let mut g = TraceGenerator::new(&profile, 16, 4, 3);
        let trace = g.generate_phase(5_000);
        let mut map = all_local_map(profile.footprint_pages, 4);
        let mut s = sim(SystemParams::scaled_baseline());
        let stats = s.run_phase(
            &trace,
            &mut map,
            &[],
            profile.base_cpi(),
            profile.mlp,
            5_000,
            Modality::AllDetailed,
            false,
        );
        assert_eq!(stats.memory_accesses(), 0);
        assert_eq!(stats.instructions, 0);
    }

    #[test]
    fn mixed_modality_runs_and_reports_detailed_socket() {
        let profile = Workload::Cc.profile();
        let mut g = TraceGenerator::new(&profile, 16, 4, 3);
        let trace = g.generate_phase(10_000);
        let gen = g.clone();
        let mut map = PageMap::from_fn(profile.footprint_pages, 0, |p| {
            Location::Socket(gen.page_sharers(p)[0])
        });
        let mut s = sim(SystemParams::scaled_baseline());
        s.set_light_cpi(profile.base_cpi());
        let stats = s.run_phase(
            &trace,
            &mut map,
            &[],
            profile.base_cpi(),
            profile.mlp,
            10_000,
            Modality::Mixed {
                detailed_socket: SocketId::new(0),
            },
            true,
        );
        assert!(stats.memory_accesses() > 0);
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn link_and_memory_stats_accumulate() {
        let profile = Workload::Bfs.profile();
        let mut g = TraceGenerator::new(&profile, 16, 4, 3);
        let trace = g.generate_phase(5_000);
        let gen = g.clone();
        let fp = profile.footprint_pages;
        let mut map = PageMap::from_fn(fp, fp, |p| {
            if gen.page_sharers(p).len() >= 8 {
                Location::Pool
            } else {
                Location::Socket(gen.page_sharers(p)[0])
            }
        });
        let mut s = sim(SystemParams::scaled_starnuma());
        s.run_phase(
            &trace,
            &mut map,
            &[],
            profile.base_cpi(),
            profile.mlp,
            5_000,
            Modality::AllDetailed,
            true,
        );
        let [upi, numa, cxl] = s.link_stats();
        assert!(upi.transfers > 0, "UPI carried traffic");
        assert!(numa.transfers > 0, "NUMALinks carried traffic");
        assert!(cxl.transfers > 0, "CXL carried pool traffic");
        let (sockets, pool) = s.memory_stats();
        assert!(sockets.transfers > 0);
        assert!(pool.expect("pool present").transfers > 0);
        s.reset_servers();
        let [upi, _, _] = s.link_stats();
        assert_eq!(upi.transfers, 0, "reset clears link stats");
        let (sockets, _) = s.memory_stats();
        assert_eq!(sockets.transfers, 0);
    }

    #[test]
    fn baseline_network_has_no_cxl_stats() {
        let profile = Workload::Tpcc.profile();
        let mut g = TraceGenerator::new(&profile, 16, 4, 3);
        let trace = g.generate_phase(3_000);
        let mut map = all_local_map(profile.footprint_pages, 4);
        let mut s = sim(SystemParams::scaled_baseline());
        s.run_phase(
            &trace,
            &mut map,
            &[],
            profile.base_cpi(),
            profile.mlp,
            3_000,
            Modality::AllDetailed,
            true,
        );
        let [_, _, cxl] = s.link_stats();
        assert_eq!(cxl.transfers, 0, "no CXL links exist on the baseline");
        let (_, pool) = s.memory_stats();
        assert!(pool.is_none());
    }

    #[test]
    fn contention_appears_under_load() {
        // Everything on one remote socket's single DRAM channel: queues form.
        let profile = Workload::Sssp.profile();
        let mut g = TraceGenerator::new(&profile, 16, 4, 3);
        let trace = g.generate_phase(20_000);
        let mut map = PageMap::from_fn(profile.footprint_pages, 0, |_| {
            Location::Socket(SocketId::new(0))
        });
        let mut s = sim(SystemParams::scaled_baseline());
        let stats = s.run_phase(
            &trace,
            &mut map,
            &[],
            profile.base_cpi(),
            profile.mlp,
            20_000,
            Modality::AllDetailed,
            true,
        );
        let contention = stats.amat_ns() - stats.unloaded_amat_ns();
        assert!(
            contention > 50.0,
            "expected heavy queuing, got {contention} ns"
        );
    }
}
